#!/usr/bin/env python
"""CI smoke test for the network serving tier.

Boots ``repro serve`` (network backend, autoscaling 1..2 shards) against the
models of an artifact store, then — using nothing but :mod:`urllib` —

1. waits for ``GET /healthz``,
2. runs one ``POST /estimate`` batch and checks the result shape,
3. reads ``GET /stats`` and ``GET /models``,
4. hot-reloads via ``POST /models/reload``,
5. hammers ``/estimate`` from several threads until the autoscaler grows the
   cluster past one shard (one scale-up event),
6. scrapes ``GET /metrics`` mid-burst and asserts the Prometheus text carries
   per-shard latency histograms plus the recorded autoscaler decision,
7. sends SIGINT, asserts the server exits cleanly with status 0, and checks
   the ``--trace-out`` JSONL holds spans from both the frontend (``main``)
   and shard-worker processes sharing a trace ID.

Exits non-zero (with the server's output) on any failed step, so a CI job
can call it directly::

    python scripts/net_serve_smoke.py --store /tmp/repro-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request


def _call(base: str, path: str, body=None, timeout: float = 30.0):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _scrape_metrics(base: str, timeout: float = 30.0) -> str:
    request = urllib.request.Request(base + "/metrics")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _fail(proc: subprocess.Popen, message: str) -> "NoReturn":  # noqa: F821
    proc.kill()
    output = proc.stdout.read() if proc.stdout else ""
    sys.exit(f"net smoke FAILED: {message}\n--- server output ---\n{output}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", required=True, help="artifact store directory")
    parser.add_argument("--timeout", type=float, default=180.0)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="trace JSONL artifact path (default: a temp file, removed on success)",
    )
    args = parser.parse_args()
    deadline = time.monotonic() + args.timeout

    trace_out = args.trace_out
    cleanup_trace = trace_out is None
    if trace_out is None:
        handle, trace_out = tempfile.mkstemp(prefix="net-smoke-trace-", suffix=".jsonl")
        os.close(handle)

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--from-store", args.store,
            "--port", "0", "--binary-port", "-2",
            "--backend", "network", "--shards", "1", "--queue-capacity", "2",
            "--autoscale", "--min-shards", "1", "--max-shards", "2",
            "--trace-out", trace_out, "--trace-sample", "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    base = None
    while base is None:
        if time.monotonic() > deadline:
            _fail(proc, "server never announced its address")
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            _fail(proc, f"server exited early (status {proc.returncode})")
        if " on http://" in line:
            base = line.strip().rsplit(" on ", 1)[1]
    print(f"server up at {base}")

    while True:  # 1. health
        try:
            if _call(base, "/healthz", timeout=2.0).get("ok"):
                break
        except Exception:
            pass
        if time.monotonic() > deadline:
            _fail(proc, "/healthz never turned healthy")
        time.sleep(0.1)

    try:
        catalog = _call(base, "/models")
        if not catalog["models"]:
            _fail(proc, f"store exposes no models: {catalog}")
        model = catalog["models"][0]
        dim = int(catalog["described"][model]["input_dim"])
        print(f"serving model {model!r} (dim {dim})")

        rng = random.Random(0)
        queries = [[rng.uniform(-1, 1) for _ in range(dim)] for _ in range(8)]
        thresholds = [rng.uniform(0.4, 1.0) for _ in range(8)]
        estimate = _call(
            base, "/estimate",
            {"model": model, "queries": queries, "thresholds": thresholds},
        )
        if len(estimate["results"]) != 8:  # 2. estimate
            _fail(proc, f"expected 8 results, got {estimate}")
        print(f"estimate OK ({estimate['results'][:2]}...)")

        stats = _call(base, "/stats")  # 3. stats
        if stats["cluster"]["num_shards"] != 1:
            _fail(proc, f"expected 1 shard at start, got {stats['cluster']['num_shards']}")
        reloaded = _call(base, "/models/reload", {})  # 4. hot reload
        if len(reloaded["shards"]) != 1:
            _fail(proc, f"reload did not reach the shard: {reloaded}")
        print("stats + reload OK")

        # 5. saturate the bounded queue until the autoscaler reacts
        stop = threading.Event()
        burst_queries = [[rng.uniform(-1, 1) for _ in range(dim)] for _ in range(64)]
        burst_thresholds = [rng.uniform(0.4, 1.0) for _ in range(64)]
        body = {
            "model": model,
            "queries": burst_queries,
            "thresholds": burst_thresholds,
            "use_cache": False,
        }

        def _hammer() -> None:
            while not stop.is_set():
                try:
                    _call(base, "/estimate", body, timeout=60.0)
                except Exception:
                    if stop.is_set():
                        return

        threads = [threading.Thread(target=_hammer, daemon=True) for _ in range(6)]
        for thread in threads:
            thread.start()
        scaled = False
        try:
            while time.monotonic() < deadline:
                stats = _call(base, "/stats")
                actions = stats.get("autoscaler", {}).get("actions", [])
                if stats["cluster"]["num_shards"] >= 2 or any(
                    event for event in stats["cluster"]["scale_events"]
                ) or actions:
                    scaled = True
                    break
                time.sleep(0.25)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        if not scaled:
            _fail(proc, "autoscaler never scaled past one shard under load")
        print("autoscale-up event observed")

        # 6. /metrics carries the burst: per-shard histograms + the decision
        metrics = _scrape_metrics(base)
        if "# TYPE repro_cluster_sub_batch_latency_seconds histogram" not in metrics:
            _fail(proc, "per-shard latency histogram missing from /metrics")
        if 'repro_cluster_sub_batch_latency_seconds_count{shard="0"}' not in metrics:
            _fail(proc, "shard-labeled histogram series missing from /metrics")
        if "repro_cache_hit_rate" not in metrics:
            _fail(proc, "cache hit-rate gauge missing from /metrics")
        cache_byte_lines = [
            line for line in metrics.splitlines()
            if line.startswith("repro_cache_bytes{")
        ]
        if not cache_byte_lines or all(
            float(line.rsplit(" ", 1)[1]) <= 0 for line in cache_byte_lines
        ):
            _fail(proc, f"per-shard cache byte accounting missing: {cache_byte_lines}")
        up_lines = [
            line for line in metrics.splitlines()
            if line.startswith('repro_autoscaler_decisions_total{outcome="up"}')
        ]
        if not up_lines or float(up_lines[0].rsplit(" ", 1)[1]) < 1:
            _fail(proc, f"scale-up decision not recorded in /metrics: {up_lines}")
        print("/metrics scrape OK (per-shard histograms + autoscale decision)")
    except SystemExit:
        raise
    except Exception as error:  # noqa: BLE001 - report, then dump server output
        _fail(proc, f"{type(error).__name__}: {error}")

    # 7. clean teardown
    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        _fail(proc, "server did not exit after SIGINT")
    if proc.returncode != 0:
        _fail(proc, f"server exited with status {proc.returncode}")

    # …and the trace artifact holds cross-process spans of shared traces.
    spans = []
    with open(trace_out, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                try:
                    spans.append(json.loads(line))
                except json.JSONDecodeError:
                    pass
    roles_by_trace = {}
    for span in spans:
        roles_by_trace.setdefault(span.get("trace_id"), set()).add(span.get("role"))
    crossed = [tid for tid, roles in roles_by_trace.items() if {"main", "shard"} <= roles]
    if not crossed:
        _fail(proc, f"no trace crossed frontend->worker in {trace_out} ({len(spans)} spans)")
    print(f"trace artifact OK ({len(spans)} spans, {len(crossed)} cross-process traces)")
    if cleanup_trace:
        os.unlink(trace_out)
    print("clean shutdown; net smoke OK")


if __name__ == "__main__":
    main()

"""Quickstart: train SelNet on a synthetic embedding dataset and estimate selectivities.

Run with::

    python examples/quickstart.py

The script builds a small clustered embedding dataset, generates a labelled
workload (query vector, distance threshold, exact selectivity), trains the
SelNet estimator through the registry API (``create_estimator``) and reports
its accuracy against the exact ground truth, alongside a classical KDE
baseline — then saves the fitted model and reloads it bit-for-bit.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import build_workload_split, create_estimator, load_estimator, make_dataset
from repro.eval import compute_error_metrics


def main() -> None:
    # 1. A database of high-dimensional vectors (stand-in for face embeddings).
    dataset = make_dataset("face_like", num_vectors=2000, dim=16, num_clusters=30, seed=7)
    print(f"database: {dataset.num_vectors} vectors, {dataset.dim} dimensions")

    # 2. A labelled workload: queries sampled from the database, thresholds
    #    derived from a geometric sequence of target selectivities, split
    #    80/10/10 by query.
    split = build_workload_split(
        dataset,
        "cosine",
        num_queries=200,
        thresholds_per_query=20,
        max_selectivity_fraction=0.25,
        seed=1,
    )
    print(
        f"workload: {len(split.train)} train / {len(split.validation)} validation / "
        f"{len(split.test)} test rows, t_max = {split.t_max:.3f}"
    )

    # 3. Train SelNet via the registry (single-partition variant for speed).
    #    Any registered estimator works here — see repro.available_estimators().
    selnet = create_estimator("selnet-ct", num_control_points=16, epochs=40, seed=0).fit(split)

    # 4. Compare against the exact selectivities of the held-out test queries.
    estimates = selnet.estimate(split.test.queries, split.test.thresholds)
    metrics = compute_error_metrics(estimates, split.test.selectivities)
    print(f"SelNet-ct   : {metrics}")

    kde = create_estimator("kde", num_samples=200).fit(split)
    kde_metrics = compute_error_metrics(
        kde.estimate(split.test.queries, split.test.thresholds), split.test.selectivities
    )
    print(f"KDE baseline: {kde_metrics}")

    # 4b. Persist the fitted estimator and reload it: estimates round-trip
    #     bit-for-bit across processes.
    with tempfile.TemporaryDirectory() as tmp:
        path = selnet.save(f"{tmp}/selnet-ct")
        clone = load_estimator(path)
        assert np.array_equal(
            estimates, clone.estimate(split.test.queries, split.test.thresholds)
        )
        print(f"save/load   : round-trip at {path} is bit-exact")

    # 5. Consistency: the estimated selectivity never decreases as the
    #    threshold grows (the paper's key guarantee).
    query = split.test.queries[0]
    thresholds = np.linspace(0.0, split.t_max, 25)
    curve = selnet.selectivity_curve(query, thresholds)
    assert np.all(np.diff(curve) >= -1e-9)
    print("estimated selectivity curve for one query (monotone by construction):")
    for threshold, value in list(zip(thresholds, curve))[::6]:
        print(f"  t = {threshold:6.3f}  ->  {value:8.1f}")


if __name__ == "__main__":
    main()

"""Density estimation and distance-based outlier detection with SelNet.

The paper's introduction motivates selectivity estimation with density
estimation and density-based outlier detection: the number of database
objects within distance ``t`` of a point *is* (up to normalisation) a local
density estimate, and points whose neighbourhood count is tiny are outliers.

This example trains SelNet once and then uses it as a fast, consistent local
density oracle:

* it ranks a set of probe points by estimated local density, and
* it flags the lowest-density probes as outlier candidates,

comparing the result against the exact (brute-force) counts.

Run with::

    python examples/density_outlier_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import SelNetConfig, SelNetEstimator, build_workload_split, make_dataset
from repro.data import SelectivityOracle


def main() -> None:
    rng = np.random.default_rng(11)

    # A clustered database plus a handful of genuinely isolated points.
    dataset = make_dataset("face_like", num_vectors=2000, dim=16, num_clusters=25, seed=3)
    outliers = rng.normal(size=(10, dataset.dim))
    outliers /= np.linalg.norm(outliers, axis=1, keepdims=True)
    vectors = np.concatenate([dataset.vectors, outliers], axis=0)
    dataset.vectors = vectors
    print(f"database: {len(vectors)} vectors ({len(outliers)} injected outliers)")

    split = build_workload_split(
        dataset,
        "cosine",
        num_queries=200,
        thresholds_per_query=20,
        max_selectivity_fraction=0.25,
        seed=2,
    )
    estimator = SelNetEstimator(
        SelNetConfig(num_control_points=16, epochs=40, num_partitions=1, seed=0)
    ).fit(split)

    # Local density of a probe = selectivity at a fixed radius.
    radius = 0.5 * split.t_max
    probe_ids = rng.choice(len(vectors), size=40, replace=False)
    probe_ids = np.concatenate([probe_ids, np.arange(len(vectors) - len(outliers), len(vectors))])
    probes = vectors[probe_ids]

    estimated_density = estimator.estimate(probes, np.full(len(probes), radius))
    oracle = SelectivityOracle(vectors, split.distance)
    exact_density = oracle.batch_selectivity(probes, np.full(len(probes), radius))

    # Rank probes by estimated density; the injected outliers should sink to
    # the bottom of the ranking.
    order = np.argsort(estimated_density)
    flagged = set(probe_ids[order[: len(outliers)]].tolist())
    injected = set(range(len(vectors) - len(outliers), len(vectors)))
    recall = len(flagged & injected) / len(injected)

    print(f"density radius t = {radius:.3f}")
    print(f"outlier recall in the bottom-{len(outliers)} density ranking: {recall:.0%}")
    print("probe                estimated density   exact density")
    for index in order[:5]:
        label = "outlier" if probe_ids[index] in injected else "inlier "
        print(
            f"  {label} #{probe_ids[index]:<6d}       {estimated_density[index]:10.1f}    "
            f"{exact_density[index]:10d}"
        )

    correlation = np.corrcoef(estimated_density, exact_density)[0, 1]
    print(f"correlation between estimated and exact densities: {correlation:.3f}")


if __name__ == "__main__":
    main()

"""Keeping a SelNet estimator accurate under database updates.

Section 5.4 of the paper describes an incremental-learning procedure: after a
batch of insertions or deletions the model's validation error is re-checked;
only if it has drifted beyond a threshold are the labels refreshed and the
current model fine-tuned (never retrained from scratch).

This example fits the registered ``selnet-inc`` estimator — the one whose
spec advertises ``supports_updates`` (every other estimator raises
``UpdateNotSupportedError`` from ``update()``) — streams insert/delete
operations into the database, and prints the evolution of the test error
along with when the estimator decided to fine-tune itself.

Run with::

    python examples/data_updates.py
"""

from __future__ import annotations

from repro import build_workload_split, create_estimator, make_dataset
from repro.data import generate_update_stream, relabel_workload
from repro.eval import compute_error_metrics
from repro.exact import DeltaOracle


def main() -> None:
    dataset = make_dataset("face_like", num_vectors=1500, dim=16, num_clusters=25, seed=9)
    split = build_workload_split(
        dataset,
        "cosine",
        num_queries=150,
        thresholds_per_query=16,
        max_selectivity_fraction=0.25,
        seed=4,
    )
    incremental = create_estimator(
        "selnet-inc",
        num_control_points=12,
        epochs=30,
        seed=0,
        update_mae_drift_threshold=3.0,
        update_max_epochs=10,
    ).fit(split)

    operations = generate_update_stream(
        dataset.vectors, num_operations=12, records_per_operation=25, seed=1
    )
    print("op  kind     |D|     val MAE   retrained   test MSE    test MAPE")
    # Incremental oracle for test-set relabeling: base counts once, then only
    # the rows each update touches are rescanned.
    test_oracle = DeltaOracle(dataset.vectors, split.distance)
    test = split.test
    for step, operation in enumerate(operations, start=1):
        if operation.kind == "insert":
            report = incremental.update(inserts=operation.vectors)[0]
        else:
            report = incremental.update(deletes=operation.indices)[0]

        # Re-evaluate on the test workload against the *updated* database.
        test_oracle.apply(operation)
        test = relabel_workload(test, test_oracle)
        estimates = incremental.estimate(test.queries, test.thresholds)
        metrics = compute_error_metrics(estimates, test.selectivities)
        print(
            f"{step:>2}  {report.operation_kind:<7} {report.database_size:>5} "
            f"{report.validation_mae_after:>9.2f}   {str(report.retrained):<9} "
            f"{metrics.mse:>9.1f}   {metrics.mape:>8.3f}"
        )

    retrains = sum(report.retrained for report in incremental.reports)
    print(f"\nfine-tuned after {retrains} of {len(operations)} update operations")


if __name__ == "__main__":
    main()

"""Query-plan selection for similarity blocking rules, driven by SelNet.

The paper's second motivating application is query optimisation for
hands-off entity matching: a blocking rule is a conjunction of similarity
predicates (``d(x, o) <= t_i`` over several attribute embeddings), and the
optimiser wants to evaluate the *most selective* predicate first so the
candidate set shrinks as early as possible.

This example builds two attribute-embedding "tables", trains one SelNet
estimator per attribute, and then uses the estimates to order the predicates
of a batch of blocking rules.  It reports how often the estimator-driven
ordering matches the optimal (exact-selectivity) ordering and the candidate
set size saved compared to a fixed ordering.

Run with::

    python examples/blocking_plan_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import SelNetConfig, SelNetEstimator, build_workload_split, make_dataset
from repro.data import SelectivityOracle


def train_attribute_estimator(seed: int):
    """One attribute = one embedding table + one fitted SelNet estimator."""
    dataset = make_dataset("fasttext_like", num_vectors=1500, dim=12, num_clusters=20, seed=seed)
    split = build_workload_split(
        dataset,
        "cosine",
        num_queries=150,
        thresholds_per_query=16,
        max_selectivity_fraction=0.25,
        seed=seed,
    )
    estimator = SelNetEstimator(
        SelNetConfig(num_control_points=12, epochs=30, num_partitions=1, seed=seed)
    ).fit(split)
    oracle = SelectivityOracle(dataset.vectors, split.distance)
    return dataset, split, estimator, oracle


def main() -> None:
    rng = np.random.default_rng(5)
    attributes = [train_attribute_estimator(seed) for seed in (17, 29)]
    print(f"trained {len(attributes)} per-attribute SelNet estimators")

    num_rules = 40
    correct_order = 0
    estimated_first_costs = []
    fixed_first_costs = []
    for _ in range(num_rules):
        # A blocking rule: one predicate per attribute with its own threshold.
        predicates = []
        for dataset, split, estimator, oracle in attributes:
            query = dataset.vectors[rng.integers(dataset.num_vectors)]
            threshold = rng.uniform(0.3, 1.0) * split.t_max
            estimate = estimator.estimate_one(query, threshold)
            exact = oracle.selectivity(query, threshold)
            predicates.append((estimate, exact))

        estimated_order = int(np.argmin([p[0] for p in predicates]))
        exact_order = int(np.argmin([p[1] for p in predicates]))
        correct_order += int(estimated_order == exact_order)
        estimated_first_costs.append(predicates[estimated_order][1])
        fixed_first_costs.append(predicates[0][1])

    print(f"blocking rules evaluated           : {num_rules}")
    print(f"estimator picks the optimal first predicate: {correct_order / num_rules:.0%}")
    print(
        "mean candidates scanned by the first predicate: "
        f"{np.mean(estimated_first_costs):.1f} (SelNet-ordered) vs "
        f"{np.mean(fixed_first_costs):.1f} (fixed order)"
    )


if __name__ == "__main__":
    main()

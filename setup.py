"""Packaging for the SelNet reproduction (src layout, console script)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="selnet-repro",
    version=VERSION,
    description=(
        "Reproduction of 'Consistent and Flexible Selectivity Estimation for "
        "High-dimensional Data' (Wang et al., SIGMOD 2021) with a registry, "
        "persistence and serving API"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text()
    if (Path(__file__).parent / "README.md").is_file()
    else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)

"""Compiled-vs-graph inference benchmark (the ``repro infer-bench`` CLI).

For each estimator and batch size the benchmark times two arms over the
same request stream:

* **graph** — the training-time autodiff forward (tensor allocation,
  backward closures, tape bookkeeping): for the SelNet family the model's
  ``forward`` is invoked directly under :func:`repro.autodiff.enable_grad`
  — exactly what every ``estimate()`` call paid before the compiled path
  existed (inference-mode ``predict`` now runs under ``no_grad``, so going
  through it would measure a different thing) — and other estimators run
  their plain ``estimate``;
* **compiled** — ``estimator.compiled().predict``: the frozen pure-NumPy
  kernel the serving and cluster tiers run by default.

Each arm runs ``repeats`` timed iterations (after warmup), recording p50 /
p99 latency and mean throughput, plus the maximum absolute deviation between
the two arms' answers — the parity number the CI smoke asserts on.  Results
serialise to ``BENCH_inference.json`` via :func:`write_benchmark_json`,
seeding the repo's tracked performance trajectory.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..autodiff import enable_grad

PathLike = Union[str, Path]

DEFAULT_BATCH_SIZES = (1, 16, 256, 2048)


@dataclass
class InferenceBenchmarkRow:
    """One (estimator, precision tier, batch size) measurement."""

    estimator: str
    kernel_kind: str
    batch_size: int
    repeats: int
    graph_p50_ms: float
    graph_p99_ms: float
    graph_rows_per_second: float
    compiled_p50_ms: float
    compiled_p99_ms: float
    compiled_rows_per_second: float
    speedup: float
    max_abs_deviation: float
    #: precision tier the compiled arm ran at
    dtype: str = "float64"
    #: max deviation relative to the graph answer (scale ``max(|ref|, 1)``)
    max_rel_deviation: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class InferenceBenchmarkReport:
    """All measurements of one benchmark run."""

    rows: List[InferenceBenchmarkRow] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def max_deviation(self, dtype: Optional[str] = None) -> float:
        """Max *absolute* deviation, optionally restricted to one tier."""
        return max(
            (
                row.max_abs_deviation
                for row in self.rows
                if dtype is None or row.dtype == dtype
            ),
            default=0.0,
        )

    def max_relative_deviation(self, dtype: Optional[str] = None) -> float:
        """Max relative deviation, optionally restricted to one tier."""
        return max(
            (
                row.max_rel_deviation
                for row in self.rows
                if dtype is None or row.dtype == dtype
            ),
            default=0.0,
        )

    def dtypes(self) -> List[str]:
        """The precision tiers present, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            if row.dtype not in seen:
                seen.append(row.dtype)
        return seen

    def speedup_for(
        self, estimator: str, batch_size: Optional[int] = None, dtype: Optional[str] = None
    ) -> float:
        """Best speedup for an estimator (optionally at one batch size / tier)."""
        candidates = [
            row.speedup
            for row in self.rows
            if row.estimator == estimator
            and (batch_size is None or row.batch_size == batch_size)
            and (dtype is None or row.dtype == dtype)
        ]
        if not candidates:
            raise KeyError(f"no benchmark rows for estimator {estimator!r}")
        return max(candidates)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": "repro-inference",
            "metadata": dict(self.metadata),
            "rows": [row.as_dict() for row in self.rows],
        }

    @property
    def text(self) -> str:
        lines = [
            "infer-bench: compiled (pure-NumPy kernel) vs graph (autodiff forward)",
            f"{'estimator':<14} {'kernel':<20} {'dtype':<8} {'batch':>6} "
            f"{'graph p50/p99 ms':>18} {'compiled p50/p99 ms':>20} "
            f"{'speedup':>8} {'max |dev|':>10} {'rel dev':>9}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.estimator:<14} {row.kernel_kind:<20} {row.dtype:<8} {row.batch_size:>6} "
                f"{row.graph_p50_ms:>8.3f} /{row.graph_p99_ms:>8.3f} "
                f"{row.compiled_p50_ms:>9.3f} /{row.compiled_p99_ms:>8.3f} "
                f"{row.speedup:>7.2f}x {row.max_abs_deviation:>10.2e} {row.max_rel_deviation:>9.2e}"
            )
        return "\n".join(lines)


def _graph_arm(estimator, queries: np.ndarray, thresholds: np.ndarray):
    """A callable reproducing the pre-compile hot path for one batch.

    SelNet variants build the full backward tape through ``model.forward``
    (mirroring the seed's ``predict``).  Estimators without an inner SelNet
    model run their ordinary ``estimate`` — for those the "graph" arm and
    the fallback kernel are the same computation (tensor-based baselines
    apply ``no_grad`` inside ``estimate`` since this refactor), so their
    reported speedup is honestly ~1x; the compiled path only claims wins
    for the fused kernels.
    """
    from ..autodiff import Tensor
    from ..core.partitioned import PartitionedSelNet
    from ..core.selnet import SelNetModel
    from .compiler import inner_selnet_model

    model = inner_selnet_model(estimator)
    if isinstance(model, SelNetModel):

        def run() -> np.ndarray:
            with enable_grad():
                output = model.forward(Tensor(queries), thresholds)
            return np.clip(output.data.reshape(len(queries)), 0.0, None)

        return run
    if isinstance(model, PartitionedSelNet):

        def run() -> np.ndarray:
            indicators = model.partitioning.indicator_batch(queries, thresholds)
            with enable_grad():
                output = model.forward(Tensor(queries), thresholds, indicators)
            return np.clip(output.data.reshape(len(queries)), 0.0, None)

        return run

    def run() -> np.ndarray:
        with enable_grad():
            return np.asarray(estimator.estimate(queries, thresholds), dtype=np.float64)

    return run


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies) * 1000.0, q))


def _time_arm(fn, repeats: int, warmup: int) -> List[float]:
    for _ in range(warmup):
        fn()
    latencies = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - start)
    return latencies


def run_inference_benchmark(
    estimators: Dict[str, Any],
    queries: np.ndarray,
    thresholds: np.ndarray,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 20,
    warmup: int = 3,
    seed: int = 0,
    metadata: Optional[Dict[str, Any]] = None,
    dtypes: Sequence[str] = ("float64",),
) -> InferenceBenchmarkReport:
    """Measure compiled vs graph inference for named fitted estimators.

    ``queries`` / ``thresholds`` form the request pool; each batch is drawn
    from it with a seeded generator (wrapping around when the pool is
    smaller than the batch).  ``dtypes`` names the precision tiers to
    compile (``float64``/``float32``/``float16``/``int8`` — see
    :mod:`repro.inference.precision`); the graph arm is timed once per
    batch and shared across tiers, and every tier's deviations are measured
    against the same float64 graph answers.
    """
    from .compiler import compile_estimator
    from .precision import parse_tier, relative_deviation

    queries = np.asarray(queries, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if len(queries) == 0:
        raise ValueError("the request pool is empty")
    tiers = [parse_tier(token) for token in dtypes]
    if not tiers:
        raise ValueError("at least one precision tier is required")
    rng = np.random.default_rng(seed)

    report = InferenceBenchmarkReport(metadata=dict(metadata or {}))
    report.metadata.setdefault("repeats", repeats)
    report.metadata.setdefault("warmup", warmup)
    report.metadata.setdefault("pool_size", int(len(thresholds)))
    report.metadata.setdefault("dtypes", [tier.name for tier in tiers])

    for name, estimator in estimators.items():
        # Compiled directly (not through estimator.compiled()) so the
        # estimator's single-slot kernel cache is not thrashed per tier.
        kernels = [
            (
                tier,
                compile_estimator(
                    estimator, dtype=tier.storage_dtype, quantize=tier.quantize
                ),
            )
            for tier in tiers
        ]
        for batch_size in batch_sizes:
            index = rng.integers(0, len(thresholds), size=int(batch_size))
            batch_queries = np.ascontiguousarray(queries[index])
            batch_thresholds = np.ascontiguousarray(thresholds[index])

            graph_arm = _graph_arm(estimator, batch_queries, batch_thresholds)
            reference = np.asarray(graph_arm(), dtype=np.float64)
            graph_latencies = _time_arm(graph_arm, repeats, warmup)
            graph_mean = float(np.mean(graph_latencies))

            for tier, kernel in kernels:

                def compiled_arm():
                    return kernel.predict(batch_queries, batch_thresholds)

                estimates = np.asarray(compiled_arm(), dtype=np.float64)
                deviation = float(np.max(np.abs(reference - estimates)))
                rel_deviation = relative_deviation(estimates, reference)
                compiled_latencies = _time_arm(compiled_arm, repeats, warmup)
                compiled_mean = float(np.mean(compiled_latencies))
                report.rows.append(
                    InferenceBenchmarkRow(
                        estimator=name,
                        kernel_kind=kernel.kind,
                        batch_size=int(batch_size),
                        repeats=repeats,
                        graph_p50_ms=_percentile_ms(graph_latencies, 50),
                        graph_p99_ms=_percentile_ms(graph_latencies, 99),
                        graph_rows_per_second=(
                            batch_size / graph_mean if graph_mean else float("inf")
                        ),
                        compiled_p50_ms=_percentile_ms(compiled_latencies, 50),
                        compiled_p99_ms=_percentile_ms(compiled_latencies, 99),
                        compiled_rows_per_second=(
                            batch_size / compiled_mean if compiled_mean else float("inf")
                        ),
                        speedup=graph_mean / compiled_mean if compiled_mean else float("inf"),
                        max_abs_deviation=deviation,
                        dtype=tier.name,
                        max_rel_deviation=rel_deviation,
                    )
                )
    return report


def write_benchmark_json(report: InferenceBenchmarkReport, path: PathLike) -> Path:
    """Serialise a benchmark report to ``path`` (e.g. ``BENCH_inference.json``)."""
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

"""Pure-NumPy inference kernels for frozen (fitted) estimators.

A *compiled kernel* is the answer-phase counterpart of a trained model: the
weights are extracted once into flat contiguous arrays and the forward pass
is re-expressed as a handful of in-place NumPy calls — no
:class:`~repro.autodiff.Tensor` allocation, no backward closures, no graph
bookkeeping.  The arithmetic replays the graph-mode forward operation for
operation (same operands, same order), so for ``float64`` kernels the
compiled estimates are bit-equal to ``model.predict``; ``float32`` trades
that equality for smaller working sets.

Three kernel families cover every registered estimator:

* :class:`CompiledSelNet` — SelNet-ct / SelNet-ad-ct (and the model inside
  ``selnet-inc``): fused autoencoder-encoder + control-point head with a
  batched piecewise-linear evaluation of Equation 1.
* :class:`CompiledPartitionedSelNet` — full SelNet: the shared encoder runs
  **once** per batch (graph mode re-encodes the same queries ``K`` times,
  once per local model) and the per-partition curves are fused through one
  indicator-weighted sum.
* :class:`GraphFallbackKernel` — everything else: delegates to
  ``estimator.estimate`` under :func:`repro.autodiff.no_grad`, so even
  non-compilable estimators stop paying for backward closures.

All kernels share the same surface: ``predict(queries, thresholds)`` for
aligned pairs and ``curve_values(queries, grid)`` which evaluates every
query's selectivity curve on a common threshold grid with **one** network
forward per query (the serving layer uses it to fill many cache misses per
micro-batch).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import no_grad, segment_upper_indices
from ..autodiff.functional import norm_l2_squared  # noqa: F401  (doc cross-ref)
from ..nn import Linear, Module, Sequential
from ..nn.layers import ReLU, Sigmoid, Softplus, Tanh
from .precision import Precision, fake_quantize, resolve_precision

#: epsilon of the Norm_l2 squared-normalisation (matches
#: :func:`repro.autodiff.norm_l2_squared`'s default, which SelNet uses)
_NORM_L2_EPSILON = 1e-6

_ACTIVATIONS = {
    ReLU: "relu",
    Tanh: "tanh",
    Sigmoid: "sigmoid",
    Softplus: "softplus",
}


class KernelCompilationError(TypeError):
    """Raised when a network cannot be frozen into a fused kernel."""


# ---------------------------------------------------------------------- #
# Fused feed-forward stacks
# ---------------------------------------------------------------------- #
class FusedFeedForward:
    """A ``Sequential`` of Linear / activation layers frozen to flat arrays.

    The forward pass allocates one output array per linear layer and applies
    the bias and activation in place — the same values as the graph-mode
    ``x @ W + b`` / ``relu`` chain, at a third of the allocations and none of
    the tape overhead.
    """

    __slots__ = ("layers", "dtype", "compute_dtype", "quantize")

    def __init__(
        self,
        layers: List[Tuple[np.ndarray, Optional[np.ndarray], Optional[str]]],
        dtype,
        compute_dtype=None,
        quantize: Optional[str] = None,
    ) -> None:
        self.layers = layers
        self.dtype = np.dtype(dtype)
        self.compute_dtype = np.dtype(compute_dtype) if compute_dtype is not None else self.dtype
        self.quantize = quantize

    @classmethod
    def from_sequential(
        cls, network: Sequential, dtype=np.float64, quantize: Optional[str] = None
    ) -> "FusedFeedForward":
        """Extract ``(weight, bias, activation)`` triples from a Sequential.

        ``dtype`` is the *storage* precision of the frozen weights; the
        compute precision follows the tier (float16 weights promote to
        float32 inside matmuls).  ``quantize="int8"`` fake-quantizes each
        weight per output channel at freeze time.
        """
        spec = resolve_precision(dtype=dtype, quantize=quantize)
        layers: List[Tuple[np.ndarray, Optional[np.ndarray], Optional[str]]] = []
        for module in network:
            if isinstance(module, Linear):
                weight = np.ascontiguousarray(module.weight.data, dtype=spec.storage_dtype)
                bias = (
                    None
                    if module.bias is None
                    else np.ascontiguousarray(module.bias.data, dtype=spec.storage_dtype)
                )
                layers.append((weight, bias, None))
            elif type(module) in _ACTIVATIONS:
                if not layers:
                    raise KernelCompilationError(
                        "activation before any linear layer cannot be fused"
                    )
                weight, bias, activation = layers[-1]
                if activation is not None:
                    raise KernelCompilationError("two consecutive activations cannot be fused")
                layers[-1] = (weight, bias, _ACTIVATIONS[type(module)])
            else:
                raise KernelCompilationError(
                    f"cannot freeze module of type {type(module).__name__} into a fused kernel"
                )
        if not layers:
            raise KernelCompilationError("cannot freeze an empty network")
        if spec.quantize is not None:
            # Standard int8 deployment practice: hidden layers (the
            # parameter bulk) carry the quantized codes, the *last* linear
            # stays full precision — its outputs are the network's answer,
            # so its rounding error would reach the estimate unamplified.
            layers = [
                (
                    fake_quantize(weight, spec.quantize, dtype=spec.storage_dtype)
                    if index < len(layers) - 1
                    else weight,
                    bias,
                    activation,
                )
                for index, (weight, bias, activation) in enumerate(layers)
            ]
        return cls(
            layers, spec.storage_dtype, compute_dtype=spec.compute_dtype, quantize=spec.quantize
        )

    @property
    def num_parameters(self) -> int:
        return sum(
            weight.size + (0 if bias is None else bias.size) for weight, bias, _ in self.layers
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.dtype != self.compute_dtype:
            # Mixed-precision entry: inputs run at compute precision and
            # narrower stored weights promote inside the matmul.
            x = x.astype(self.compute_dtype)
        for weight, bias, activation in self.layers:
            x = x @ weight
            if bias is not None:
                np.add(x, bias, out=x)
            if activation == "relu":
                np.maximum(x, 0.0, out=x)
            elif activation == "tanh":
                np.tanh(x, out=x)
            elif activation == "sigmoid":
                np.negative(x, out=x)
                np.exp(x, out=x)
                np.add(x, 1.0, out=x)
                np.reciprocal(x, out=x)
            elif activation == "softplus":
                x = np.logaddexp(0.0, x)
        return x


# ---------------------------------------------------------------------- #
# Batched piecewise-linear evaluation (Equation 1)
# ---------------------------------------------------------------------- #
def piecewise_linear_batch(tau: np.ndarray, p: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Evaluate per-row piecewise-linear curves at per-row thresholds.

    The non-differentiable twin of :func:`repro.autodiff.piecewise_linear`:
    identical clamping, segment lookup and interpolation arithmetic, but on
    raw arrays with a single batched segment search.
    """
    t_clamped = np.clip(t, tau[:, 0], tau[:, -1])
    upper = segment_upper_indices(tau, t_clamped)
    lower = upper - 1
    rows = np.arange(len(tau))
    tau_lo = tau[rows, lower]
    tau_hi = tau[rows, upper]
    p_lo = p[rows, lower]
    p_hi = p[rows, upper]
    width = np.maximum(tau_hi - tau_lo, 1e-12)
    fraction = (t_clamped - tau_lo) / width
    return p_lo + fraction * (p_hi - p_lo)


def piecewise_linear_grid(tau: np.ndarray, p: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Evaluate every row's curve at every grid threshold, shape ``(n, G)``.

    ``np.interp`` per row would be exact too, but the counting formulation
    keeps the arithmetic identical to :func:`piecewise_linear_batch` and
    vectorises over both rows and grid points at once.
    """
    n, num_points = tau.shape
    grid = np.asarray(grid, dtype=tau.dtype)
    t_clamped = np.clip(grid[None, :], tau[:, :1], tau[:, -1:])  # (n, G)
    # Segment lookup per (row, grid point): count entries strictly below t.
    upper = np.count_nonzero(tau[:, None, :] < t_clamped[:, :, None], axis=2)
    upper = np.clip(upper, 1, num_points - 1)
    lower = upper - 1
    rows = np.arange(n)[:, None]
    tau_lo = tau[rows, lower]
    tau_hi = tau[rows, upper]
    p_lo = p[rows, lower]
    p_hi = p[rows, upper]
    width = np.maximum(tau_hi - tau_lo, 1e-12)
    fraction = (t_clamped - tau_lo) / width
    return p_lo + fraction * (p_hi - p_lo)


# ---------------------------------------------------------------------- #
# SelNet head: control-point generation without the tape
# ---------------------------------------------------------------------- #
class CompiledControlPointHead:
    """Frozen τ- and p-generators of one :class:`~repro.core.SelNetModel`."""

    def __init__(self, model, dtype=np.float64, quantize: Optional[str] = None) -> None:
        spec = resolve_precision(dtype=dtype, quantize=quantize)
        head = model.head
        tau_generator = head.tau_generator
        p_generator = head.p_generator
        self.dtype = spec.storage_dtype
        self.compute_dtype = spec.compute_dtype
        self.quantize = spec.quantize
        self.t_max = float(tau_generator.t_max)
        self.query_dependent_tau = bool(tau_generator.query_dependent)
        # The τ-generator defines the curve's segment boundaries through a
        # squared-normalisation + prefix sum, so weight rounding there is
        # amplified by curve steepness — and it holds few parameters.  It
        # stays full precision under int8; the byte savings live in the
        # p-encoder and autoencoder hidden layers.
        self.tau_network = FusedFeedForward.from_sequential(
            tau_generator.network, spec.storage_dtype, quantize=None
        )
        self.p_encoder = FusedFeedForward.from_sequential(
            p_generator.encoder, spec.storage_dtype, quantize=spec.quantize
        )
        self.embedding_dim = int(p_generator.embedding_dim)
        self.num_outputs = int(p_generator.num_outputs)
        # Stack the per-point decoders into one (L+2, emb, 1) batched matmul
        # operand: np.matmul evaluates every decoder's slice in one call,
        # with per-slice results bit-equal to the graph-mode per-decoder
        # ``h_i @ W_i`` products.
        decoder_weights = np.stack(
            [decoder.weight.data for decoder in p_generator.decoders], axis=0
        )
        # The per-point decoders are the head's final layer (emb x 1 each —
        # a negligible share of the bytes, all of the output sensitivity),
        # so like every last linear they stay unquantized under int8.
        self.decoder_weights = np.ascontiguousarray(
            decoder_weights, dtype=spec.storage_dtype
        )
        self.decoder_biases = np.ascontiguousarray(
            np.stack(
                [
                    np.zeros(1) if decoder.bias is None else decoder.bias.data
                    for decoder in p_generator.decoders
                ],
                axis=0,
            ),
            dtype=spec.storage_dtype,
        )[:, None, :]

    @property
    def num_parameters(self) -> int:
        return (
            self.tau_network.num_parameters
            + self.p_encoder.num_parameters
            + self.decoder_weights.size
            + self.num_outputs
        )

    def control_points(self, augmented: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the ``(tau, p)`` control-point arrays, each ``(batch, L+2)``."""
        batch = len(augmented)

        # --- τ: FFN -> Norm_l2 -> scale -> prefix sum, ends pinned --- #
        tau_input = np.ones_like(augmented) if not self.query_dependent_tau else augmented
        raw = self.tau_network(tau_input)
        squared = raw ** 2
        denom = squared.sum(axis=-1, keepdims=True) + _NORM_L2_EPSILON
        numer = squared + _NORM_L2_EPSILON / raw.shape[-1]
        increments = (numer / denom) * self.t_max
        tau = np.empty((batch, self.num_outputs), dtype=augmented.dtype)
        tau[:, 0] = 0.0
        np.cumsum(increments, axis=1, out=tau[:, 1:])
        tau[:, -1] = self.t_max

        # --- p: encoder -> per-point linear decoders -> ReLU -> prefix sum --- #
        embeddings = self.p_encoder(augmented)
        # (L+2, batch, emb) @ (L+2, emb, 1): one batched matmul evaluates all
        # decoders; slice i sees exactly embeddings[:, i*emb:(i+1)*emb].
        per_point = embeddings.reshape(batch, self.num_outputs, self.embedding_dim)
        value = np.matmul(per_point.transpose(1, 0, 2), self.decoder_weights)
        np.add(value, self.decoder_biases, out=value)
        np.maximum(value, 0.0, out=value)
        p = np.cumsum(value[:, :, 0].T, axis=1)
        return tau, p


# ---------------------------------------------------------------------- #
# Kernel surface
# ---------------------------------------------------------------------- #
class CompiledKernel:
    """Common surface of every compiled inference kernel."""

    #: short identifier used in reports and ``describe()``
    kind: str = "kernel"
    #: True when ``curve_values`` costs one network forward per query (the
    #: fused path); False when each grid point is a full estimator row.
    fuses_curves: bool = False

    #: storage precision of the frozen weights
    dtype: np.dtype = np.dtype(np.float64)
    #: precision the forward arithmetic runs at (float16 promotes to f32)
    compute_dtype: np.dtype = np.dtype(np.float64)
    #: weight-quantization mode, or None for plain floating point
    quantize: Optional[str] = None
    #: tier name (``float64``/``float32``/``float16``/``int8``)
    precision: str = "float64"

    def _resolve_precision(self, dtype, quantize: Optional[str]) -> Precision:
        spec = resolve_precision(dtype=dtype, quantize=quantize)
        self.dtype = spec.storage_dtype
        self.compute_dtype = spec.compute_dtype
        self.quantize = spec.quantize
        self.precision = spec.name
        return spec

    def predict(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Non-negative selectivity estimates for aligned (query, t) pairs."""
        raise NotImplementedError

    def curve_values(self, queries: np.ndarray, grid: np.ndarray) -> np.ndarray:
        """Each query's selectivity curve on ``grid``, shape ``(n, len(grid))``."""
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "dtype": str(self.dtype),
            "compute_dtype": str(self.compute_dtype),
            "quantize": self.quantize,
            "precision": self.precision,
            "fuses_curves": self.fuses_curves,
        }


class CompiledSelNet(CompiledKernel):
    """Fused inference kernel for a single (non-partitioned) SelNet model."""

    kind = "selnet"
    fuses_curves = True

    def __init__(self, model, dtype=np.float64, quantize: Optional[str] = None) -> None:
        spec = self._resolve_precision(dtype, quantize)
        self.input_dim = int(model.input_dim)
        self.encoder = FusedFeedForward.from_sequential(
            model.autoencoder.encoder, spec.storage_dtype, quantize=spec.quantize
        )
        self.head = CompiledControlPointHead(model, spec.storage_dtype, quantize=spec.quantize)
        self.t_max = self.head.t_max

    @property
    def num_parameters(self) -> int:
        return self.encoder.num_parameters + self.head.num_parameters

    def _augment(self, queries: np.ndarray) -> np.ndarray:
        queries = np.ascontiguousarray(queries, dtype=self.compute_dtype)
        if queries.ndim != 2:
            raise ValueError(f"queries must be 2-D, got shape {queries.shape}")
        latent = self.encoder(queries)
        return np.concatenate([queries, latent], axis=1)

    def control_points(self, queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.head.control_points(self._augment(queries))

    def predict(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        thresholds = np.asarray(thresholds, dtype=self.compute_dtype)
        tau, p = self.control_points(queries)
        output = piecewise_linear_batch(tau, p, thresholds)
        return np.clip(output, 0.0, None)

    def curve_values(self, queries: np.ndarray, grid: np.ndarray) -> np.ndarray:
        tau, p = self.control_points(queries)
        return np.clip(piecewise_linear_grid(tau, p, grid), 0.0, None)

    def describe(self) -> dict:
        info = super().describe()
        info["num_parameters"] = self.num_parameters
        return info


class CompiledPartitionedSelNet(CompiledKernel):
    """Fused inference kernel for partitioned SelNet (K local models).

    Graph mode runs the shared autoencoder once *per local model*; the
    compiled kernel encodes the batch once and feeds the shared augmented
    representation to each frozen head, then combines the per-partition
    curve evaluations through the indicator-weighted sum of Observation 1.
    """

    kind = "selnet-partitioned"
    fuses_curves = True

    def __init__(self, model, dtype=np.float64, quantize: Optional[str] = None) -> None:
        spec = self._resolve_precision(dtype, quantize)
        self.input_dim = int(model.input_dim)
        self.t_max = float(model.t_max)
        self.partitioning = model.partitioning
        self.encoder = FusedFeedForward.from_sequential(
            model.autoencoder.encoder, spec.storage_dtype, quantize=spec.quantize
        )
        self.heads = [
            CompiledControlPointHead(local, spec.storage_dtype, quantize=spec.quantize)
            for local in model.local_models
        ]

    @property
    def num_partitions(self) -> int:
        return len(self.heads)

    @property
    def num_parameters(self) -> int:
        return self.encoder.num_parameters + sum(head.num_parameters for head in self.heads)

    def _augment(self, queries: np.ndarray) -> np.ndarray:
        queries = np.ascontiguousarray(queries, dtype=self.compute_dtype)
        if queries.ndim != 2:
            raise ValueError(f"queries must be 2-D, got shape {queries.shape}")
        latent = self.encoder(queries)
        return np.concatenate([queries, latent], axis=1)

    def local_control_points(
        self, queries: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One ``(tau, p)`` pair per partition, sharing a single encode."""
        augmented = self._augment(queries)
        return [head.control_points(augmented) for head in self.heads]

    def predict(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=self.compute_dtype)
        batch = len(queries)
        indicators = self.partitioning.indicator_batch(queries, thresholds)
        augmented = self._augment(queries)
        # Accumulating in partition order keeps the summation order — and
        # therefore the bits — of the graph-mode indicator-weighted sum.
        output = np.zeros(batch, dtype=self.compute_dtype)
        for k, head in enumerate(self.heads):
            if not np.any(indicators[:, k]):
                # No query ball in the batch intersects this partition: its
                # contribution is exactly zero, so the head never runs.
                # (Row-level filtering would change the BLAS batch shape and
                # with it the low-order bits — full evaluation keeps the
                # active rows bit-equal to graph mode.)
                continue
            tau, p = head.control_points(augmented)
            output += piecewise_linear_batch(tau, p, thresholds) * indicators[:, k]
        return np.clip(output, 0.0, None)

    def curve_values(self, queries: np.ndarray, grid: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        grid = np.asarray(grid, dtype=self.compute_dtype)
        n, num_grid = len(queries), len(grid)
        locals_ = self.local_control_points(queries)
        # One (n, K, G) stack of per-partition curves, one indicator batch for
        # the full (query x grid) cross product.
        local_curves = np.stack(
            [piecewise_linear_grid(tau, p, grid) for tau, p in locals_], axis=1
        )
        repeated = np.repeat(queries, num_grid, axis=0)
        tiled = np.tile(grid, n)
        indicators = self.partitioning.indicator_batch(repeated, tiled)
        indicators = indicators.reshape(n, num_grid, -1).transpose(0, 2, 1)  # (n, K, G)
        output = (local_curves * indicators).sum(axis=1)
        return np.clip(output, 0.0, None)

    def describe(self) -> dict:
        info = super().describe()
        info["num_parameters"] = self.num_parameters
        info["num_partitions"] = self.num_partitions
        return info


class GraphFallbackKernel(CompiledKernel):
    """Generic no-grad wrapper for estimators without a fused kernel.

    Delegates to ``estimator.estimate`` inside :func:`repro.autodiff.no_grad`
    so tensor-based estimators stop allocating backward closures; purely
    NumPy estimators (KDE, LSH, GBDT...) pass straight through unchanged.
    """

    kind = "graph-fallback"
    fuses_curves = False

    def __init__(self, estimator, dtype=np.float64, quantize: Optional[str] = None) -> None:
        # The fallback records the requested tier but always computes at the
        # estimator's own (float64) precision — its deviation is zero.
        self._resolve_precision(dtype, quantize)
        self._estimator = estimator

    def predict(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        with no_grad():
            return np.asarray(
                self._estimator.estimate(queries, thresholds), dtype=np.float64
            )

    def curve_values(self, queries: np.ndarray, grid: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        grid = np.asarray(grid, dtype=np.float64)
        repeated = np.repeat(queries, len(grid), axis=0)
        tiled = np.tile(grid, len(queries))
        with no_grad():
            values = np.asarray(self._estimator.estimate(repeated, tiled), dtype=np.float64)
        return values.reshape(len(queries), len(grid))

    def describe(self) -> dict:
        info = super().describe()
        info["wraps"] = type(self._estimator).__name__
        return info

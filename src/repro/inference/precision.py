"""Precision tiers for compiled inference kernels.

A *precision tier* names one (storage dtype, compute dtype, quantization)
combination together with the error budget the parity gate enforces for it:

``float64``
    Weights and arithmetic in double precision — bit-equal to the autodiff
    graph forward; the budget is the seed's absolute parity bound.
``float32``
    Weights and arithmetic in single precision.  Matmuls dispatch to BLAS
    ``sgemm`` on half the bytes, which is where the batch-throughput win
    comes from; estimates agree with graph mode to single precision.
``float16``
    Weights *stored* in half precision (half the resident model bytes) with
    float32 arithmetic — NumPy has no BLAS half-precision matmul, so the
    weights promote to float32 inside the kernel.  The budget covers the
    storage rounding.
``int8``
    Hidden-layer weights fake-quantized at freeze time: per-output-channel
    symmetric int8 codes, dequantized back to float32 once for compute
    (the standard way to measure the accuracy an int8 deployment would
    serve at — arithmetic stays float32, the values are exactly what int8
    storage retains).  Following standard int8 practice each network's
    *last* linear layer stays full precision: it holds a negligible share
    of the parameters and all of the unamplified output sensitivity.

The budgets are *relative* deviations against the float64 graph forward,
``|compiled - graph| / max(|graph|, 1)`` — except float64 itself, which is
gated on the absolute bit-parity bound.  ``repro infer-bench --dtype ...``
fails beyond them, so a tier's accuracy claim is enforced, not aspirational.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: supported weight-quantization modes (``compile_estimator(quantize=...)``)
QUANTIZE_MODES = ("int8",)

#: per-tier deviation budgets enforced by the infer-bench parity gate.
#: float64 is absolute (bit parity); the rest are relative to the graph
#: forward with scale ``max(|reference|, 1)``.  Chosen with ~10x headroom
#: over deviations observed on trained SelNet models.
DEFAULT_ERROR_BUDGETS = {
    "float64": 1e-12,
    "float32": 1e-3,
    "float16": 2e-2,
    "int8": 5e-2,
}

#: tier order used by reports (widest to narrowest)
TIER_NAMES = ("float64", "float32", "float16", "int8")


@dataclass(frozen=True)
class Precision:
    """One resolved precision tier."""

    name: str
    storage_dtype: np.dtype
    compute_dtype: np.dtype
    quantize: Optional[str] = None

    @property
    def budget(self) -> float:
        return DEFAULT_ERROR_BUDGETS[self.name]

    @property
    def relative(self) -> bool:
        """Whether the budget is a relative bound (all tiers but float64)."""
        return self.name != "float64"


def resolve_precision(dtype=np.float64, quantize: Optional[str] = None) -> Precision:
    """The :class:`Precision` tier for a ``(dtype, quantize)`` request.

    ``quantize`` overrides the storage story entirely: int8 codes are
    dequantized to float32 for compute, whatever ``dtype`` was passed.
    """
    if quantize is not None:
        if quantize not in QUANTIZE_MODES:
            raise ValueError(
                f"unknown quantize mode {quantize!r}; available: {QUANTIZE_MODES}"
            )
        return Precision(
            name=quantize,
            storage_dtype=np.dtype(np.float32),
            compute_dtype=np.dtype(np.float32),
            quantize=quantize,
        )
    dtype = np.dtype(dtype)
    if dtype == np.dtype(np.float64):
        return Precision("float64", dtype, dtype)
    if dtype == np.dtype(np.float32):
        return Precision("float32", dtype, dtype)
    if dtype == np.dtype(np.float16):
        # No BLAS path for half precision: store halved, compute in f32.
        return Precision("float16", dtype, np.dtype(np.float32))
    raise ValueError(f"unsupported kernel dtype {dtype!r}; use float64/float32/float16")


def parse_tier(token: str) -> Precision:
    """Resolve a CLI/config tier token (``float64``/``float32``/``float16``/``int8``)."""
    token = str(token).strip().lower()
    if token in QUANTIZE_MODES:
        return resolve_precision(quantize=token)
    try:
        return resolve_precision(dtype=np.dtype(token))
    except TypeError:
        raise ValueError(
            f"unknown precision tier {token!r}; available: {TIER_NAMES}"
        ) from None


def error_budget(tier: str) -> float:
    """The enforced deviation budget for a tier name."""
    try:
        return DEFAULT_ERROR_BUDGETS[str(tier)]
    except KeyError:
        raise ValueError(
            f"no error budget for tier {tier!r}; available: {TIER_NAMES}"
        ) from None


# ---------------------------------------------------------------------- #
# Weight quantization (kernels)
# ---------------------------------------------------------------------- #
def quantize_symmetric(weights: np.ndarray, bits: int = 8) -> Tuple[np.ndarray, np.ndarray]:
    """Per-output-channel symmetric quantization of a weight array.

    Channels are the last axis (a Linear's output features); each gets one
    scale ``max|w| / (2**(bits-1) - 1)`` so zero stays exactly zero.
    Returns ``(codes, scale)`` with int8 codes and float32 scales
    broadcastable back over ``weights``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    levels = float(2 ** (bits - 1) - 1)
    magnitude = np.abs(weights).max(axis=tuple(range(weights.ndim - 1)), keepdims=True)
    scale = np.where(magnitude > 0.0, magnitude / levels, 1.0)
    codes = np.clip(np.rint(weights / scale), -levels, levels).astype(np.int8)
    return codes, scale.astype(np.float32)


def dequantize_symmetric(codes: np.ndarray, scale: np.ndarray, dtype=np.float32) -> np.ndarray:
    """Reconstruct real-valued weights from symmetric int codes."""
    return (codes.astype(np.float32) * scale).astype(dtype)


def fake_quantize(weights: np.ndarray, mode: str = "int8", dtype=np.float32) -> np.ndarray:
    """Round-trip ``weights`` through the quantizer (quantize-dequantize).

    The returned array holds exactly the values int8 storage retains, in a
    compute-friendly dtype — the kernel then serves the accuracy of the
    quantized deployment at full matmul speed.
    """
    if mode not in QUANTIZE_MODES:
        raise ValueError(f"unknown quantize mode {mode!r}; available: {QUANTIZE_MODES}")
    codes, scale = quantize_symmetric(weights, bits=8)
    return np.ascontiguousarray(dequantize_symmetric(codes, scale, dtype=dtype))


# ---------------------------------------------------------------------- #
# Value quantization (curve caches)
# ---------------------------------------------------------------------- #
def quantize_values(values: np.ndarray, bits: int = 8) -> Tuple[np.ndarray, float, float]:
    """Affine-quantize a value array onto ``2**bits`` levels.

    Returns ``(codes, scale, offset)`` with unsigned codes such that
    ``codes * scale + offset`` reconstructs the values to within half a
    quantization step of the ``[min, max]`` range.  Used by the serving
    cache to store selectivity curves at 1–2 bytes per control point.
    """
    if bits not in (8, 16):
        raise ValueError(f"curve quantization supports 8 or 16 bits, got {bits}")
    values = np.asarray(values, dtype=np.float64)
    code_dtype = np.uint8 if bits == 8 else np.uint16
    levels = float(2**bits - 1)
    lo = float(values.min()) if values.size else 0.0
    hi = float(values.max()) if values.size else 0.0
    scale = (hi - lo) / levels
    if scale <= 0.0:
        # A flat curve encodes as all-zero codes with the offset carrying it.
        return np.zeros(values.shape, dtype=code_dtype), 1.0, lo
    codes = np.clip(np.rint((values - lo) / scale), 0.0, levels).astype(code_dtype)
    return codes, scale, lo


def dequantize_values(codes: np.ndarray, scale: float, offset: float) -> np.ndarray:
    """Reconstruct a float64 value array from affine codes."""
    return codes.astype(np.float64) * float(scale) + float(offset)


# ---------------------------------------------------------------------- #
# Deviation measurement (the gate's yardstick)
# ---------------------------------------------------------------------- #
def relative_deviation(estimates: np.ndarray, reference: np.ndarray) -> float:
    """Max relative deviation with the parity gate's scale ``max(|ref|, 1)``.

    Selectivities are counts (often large); the ``max(|ref|, 1)`` floor
    keeps tiny absolute wobble on near-zero answers from dominating.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if estimates.size == 0:
        return 0.0
    scale = np.maximum(np.abs(reference), 1.0)
    return float(np.max(np.abs(estimates - reference) / scale))

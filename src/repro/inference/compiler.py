"""The compile step: freeze a fitted estimator into an inference kernel.

:func:`compile_estimator` inspects the estimator and picks the most fused
kernel available (see :mod:`repro.inference.kernels`); anything it does not
recognise gets the generic :class:`GraphFallbackKernel`, so compilation
never fails for a fitted estimator — the worst case is "same answers,
no-grad forward".

Callers normally go through :meth:`repro.SelectivityEstimator.compiled`,
which caches the kernel on the estimator and recompiles after ``fit`` /
``update`` / persistence ``load``.
"""

from __future__ import annotations

import numpy as np

from .kernels import (
    CompiledKernel,
    CompiledPartitionedSelNet,
    CompiledSelNet,
    GraphFallbackKernel,
    KernelCompilationError,
)


def inner_selnet_model(estimator):
    """The SelNet network inside ``estimator``, or None when there is none.

    Resolves the two wrappers that carry one: :class:`SelNetEstimator`
    (``model``) and :class:`IncrementalSelNetEstimator` (the fitted
    ``state``'s inner estimator).  Shared by the compiler and the
    inference benchmark so both dispatch on the same rule.
    """
    from ..core.incremental import IncrementalSelNetEstimator
    from ..core.trainer import SelNetEstimator

    if isinstance(estimator, IncrementalSelNetEstimator):
        if estimator.state is not None:
            return estimator.state.estimator.model
        return None
    if isinstance(estimator, SelNetEstimator):
        return estimator.model
    return None


def compile_estimator(estimator, dtype=np.float64, quantize=None) -> CompiledKernel:
    """Freeze ``estimator`` into a pure-NumPy inference kernel.

    Parameters
    ----------
    estimator:
        Any :class:`~repro.estimator.SelectivityEstimator`.  Unfitted
        estimators compile to the generic fallback (which surfaces the
        usual "must be fitted" error on first use).
    dtype:
        Storage precision of the frozen weights: ``np.float64`` (default —
        bit-equal to graph mode), ``np.float32`` (BLAS sgemm on half the
        bytes) or ``np.float16`` (halved storage, float32 arithmetic).
    quantize:
        ``"int8"`` fake-quantizes the weights per output channel at freeze
        time (float32 compute over exactly the values int8 storage
        retains).  Overrides ``dtype``.

    Each tier carries an error budget (see
    :mod:`repro.inference.precision`) that ``repro infer-bench --dtype``
    enforces against the float64 graph forward.
    """
    # Local imports: repro.core imports the registry machinery, which must
    # not depend on the inference layer at module-import time.
    from ..core.partitioned import PartitionedSelNet
    from ..core.selnet import SelNetModel

    model = inner_selnet_model(estimator)
    try:
        if isinstance(model, SelNetModel):
            return CompiledSelNet(model, dtype=dtype, quantize=quantize)
        if isinstance(model, PartitionedSelNet):
            return CompiledPartitionedSelNet(model, dtype=dtype, quantize=quantize)
    except KernelCompilationError:
        # An exotic architecture (e.g. a customised Sequential) that the
        # fused extractor cannot freeze still serves through the fallback.
        pass
    return GraphFallbackKernel(estimator, dtype=dtype, quantize=quantize)

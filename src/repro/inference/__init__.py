"""Compiled pure-NumPy inference path for fitted estimators.

The training substrate (:mod:`repro.autodiff` / :mod:`repro.nn`) optimises
for differentiability; serving optimises for answer latency.  This package
separates the two: :func:`compile_estimator` freezes any fitted estimator
into a :class:`CompiledKernel` — flat contiguous weights, in-place NumPy
forward, batched piecewise-linear evaluation, zero autograd overhead — and
the serving / cluster tiers use those kernels by default.

Quick start::

    from repro import create_estimator
    from repro.inference import compile_estimator

    estimator = create_estimator("selnet-ct", epochs=20).fit(split)
    kernel = estimator.compiled()          # cached; same as compile_estimator(estimator)
    kernel.predict(queries, thresholds)    # bit-equal to estimator.estimate(...)
    kernel.curve_values(queries, grid)     # one forward per query, all thresholds

Benchmarks: :func:`run_inference_benchmark` (the ``repro infer-bench``
subcommand) measures compiled-vs-graph throughput and latency percentiles
and writes ``BENCH_inference.json``.
"""

from .bench import (
    InferenceBenchmarkReport,
    run_inference_benchmark,
    write_benchmark_json,
)
from .compiler import compile_estimator
from .kernels import (
    CompiledKernel,
    CompiledPartitionedSelNet,
    CompiledSelNet,
    FusedFeedForward,
    GraphFallbackKernel,
    KernelCompilationError,
    piecewise_linear_batch,
    piecewise_linear_grid,
)
from .precision import (
    DEFAULT_ERROR_BUDGETS,
    Precision,
    error_budget,
    parse_tier,
    quantize_values,
    dequantize_values,
    relative_deviation,
    resolve_precision,
)

__all__ = [
    "compile_estimator",
    "CompiledKernel",
    "CompiledSelNet",
    "CompiledPartitionedSelNet",
    "GraphFallbackKernel",
    "FusedFeedForward",
    "KernelCompilationError",
    "piecewise_linear_batch",
    "piecewise_linear_grid",
    "InferenceBenchmarkReport",
    "run_inference_benchmark",
    "write_benchmark_json",
    "DEFAULT_ERROR_BUDGETS",
    "Precision",
    "error_budget",
    "parse_tier",
    "quantize_values",
    "dequantize_values",
    "relative_deviation",
    "resolve_precision",
]

"""Shared infrastructure for the baseline estimators.

The deep-learning baselines (DNN, MoE, RMI) cannot consume the raw threshold
directly (paper, Appendix B.2): the scalar ``t`` is first lifted into an
``m``-dimensional embedding ``ReLU(w t)`` which is learned jointly with the
regressor, then concatenated with the query vector.  :class:`ThresholdEmbedding`
implements that lifting; :class:`DeepRegressionEstimator` is the common
training shell the three ordinary-regression baselines share.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..autodiff import Tensor, concat, no_grad
from ..data.workload import WorkloadSplit
from ..estimator import SelectivityEstimator
from ..nn import Linear, Module, TrainingConfig, fit_regressor, log_huber_loss


class ThresholdEmbedding(Module):
    """Learned non-linear lifting of the scalar threshold, ``ReLU(w t)``."""

    def __init__(self, embedding_dim: int = 8, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.embedding_dim = embedding_dim
        self.projection = Linear(1, embedding_dim, rng=rng)

    def forward(self, thresholds: Tensor) -> Tensor:
        if not isinstance(thresholds, Tensor):
            thresholds = Tensor(np.asarray(thresholds, dtype=np.float64).reshape(-1, 1))
        elif thresholds.ndim == 1:
            thresholds = thresholds.reshape(len(thresholds), 1)
        return self.projection(thresholds).relu()


class QueryThresholdRegressor(Module):
    """Wraps a core network with the ``[x ; embed(t)]`` input convention."""

    def __init__(
        self,
        core: Module,
        threshold_embedding: ThresholdEmbedding,
    ) -> None:
        super().__init__()
        self.core = core
        self.threshold_embedding = threshold_embedding

    def forward(self, queries: Tensor, thresholds: np.ndarray) -> Tensor:
        if not isinstance(queries, Tensor):
            queries = Tensor(queries)
        embedded = self.threshold_embedding(Tensor(np.asarray(thresholds, dtype=np.float64).reshape(-1, 1)))
        combined = concat([queries, embedded], axis=1)
        output = self.core(combined)
        if output.ndim == 2 and output.shape[1] == 1:
            output = output.reshape(output.shape[0])
        return output


class DeepRegressionEstimator(SelectivityEstimator):
    """Common fit/estimate shell for the ordinary deep-regression baselines.

    Subclasses provide :meth:`build_core`, which constructs the network that
    maps the combined ``[x ; embed(t)]`` input to a scalar.  Training uses the
    same Huber-on-log loss as SelNet (the paper trains all models with it for
    a fair comparison).
    """

    guarantees_consistency = False

    def __init__(
        self,
        threshold_embedding_dim: int = 8,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        early_stopping_patience: Optional[int] = 15,
        seed: int = 0,
    ) -> None:
        self.threshold_embedding_dim = threshold_embedding_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.early_stopping_patience = early_stopping_patience
        self.seed = seed
        self.model: Optional[QueryThresholdRegressor] = None

    # ------------------------------------------------------------------ #
    def build_core(self, input_dim: int, rng: np.random.Generator) -> Module:
        """Construct the regressor body; implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def fit(self, split: WorkloadSplit) -> "DeepRegressionEstimator":
        rng = np.random.default_rng(self.seed)
        query_dim = split.train.queries.shape[1]
        self._input_dim = query_dim
        core = self.build_core(query_dim + self.threshold_embedding_dim, rng)
        self.model = QueryThresholdRegressor(core, ThresholdEmbedding(self.threshold_embedding_dim, rng=rng))

        train_features = np.concatenate(
            [split.train.queries, split.train.thresholds[:, None]], axis=1
        )
        valid_features = np.concatenate(
            [split.validation.queries, split.validation.thresholds[:, None]], axis=1
        )

        def forward(model: QueryThresholdRegressor, batch: np.ndarray) -> Tensor:
            queries, thresholds = batch[:, :-1], batch[:, -1]
            return model(Tensor(queries), thresholds)

        config = TrainingConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            early_stopping_patience=self.early_stopping_patience,
        )
        fit_regressor(
            self.model,
            lambda prediction, targets: log_huber_loss(prediction, targets),
            train_features,
            split.train.selectivities,
            config,
            validation=(valid_features, split.validation.selectivities),
            rng=rng,
            forward=forward,
        )
        return self

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        with no_grad():
            output = self.model(Tensor(queries), thresholds)
        return np.clip(output.data.reshape(len(queries)), 0.0, None)

"""Unconstrained Monotonic Neural Network baseline ("UMNN" in the paper).

UMNN (Wehenkel & Louppe, NeurIPS 2019) obtains a monotone function by
integrating a strictly positive learned derivative:

    f̂(x, t) = f̂_0(x) + ∫_0^t ĝ(x, s) ds ,   ĝ > 0

The integral is approximated with Clenshaw–Curtis quadrature (fixed nodes and
non-negative weights), so the estimate is monotone in ``t`` by construction.
Section 6.3 of the paper points out the key limitation relative to SelNet:
the quadrature nodes are the same for every query, whereas SelNet adapts its
control points per query.

The derivative network ĝ is an FFN over ``[x, s]`` whose output passes
through ``ELU + 1`` to stay positive; the offset f̂_0 is a softplus-activated
FFN over ``x`` (selectivity at threshold 0 is small but non-zero because the
query itself is usually a database member).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Tensor, no_grad
from ..data.workload import WorkloadSplit
from ..estimator import SelectivityEstimator
from ..registry import register_estimator
from ..nn import Adam, DataLoader, ELUPlusOne, Module, Sequential, feed_forward, log_huber_loss


def clenshaw_curtis(num_points: int) -> Tuple[np.ndarray, np.ndarray]:
    """Clenshaw–Curtis nodes and weights on ``[-1, 1]``.

    Uses the classical cosine-sum formula; all weights are non-negative,
    which is what preserves monotonicity of the integrated estimator.
    """
    if num_points < 2:
        raise ValueError("need at least 2 quadrature points")
    n = num_points - 1
    k = np.arange(num_points)
    nodes = np.cos(np.pi * k / n)

    weights = np.zeros(num_points)
    for index in range(num_points):
        total = 1.0
        for j in range(1, n // 2 + 1):
            b = 1.0 if 2 * j == n else 2.0
            total -= b / (4.0 * j ** 2 - 1.0) * np.cos(2.0 * j * index * np.pi / n)
        c = 1.0 if index in (0, n) else 2.0
        weights[index] = c * total / n
    return nodes, weights


class UMNNModel(Module):
    """Derivative network + offset network + Clenshaw–Curtis integration."""

    def __init__(
        self,
        query_dim: int,
        hidden_sizes: Sequence[int] = (128, 128, 64),
        offset_hidden_sizes: Sequence[int] = (64,),
        num_quadrature_points: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.query_dim = query_dim
        self.derivative_net: Sequential = feed_forward(
            query_dim + 1, list(hidden_sizes), 1, rng=rng
        )
        self.derivative_activation = ELUPlusOne()
        self.offset_net: Sequential = feed_forward(
            query_dim, list(offset_hidden_sizes), 1, output_activation="softplus", rng=rng
        )
        nodes, weights = clenshaw_curtis(num_quadrature_points)
        self._nodes = nodes
        self._weights = weights

    def forward(self, queries: np.ndarray, thresholds: np.ndarray) -> Tensor:
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64).reshape(-1)
        batch = len(queries)
        num_points = len(self._nodes)

        # Quadrature sample locations: s_{i,k} = t_i / 2 * (u_k + 1) in [0, t_i].
        sample_points = 0.5 * thresholds[:, None] * (self._nodes[None, :] + 1.0)
        flat_queries = np.repeat(queries, num_points, axis=0)
        flat_points = sample_points.reshape(-1, 1)
        derivative_input = Tensor(np.concatenate([flat_queries, flat_points], axis=1))
        derivative = self.derivative_activation(self.derivative_net(derivative_input))
        derivative = derivative.reshape(batch, num_points)

        # Integral = (t / 2) * sum_k w_k * g(s_k); weights and t are constants.
        weighted = derivative * Tensor(np.broadcast_to(self._weights, (batch, num_points)).copy())
        integral = weighted.sum(axis=1) * Tensor(0.5 * thresholds)
        offset = self.offset_net(Tensor(queries)).reshape(batch)
        return integral + offset


@register_estimator(
    "umnn",
    display_name="UMNN",
    description="Unconstrained monotonic NN via Clenshaw-Curtis quadrature",
    consistent=True,
    scale_params=lambda scale, num_vectors: {"epochs": scale.baseline_epochs},
)
class UMNNEstimator(SelectivityEstimator):
    """Clenshaw–Curtis monotone network estimator (consistency guaranteed)."""

    name = "UMNN"
    guarantees_consistency = True

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (128, 128, 64),
        num_quadrature_points: int = 16,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        early_stopping_patience: Optional[int] = 15,
        seed: int = 0,
    ) -> None:
        self.hidden_sizes = tuple(hidden_sizes)
        self.num_quadrature_points = num_quadrature_points
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.early_stopping_patience = early_stopping_patience
        self.seed = seed
        self.model: Optional[UMNNModel] = None

    def fit(self, split: WorkloadSplit) -> "UMNNEstimator":
        rng = np.random.default_rng(self.seed)
        self._input_dim = split.train.queries.shape[1]
        self.model = UMNNModel(
            query_dim=split.train.queries.shape[1],
            hidden_sizes=self.hidden_sizes,
            num_quadrature_points=self.num_quadrature_points,
            rng=rng,
        )
        optimizer = Adam(self.model.parameters(), learning_rate=self.learning_rate, max_grad_norm=5.0)
        loader = DataLoader(
            split.train.queries,
            split.train.thresholds,
            split.train.selectivities,
            batch_size=self.batch_size,
            shuffle=True,
            rng=rng,
        )
        best_state = None
        best_validation = float("inf")
        stall = 0
        for _ in range(self.epochs):
            self.model.train()
            for batch_queries, batch_thresholds, batch_labels in loader:
                optimizer.zero_grad()
                prediction = self.model(batch_queries, batch_thresholds)
                loss = log_huber_loss(prediction, batch_labels)
                loss.backward()
                optimizer.step()
            self.model.eval()
            prediction = self.model(split.validation.queries, split.validation.thresholds)
            validation_loss = log_huber_loss(prediction, split.validation.selectivities).item()
            if validation_loss < best_validation - 1e-9:
                best_validation = validation_loss
                best_state = self.model.state_dict()
                stall = 0
            else:
                stall += 1
            if self.early_stopping_patience is not None and stall >= self.early_stopping_patience:
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        with no_grad():
            output = self.model(
                np.asarray(queries, dtype=np.float64), np.asarray(thresholds, dtype=np.float64)
            )
        return np.clip(output.data.reshape(len(queries)), 0.0, None)

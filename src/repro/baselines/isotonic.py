"""Isotonic regression utilities.

The related-work section of the paper discusses isotonic regression as the
classical monotone-fitting tool and explains why it does not directly apply
to query-dependent selectivity estimation (it is non-parametric in a single
variable).  Two uses are provided here:

* :func:`pool_adjacent_violators` — the PAV algorithm, used by tests and by
  the post-hoc consistency repair below.
* :class:`IsotonicCalibratedEstimator` — a wrapper that makes any fitted
  estimator consistent per query by projecting its per-query curve onto the
  monotone cone.  This is an extension beyond the paper (its "future work"
  style fix for inconsistent baselines) and is exercised by the examples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.workload import WorkloadSplit
from ..estimator import SelectivityEstimator
from ..registry import register_estimator


def pool_adjacent_violators(values: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Least-squares isotonic (non-decreasing) projection of ``values``.

    Classic pool-adjacent-violators algorithm, O(n).
    """
    values = np.asarray(values, dtype=np.float64)
    if weights is None:
        weights = np.ones_like(values)
    else:
        weights = np.asarray(weights, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("values must be 1-D")

    # Each block is (total weight, weighted mean, count of elements).
    block_weight = []
    block_mean = []
    block_count = []
    for value, weight in zip(values, weights):
        block_weight.append(float(weight))
        block_mean.append(float(value))
        block_count.append(1)
        # Merge while the monotonicity constraint is violated.
        while len(block_mean) > 1 and block_mean[-2] > block_mean[-1]:
            w2, m2, c2 = block_weight.pop(), block_mean.pop(), block_count.pop()
            w1, m1, c1 = block_weight.pop(), block_mean.pop(), block_count.pop()
            merged_weight = w1 + w2
            merged_mean = (w1 * m1 + w2 * m2) / merged_weight
            block_weight.append(merged_weight)
            block_mean.append(merged_mean)
            block_count.append(c1 + c2)
    out = np.empty_like(values)
    position = 0
    for mean, count in zip(block_mean, block_count):
        out[position : position + count] = mean
        position += count
    return out


class IsotonicCalibratedEstimator(SelectivityEstimator):
    """Make any estimator consistent by per-query isotonic projection.

    For each distinct query in a batch, the wrapped estimator's raw estimates
    are sorted by threshold and projected onto the non-decreasing cone with
    PAV.  Estimates for queries appearing only once are passed through
    unchanged (a single point is trivially monotone).
    """

    guarantees_consistency = True

    def __init__(self, base: SelectivityEstimator) -> None:
        self.base = base
        self.name = f"Isotonic({base.name})"

    def fit(self, split: WorkloadSplit) -> "IsotonicCalibratedEstimator":
        self.base.fit(split)
        self._input_dim = self.base.expected_input_dim
        return self

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        raw = np.asarray(self.base.estimate(queries, thresholds), dtype=np.float64)

        # Group identical query vectors so each group's curve can be repaired.
        keys = [row.tobytes() for row in queries]
        groups: dict = {}
        for index, key in enumerate(keys):
            groups.setdefault(key, []).append(index)
        out = raw.copy()
        for indices in groups.values():
            if len(indices) < 2:
                continue
            indices = np.asarray(indices)
            order = np.argsort(thresholds[indices], kind="stable")
            ordered = indices[order]
            out[ordered] = pool_adjacent_violators(raw[ordered])
        return out


def _isotonic_dnn_factory(**params) -> IsotonicCalibratedEstimator:
    from .dnn import DNNEstimator

    return IsotonicCalibratedEstimator(DNNEstimator(**params))


register_estimator(
    "isotonic-dnn",
    factory=_isotonic_dnn_factory,
    cls=IsotonicCalibratedEstimator,
    display_name="Isotonic(DNN)",
    description="DNN baseline repaired to consistency by per-query PAV projection",
    consistent=True,
    scale_params=lambda scale, num_vectors: {"epochs": scale.baseline_epochs},
)

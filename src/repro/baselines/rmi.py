"""Recursive Model Index regression baseline ("RMI" in the paper).

RMI (Kraska et al., "The Case for Learned Index Structures") is a hierarchy
of models: a root model routes each input to one of several second-level
models, which may route further to leaf models; the selected leaf produces
the prediction.  The paper instantiates a three-level hierarchy of FFNs
(1 / 4 / 8 models).

During training all levels are trained jointly with soft routing (the routing
distribution is a softmax over the stage's models) so gradients reach every
model; at inference the arg-max route is followed, as in the original RMI.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import Tensor, softmax, stack
from ..nn import Module, Sequential, feed_forward
from ..registry import register_estimator
from .base import DeepRegressionEstimator


class RMIStage(Module):
    """One level of the hierarchy: a router plus its set of member models."""

    def __init__(
        self,
        input_dim: int,
        num_models: int,
        hidden_sizes: Sequence[int],
        output_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_models = num_models
        self.models: List[Sequential] = [
            feed_forward(input_dim, list(hidden_sizes), output_dim, rng=rng) for _ in range(num_models)
        ]
        self.router: Optional[Sequential] = (
            feed_forward(input_dim, [32], num_models, rng=rng) if num_models > 1 else None
        )

    def routing_weights(self, x: Tensor, hard: bool) -> Tensor:
        if self.router is None:
            return Tensor(np.ones((x.shape[0], 1)))
        logits = self.router(x)
        if not hard:
            return softmax(logits, axis=1)
        choice = np.argmax(logits.data, axis=1)
        one_hot = np.zeros_like(logits.data)
        one_hot[np.arange(len(choice)), choice] = 1.0
        return Tensor(one_hot)

    def forward(self, x: Tensor, hard: bool = False) -> Tensor:
        weights = self.routing_weights(x, hard)
        outputs = stack([model(x).reshape(x.shape[0]) for model in self.models], axis=1)
        return (weights * outputs).sum(axis=1)


class RecursiveModelIndex(Module):
    """Two-stage RMI: the leaf stage is selected by a learned router.

    The paper's three-level 1/4/8 structure collapses naturally into a router
    over leaf experts once the middle layer only routes; this implementation
    keeps a configurable number of leaf models (default 8) with soft routing
    during training and hard routing at inference.
    """

    def __init__(
        self,
        input_dim: int,
        num_leaf_models: int = 8,
        leaf_hidden_sizes: Sequence[int] = (64, 64),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.stage = RMIStage(input_dim, num_leaf_models, leaf_hidden_sizes, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.stage(x, hard=not self.training)


@register_estimator(
    "rmi",
    display_name="RMI",
    description="Recursive-model-index regressor (router + leaf experts)",
    default_params={"num_leaf_models": 6},
    scale_params=lambda scale, num_vectors: {"epochs": scale.baseline_epochs},
)
class RMIEstimator(DeepRegressionEstimator):
    """Recursive-model-index selectivity regressor (no consistency guarantee)."""

    name = "RMI"
    guarantees_consistency = False

    def __init__(
        self,
        num_leaf_models: int = 8,
        leaf_hidden_sizes: Sequence[int] = (64, 64),
        threshold_embedding_dim: int = 8,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        early_stopping_patience: Optional[int] = 15,
        seed: int = 0,
    ) -> None:
        super().__init__(
            threshold_embedding_dim=threshold_embedding_dim,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            early_stopping_patience=early_stopping_patience,
            seed=seed,
        )
        self.num_leaf_models = num_leaf_models
        self.leaf_hidden_sizes = tuple(leaf_hidden_sizes)

    def build_core(self, input_dim: int, rng: np.random.Generator) -> Module:
        return RecursiveModelIndex(
            input_dim,
            num_leaf_models=self.num_leaf_models,
            leaf_hidden_sizes=self.leaf_hidden_sizes,
            rng=rng,
        )

"""Sparsely-gated Mixture-of-Experts regression baseline ("MoE" in the paper).

A gating network scores ``num_experts`` expert FFNs; the top-k experts are
activated and their outputs combined with softmax-renormalised gate weights
(Shazeer et al., 2017).  The paper uses 30 experts with top-3 routing; the
defaults here are scaled down.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import Tensor, softmax, stack, where
from ..nn import Module, Sequential, feed_forward
from ..registry import register_estimator
from .base import DeepRegressionEstimator


class MixtureOfExperts(Module):
    """Top-k sparsely gated mixture of expert FFNs producing a scalar."""

    def __init__(
        self,
        input_dim: int,
        num_experts: int = 8,
        top_k: int = 3,
        expert_hidden_sizes: Sequence[int] = (64, 64),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if top_k > num_experts:
            raise ValueError("top_k cannot exceed num_experts")
        if rng is None:
            rng = np.random.default_rng()
        self.num_experts = num_experts
        self.top_k = top_k
        self.experts: List[Sequential] = [
            feed_forward(input_dim, list(expert_hidden_sizes), 1, rng=rng) for _ in range(num_experts)
        ]
        self.gate: Sequential = feed_forward(input_dim, [32], num_experts, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        gate_logits = self.gate(x)  # (batch, num_experts)
        # Sparse top-k gating: mask non-top-k logits to -inf before softmax.
        logits_data = gate_logits.data
        if self.top_k < self.num_experts:
            kth = np.partition(logits_data, -self.top_k, axis=1)[:, -self.top_k][:, None]
            keep = logits_data >= kth
            gate_logits = where(keep, gate_logits, Tensor(np.full_like(logits_data, -1e9)))
        weights = softmax(gate_logits, axis=1)  # (batch, num_experts)
        expert_outputs = stack(
            [expert(x).reshape(x.shape[0]) for expert in self.experts], axis=1
        )  # (batch, num_experts)
        return (weights * expert_outputs).sum(axis=1)


@register_estimator(
    "moe",
    display_name="MoE",
    description="Sparsely-gated mixture-of-experts regressor",
    default_params={"num_experts": 6, "top_k": 2},
    scale_params=lambda scale, num_vectors: {"epochs": scale.baseline_epochs},
)
class MoEEstimator(DeepRegressionEstimator):
    """Mixture-of-Experts selectivity regressor (no consistency guarantee)."""

    name = "MoE"
    guarantees_consistency = False

    def __init__(
        self,
        num_experts: int = 8,
        top_k: int = 3,
        expert_hidden_sizes: Sequence[int] = (64, 64),
        threshold_embedding_dim: int = 8,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        early_stopping_patience: Optional[int] = 15,
        seed: int = 0,
    ) -> None:
        super().__init__(
            threshold_embedding_dim=threshold_embedding_dim,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            early_stopping_patience=early_stopping_patience,
            seed=seed,
        )
        self.num_experts = num_experts
        self.top_k = top_k
        self.expert_hidden_sizes = tuple(expert_hidden_sizes)

    def build_core(self, input_dim: int, rng: np.random.Generator) -> Module:
        return MixtureOfExperts(
            input_dim,
            num_experts=self.num_experts,
            top_k=self.top_k,
            expert_hidden_sizes=self.expert_hidden_sizes,
            rng=rng,
        )

"""Baseline selectivity estimators the paper compares SelNet against."""

from .base import DeepRegressionEstimator, QueryThresholdRegressor, ThresholdEmbedding
from .dln import Calibrator, DeepLatticeNetwork, DLNEstimator, Lattice
from .dnn import DNNEstimator
from .gbdt import (
    GradientBoostingRegressor,
    LightGBMEstimator,
    RegressionTree,
    bin_features,
    build_bin_edges,
)
from .isotonic import IsotonicCalibratedEstimator, pool_adjacent_violators
from .kde import KDEEstimator
from .lsh import LSHEstimator
from .moe import MixtureOfExperts, MoEEstimator
from .rmi import RecursiveModelIndex, RMIEstimator
from .umnn import UMNNEstimator, UMNNModel, clenshaw_curtis

__all__ = [
    "ThresholdEmbedding",
    "QueryThresholdRegressor",
    "DeepRegressionEstimator",
    "KDEEstimator",
    "LSHEstimator",
    "LightGBMEstimator",
    "GradientBoostingRegressor",
    "RegressionTree",
    "build_bin_edges",
    "bin_features",
    "DNNEstimator",
    "MoEEstimator",
    "MixtureOfExperts",
    "RMIEstimator",
    "RecursiveModelIndex",
    "DLNEstimator",
    "DeepLatticeNetwork",
    "Calibrator",
    "Lattice",
    "UMNNEstimator",
    "UMNNModel",
    "clenshaw_curtis",
    "IsotonicCalibratedEstimator",
    "pool_adjacent_violators",
]

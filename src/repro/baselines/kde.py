"""Kernel density estimation baseline ("KDE" in the paper).

Follows the metric-space approach of Mattig et al. (EDBT 2018): rather than
modelling the d-dimensional data density (which the curse of dimensionality
makes hopeless), model the one-dimensional distribution of *distances* from
the query to a sample of the database.  The selectivity estimate is

    f̂(x, t) = |D| * F̂_x(t)

where ``F̂_x`` is the CDF of a Gaussian kernel density fitted over the
distances from ``x`` to ``m`` sampled database objects.  The estimate is a
scaled CDF, hence monotonically non-decreasing in ``t`` — KDE is one of the
consistency-guaranteeing baselines (marked ``*`` in the paper's tables).

Cosine distance is handled by normalising the data and converting to the
equivalent Euclidean problem, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special

from ..data.workload import WorkloadSplit
from ..distances import DistanceFunction, get_distance
from ..estimator import SelectivityEstimator
from ..registry import register_estimator


def _adaptive_bandwidth(distances: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Adaptive per-query bandwidth from the lower tail of the distance sample.

    Selectivity workloads only ever probe the lower tail of the distance
    distribution (the paper's thresholds cover selectivities up to |D|/100),
    so the kernel scale is derived from Scott's rule applied to the smallest
    ``tail_fraction`` of distances — this is the "adaptive" element of the
    Mattig et al. estimator and prevents mass from far-away objects leaking
    into small-threshold estimates.
    """
    distances = np.sort(np.asarray(distances, dtype=np.float64))
    tail = distances[: max(int(np.ceil(tail_fraction * len(distances))), 2)]
    n = max(len(tail), 2)
    spread = np.std(tail)
    if spread <= 0:
        spread = max(np.abs(tail).max(), 1e-3)
    return float(max(1.06 * spread * n ** (-1.0 / 5.0), 1e-6))


@register_estimator(
    "kde",
    display_name="KDE",
    description="Adaptive kernel density over query-to-sample distances (Mattig et al.)",
    consistent=True,
    scale_params=lambda scale, num_vectors: {"num_samples": scale.sample_budget(num_vectors)},
)
class KDEEstimator(SelectivityEstimator):
    """Adaptive kernel density estimation over query-to-sample distances.

    Parameters
    ----------
    num_samples:
        Number of database objects sampled as kernel centres (the paper uses
        2 000 samples for KDE and LSH to keep estimation cost reasonable).
    bandwidth:
        Optional fixed kernel bandwidth; estimated per query with Scott's
        rule when omitted (this per-query adaptation is the "adaptive" part).
    seed:
        Sampling seed.
    """

    name = "KDE"
    guarantees_consistency = True

    def __init__(
        self,
        num_samples: int = 2000,
        bandwidth: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        self.num_samples = num_samples
        self.bandwidth = bandwidth
        self.seed = seed
        self._sample: Optional[np.ndarray] = None
        self._num_objects: int = 0
        self._distance: Optional[DistanceFunction] = None

    # ------------------------------------------------------------------ #
    def fit(self, split: WorkloadSplit) -> "KDEEstimator":
        data = np.asarray(split.dataset.vectors, dtype=np.float64)
        self._distance = split.distance
        self._num_objects = len(data)
        self._input_dim = data.shape[1]
        rng = np.random.default_rng(self.seed)
        size = min(self.num_samples, len(data))
        index = rng.choice(len(data), size=size, replace=False)
        self._sample = data[index]
        return self

    # ------------------------------------------------------------------ #
    def _estimate_one(self, query: np.ndarray, threshold: float) -> float:
        distances = self._distance(query, self._sample)
        bandwidth = self.bandwidth if self.bandwidth is not None else _adaptive_bandwidth(distances)
        # Gaussian kernel CDF evaluated at the threshold, averaged over centres.
        z = (threshold - distances) / bandwidth
        cdf = 0.5 * (1.0 + special.erf(z / np.sqrt(2.0)))
        return float(self._num_objects * cdf.mean())

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self._sample is None or self._distance is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        return np.asarray(
            [self._estimate_one(query, threshold) for query, threshold in zip(queries, thresholds)]
        )

"""Histogram gradient-boosted regression trees ("LightGBM" / "LightGBM-m").

The paper compares against LightGBM with and without a monotonicity
constraint on the threshold feature.  Neither LightGBM nor XGBoost is
available offline, so this module implements the relevant algorithm family
from scratch:

* quantile histogram binning of every feature (the "histogram" in LightGBM),
* greedy depth-wise regression-tree growth with variance-gain splits,
* second-order-free gradient boosting on the squared loss over
  log-transformed targets (matching the log-domain training used for every
  model in the paper), and
* optional monotone-increasing constraints per feature, enforced the same
  way LightGBM does: a split on a constrained feature is rejected unless the
  left child's value is no larger than the right child's, and children
  inherit value bounds that keep the whole subtree ordered.

The estimator trains on the combined ``[x, t]`` feature vector with the
constraint (when enabled) applied to the threshold column only, which is
exactly the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..data.workload import WorkloadSplit
from ..estimator import SelectivityEstimator
from ..registry import register_estimator


# ---------------------------------------------------------------------- #
# Histogram binning
# ---------------------------------------------------------------------- #
def build_bin_edges(features: np.ndarray, max_bins: int) -> List[np.ndarray]:
    """Quantile bin edges per feature column (excluding the +/- inf ends)."""
    edges: List[np.ndarray] = []
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    for column in range(features.shape[1]):
        values = features[:, column]
        column_edges = np.unique(np.quantile(values, quantiles))
        edges.append(column_edges)
    return edges


def bin_features(features: np.ndarray, bin_edges: List[np.ndarray]) -> np.ndarray:
    """Map raw feature values to integer bin indices."""
    binned = np.empty(features.shape, dtype=np.int32)
    for column, edges in enumerate(bin_edges):
        binned[:, column] = np.searchsorted(edges, features[:, column], side="right")
    return binned


# ---------------------------------------------------------------------- #
# Regression tree
# ---------------------------------------------------------------------- #
@dataclass
class TreeNode:
    """A node of a regression tree over binned features."""

    value: float
    feature: int = -1
    bin_threshold: int = -1  # go left when binned value <= bin_threshold
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


@dataclass
class SplitDecision:
    feature: int
    bin_threshold: int
    gain: float
    left_value: float
    right_value: float
    left_mask: np.ndarray


class RegressionTree:
    """A depth-limited regression tree fitted to residuals.

    Parameters
    ----------
    max_depth, min_samples_leaf, min_gain:
        Usual growth controls.
    monotone_increasing:
        Indices of features on which the tree's prediction must be
        non-decreasing.
    """

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_leaf: int = 10,
        min_gain: float = 1e-7,
        monotone_increasing: Tuple[int, ...] = (),
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.monotone_increasing = tuple(monotone_increasing)
        self.root: Optional[TreeNode] = None

    # ------------------------------------------------------------------ #
    def fit(self, binned: np.ndarray, residuals: np.ndarray) -> "RegressionTree":
        self.root = self._grow(binned, residuals, depth=0, lower=-np.inf, upper=np.inf)
        return self

    def _leaf_value(self, residuals: np.ndarray, lower: float, upper: float) -> float:
        value = float(residuals.mean()) if len(residuals) else 0.0
        return float(np.clip(value, lower, upper))

    def _best_split(self, binned: np.ndarray, residuals: np.ndarray) -> Optional[SplitDecision]:
        total_sum = residuals.sum()
        total_count = len(residuals)
        if total_count < 2 * self.min_samples_leaf:
            return None
        base_score = total_sum ** 2 / total_count
        best: Optional[SplitDecision] = None

        for feature in range(binned.shape[1]):
            column = binned[:, feature]
            max_bin = int(column.max())
            if max_bin == 0:
                continue
            # Histogram of residual sums / counts per bin.
            counts = np.bincount(column, minlength=max_bin + 1)
            sums = np.bincount(column, weights=residuals, minlength=max_bin + 1)
            left_counts = np.cumsum(counts)[:-1]
            left_sums = np.cumsum(sums)[:-1]
            right_counts = total_count - left_counts
            right_sums = total_sum - left_sums

            valid = (left_counts >= self.min_samples_leaf) & (right_counts >= self.min_samples_leaf)
            if not np.any(valid):
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                gains = (
                    np.where(left_counts > 0, left_sums ** 2 / np.maximum(left_counts, 1), 0.0)
                    + np.where(right_counts > 0, right_sums ** 2 / np.maximum(right_counts, 1), 0.0)
                    - base_score
                )
            gains = np.where(valid, gains, -np.inf)

            if feature in self.monotone_increasing:
                left_means = left_sums / np.maximum(left_counts, 1)
                right_means = right_sums / np.maximum(right_counts, 1)
                gains = np.where(left_means <= right_means, gains, -np.inf)

            best_bin = int(np.argmax(gains))
            best_gain = float(gains[best_bin])
            if best_gain <= self.min_gain:
                continue
            if best is None or best_gain > best.gain:
                left_mask = column <= best_bin
                best = SplitDecision(
                    feature=feature,
                    bin_threshold=best_bin,
                    gain=best_gain,
                    left_value=float(left_sums[best_bin] / max(left_counts[best_bin], 1)),
                    right_value=float(right_sums[best_bin] / max(right_counts[best_bin], 1)),
                    left_mask=left_mask,
                )
        return best

    def _grow(
        self, binned: np.ndarray, residuals: np.ndarray, depth: int, lower: float, upper: float
    ) -> TreeNode:
        value = self._leaf_value(residuals, lower, upper)
        if depth >= self.max_depth or len(residuals) < 2 * self.min_samples_leaf:
            return TreeNode(value=value)
        split = self._best_split(binned, residuals)
        if split is None:
            return TreeNode(value=value)

        left_mask = split.left_mask
        right_mask = ~left_mask
        if split.feature in self.monotone_increasing:
            # LightGBM-style bound propagation: the whole left subtree must
            # stay below the midpoint between the two child values and the
            # right subtree above it, which keeps the tree monotone along the
            # constrained feature.
            midpoint = 0.5 * (split.left_value + split.right_value)
            left_node = self._grow(
                binned[left_mask], residuals[left_mask], depth + 1, lower, min(upper, midpoint)
            )
            right_node = self._grow(
                binned[right_mask], residuals[right_mask], depth + 1, max(lower, midpoint), upper
            )
        else:
            left_node = self._grow(binned[left_mask], residuals[left_mask], depth + 1, lower, upper)
            right_node = self._grow(binned[right_mask], residuals[right_mask], depth + 1, lower, upper)
        return TreeNode(
            value=value,
            feature=split.feature,
            bin_threshold=split.bin_threshold,
            left=left_node,
            right=right_node,
        )

    # ------------------------------------------------------------------ #
    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("tree must be fitted before prediction")
        out = np.empty(len(binned), dtype=np.float64)
        for i, row in enumerate(binned):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.bin_threshold else node.right
            out[i] = node.value
        return out


# ---------------------------------------------------------------------- #
# Gradient boosting
# ---------------------------------------------------------------------- #
class GradientBoostingRegressor:
    """Gradient boosting over histogram regression trees (squared loss)."""

    def __init__(
        self,
        num_trees: int = 80,
        learning_rate: float = 0.1,
        max_depth: int = 5,
        max_bins: int = 64,
        min_samples_leaf: int = 10,
        subsample: float = 1.0,
        monotone_increasing: Tuple[int, ...] = (),
        seed: int = 0,
    ) -> None:
        self.num_trees = num_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.max_bins = max_bins
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.monotone_increasing = tuple(monotone_increasing)
        self.seed = seed
        self.trees: List[RegressionTree] = []
        self.base_prediction: float = 0.0
        self._bin_edges: Optional[List[np.ndarray]] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostingRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._bin_edges = build_bin_edges(features, self.max_bins)
        binned = bin_features(features, self._bin_edges)

        self.base_prediction = float(targets.mean())
        prediction = np.full(len(targets), self.base_prediction)
        self.trees = []
        for _ in range(self.num_trees):
            residuals = targets - prediction
            if self.subsample < 1.0:
                mask = rng.random(len(targets)) < self.subsample
                if mask.sum() < 2 * self.min_samples_leaf:
                    mask = np.ones(len(targets), dtype=bool)
            else:
                mask = np.ones(len(targets), dtype=bool)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                monotone_increasing=self.monotone_increasing,
            )
            tree.fit(binned[mask], residuals[mask])
            update = tree.predict_binned(binned)
            prediction = prediction + self.learning_rate * update
            self.trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._bin_edges is None:
            raise RuntimeError("model must be fitted before prediction")
        features = np.asarray(features, dtype=np.float64)
        binned = bin_features(features, self._bin_edges)
        prediction = np.full(len(features), self.base_prediction)
        for tree in self.trees:
            prediction = prediction + self.learning_rate * tree.predict_binned(binned)
        return prediction


# ---------------------------------------------------------------------- #
# Estimator front-ends
# ---------------------------------------------------------------------- #
class LightGBMEstimator(SelectivityEstimator):
    """Gradient-boosted trees over ``[x, t]`` ("LightGBM" / "LightGBM-m").

    Targets are log-transformed before boosting (``log(y + 1)``) and
    exponentiated back at estimation time, matching the log-domain training
    used for every learned model in the paper.

    Parameters
    ----------
    monotone:
        When True, a monotone-increasing constraint is placed on the
        threshold feature (the paper's LightGBM-m).
    """

    def __init__(
        self,
        monotone: bool = False,
        num_trees: int = 80,
        learning_rate: float = 0.1,
        max_depth: int = 5,
        max_bins: int = 64,
        min_samples_leaf: int = 10,
        seed: int = 0,
    ) -> None:
        self.monotone = monotone
        self.name = "LightGBM-m" if monotone else "LightGBM"
        self.guarantees_consistency = bool(monotone)
        self.num_trees = num_trees
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.max_bins = max_bins
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.model: Optional[GradientBoostingRegressor] = None

    def fit(self, split: WorkloadSplit) -> "LightGBMEstimator":
        self._input_dim = split.train.queries.shape[1]
        features = np.concatenate([split.train.queries, split.train.thresholds[:, None]], axis=1)
        targets = np.log1p(split.train.selectivities)
        threshold_column = features.shape[1] - 1
        constraints = (threshold_column,) if self.monotone else ()
        self.model = GradientBoostingRegressor(
            num_trees=self.num_trees,
            learning_rate=self.learning_rate,
            max_depth=self.max_depth,
            max_bins=self.max_bins,
            min_samples_leaf=self.min_samples_leaf,
            monotone_increasing=constraints,
            seed=self.seed,
        ).fit(features, targets)
        return self

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        features = np.concatenate([queries, thresholds[:, None]], axis=1)
        return np.clip(np.expm1(self.model.predict(features)), 0.0, None)


def _gbdt_scale_params(scale, num_vectors):
    return {"num_trees": scale.gbdt_trees}


register_estimator(
    "lightgbm",
    factory=LightGBMEstimator,
    cls=LightGBMEstimator,
    display_name="LightGBM",
    description="Histogram gradient-boosted trees over [x, t] (no constraint)",
    default_params={"monotone": False},
    scale_params=_gbdt_scale_params,
)
register_estimator(
    "lightgbm-m",
    factory=LightGBMEstimator,
    cls=LightGBMEstimator,
    display_name="LightGBM-m",
    description="Gradient-boosted trees with a monotone constraint on the threshold",
    consistent=True,
    default_params={"monotone": True},
    scale_params=_gbdt_scale_params,
)

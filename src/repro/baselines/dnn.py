"""Vanilla feed-forward regression baseline ("DNN" in the paper).

A plain FFN over ``[x ; embed(t)]``.  The paper uses four hidden layers of
sizes 512/512/512/256; the default here is scaled down to match the
laptop-scale synthetic workloads.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import Module, feed_forward
from ..registry import register_estimator
from .base import DeepRegressionEstimator


@register_estimator(
    "dnn",
    display_name="DNN",
    description="Plain feed-forward regression over [x; embed(t)]",
    scale_params=lambda scale, num_vectors: {"epochs": scale.baseline_epochs},
)
class DNNEstimator(DeepRegressionEstimator):
    """Unconstrained deep regression (no consistency guarantee)."""

    name = "DNN"
    guarantees_consistency = False

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (128, 128, 64),
        threshold_embedding_dim: int = 8,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        early_stopping_patience: Optional[int] = 15,
        seed: int = 0,
    ) -> None:
        super().__init__(
            threshold_embedding_dim=threshold_embedding_dim,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            early_stopping_patience=early_stopping_patience,
            seed=seed,
        )
        self.hidden_sizes = tuple(hidden_sizes)

    def build_core(self, input_dim: int, rng: np.random.Generator) -> Module:
        return feed_forward(input_dim, list(self.hidden_sizes), 1, rng=rng)

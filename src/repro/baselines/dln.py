"""Deep Lattice Network baseline ("DLN" in the paper).

Lattice regression (Garcia & Gupta; Gupta et al.; You et al. "Deep Lattice
Networks") represents a function as a multilinearly interpolated look-up
table over a hypercube.  Monotonicity along selected inputs is obtained by
constraining the look-up values to be ordered along those lattice axes, and
per-input piece-wise linear *calibrators* map raw features into the unit
cube.

This implementation follows the architecture the paper evaluates, scaled to
its essential pieces:

1. **Calibrators** — one per input dimension, a piece-wise linear map with
   equally spaced keypoints onto ``[0, 1]``.  The calibrator on the threshold
   input is constrained to be monotone (non-negative increments + prefix sum);
   calibrators on the query dimensions are unconstrained.
2. **Ensemble of lattices** — each lattice interpolates over a small random
   subset of calibrated inputs that always contains the threshold dimension.
   Look-up values are parameterised so they are non-decreasing along the
   threshold axis, which — combined with the monotone calibrator and the
   non-negative mixture weights — makes the whole model monotone in ``t``.
3. **Output scaling** — a positive affine map (softplus-parameterised scale)
   back to selectivity range.

Section 6.2 of the paper analyses why this family underfits the selectivity
curve: calibrator keypoints are equally spaced and shared across queries.
Reproducing that inductive bias (rather than the exact TF-Lattice code) is
the goal here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Tensor, concat, cumsum, no_grad, stack
from ..data.workload import WorkloadSplit
from ..estimator import SelectivityEstimator
from ..registry import register_estimator
from ..nn import Adam, DataLoader, Module, log_huber_loss


class Calibrator(Module):
    """Per-dimension piece-wise linear calibration onto ``[0, 1]``.

    Keypoints are fixed and equally spaced over ``[minimum, maximum]`` (the
    limitation Section 6.2 highlights); the outputs at the keypoints are
    learned.  With ``monotone=True`` the outputs are forced to be
    non-decreasing (non-negative increments + prefix sum + normalisation).
    """

    def __init__(
        self,
        minimum: float,
        maximum: float,
        num_keypoints: int = 8,
        monotone: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        if maximum <= minimum:
            maximum = minimum + 1e-6
        self.keypoints = np.linspace(minimum, maximum, num_keypoints)
        self.monotone = monotone
        initial = rng.normal(0.0, 0.1, size=num_keypoints)
        self.raw_outputs = Tensor(initial, requires_grad=True, name="calibrator_outputs")

    def _outputs(self) -> Tensor:
        if not self.monotone:
            return self.raw_outputs.sigmoid()
        increments = self.raw_outputs.relu() + 1e-6
        total = cumsum(increments.reshape(1, -1), axis=1).reshape(-1)
        return total * (1.0 / float(total.data[-1]))

    def forward(self, values: np.ndarray) -> Tensor:
        """Calibrate a 1-D numpy array of raw feature values.

        The interpolation weights over keypoints depend only on the (fixed)
        keypoints and the input values, so they are constants; gradients flow
        to the learned keypoint outputs.
        """
        values = np.asarray(values, dtype=np.float64)
        clipped = np.clip(values, self.keypoints[0], self.keypoints[-1])
        upper = np.clip(np.searchsorted(self.keypoints, clipped, side="left"), 1, len(self.keypoints) - 1)
        lower = upper - 1
        width = self.keypoints[upper] - self.keypoints[lower]
        fraction = (clipped - self.keypoints[lower]) / np.maximum(width, 1e-12)

        outputs = self._outputs()
        weights = np.zeros((len(values), len(self.keypoints)))
        weights[np.arange(len(values)), lower] = 1.0 - fraction
        weights[np.arange(len(values)), upper] += fraction
        return Tensor(weights) @ outputs.reshape(-1, 1)


class Lattice(Module):
    """Multilinear interpolation over the unit hypercube of a feature subset.

    ``monotone_dim`` is the position (within the subset) of the threshold
    feature; look-up values are parameterised as ``base`` on the ``t = 0``
    face plus a non-negative offset on the ``t = 1`` face.
    """

    def __init__(
        self,
        num_inputs: int,
        monotone_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.num_inputs = num_inputs
        self.monotone_dim = monotone_dim
        num_face_vertices = 2 ** (num_inputs - 1)
        self.base = Tensor(rng.normal(0.0, 0.1, size=num_face_vertices), requires_grad=True, name="lattice_base")
        self.delta = Tensor(rng.normal(0.0, 0.1, size=num_face_vertices), requires_grad=True, name="lattice_delta")

    def _vertex_values(self) -> Tensor:
        """Look-up values for all 2^d vertices, ordered by vertex bitmask."""
        upper = self.base + self.delta.relu()
        values = []
        for vertex in range(2 ** self.num_inputs):
            bit = (vertex >> self.monotone_dim) & 1
            face_index = self._face_index(vertex)
            source = upper if bit == 1 else self.base
            values.append(source[face_index].reshape(1))
        return concat(values, axis=0)

    def _face_index(self, vertex: int) -> int:
        """Index of ``vertex`` within the t-face (dropping the monotone bit)."""
        face_bits = 0
        position = 0
        for dim in range(self.num_inputs):
            if dim == self.monotone_dim:
                continue
            face_bits |= ((vertex >> dim) & 1) << position
            position += 1
        return face_bits

    def forward(self, calibrated: Tensor) -> Tensor:
        """Interpolate; ``calibrated`` has shape ``(batch, num_inputs)`` in [0,1]."""
        vertex_values = self._vertex_values()  # (2^d,)
        outputs = None
        for vertex in range(2 ** self.num_inputs):
            weight = None
            for dim in range(self.num_inputs):
                coordinate = calibrated[:, dim]
                factor = coordinate if (vertex >> dim) & 1 else (1.0 - coordinate)
                weight = factor if weight is None else weight * factor
            contribution = weight * vertex_values[vertex]
            outputs = contribution if outputs is None else outputs + contribution
        return outputs


class DeepLatticeNetwork(Module):
    """Calibrators + ensemble of lattices + positive output scaling."""

    def __init__(
        self,
        query_dim: int,
        t_max: float,
        feature_ranges: Sequence[Tuple[float, float]],
        num_keypoints: int = 8,
        num_lattices: int = 8,
        lattice_rank: int = 3,
        output_scale_init: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.query_dim = query_dim
        self.t_max = float(t_max)
        # Calibrator per query dimension plus one (monotone) for the threshold.
        self.query_calibrators: List[Calibrator] = [
            Calibrator(low, high, num_keypoints=num_keypoints, monotone=False, rng=rng)
            for (low, high) in feature_ranges
        ]
        self.threshold_calibrator = Calibrator(
            0.0, t_max, num_keypoints=num_keypoints, monotone=True, rng=rng
        )
        # Each lattice sees (lattice_rank - 1) random query dims plus the threshold.
        self.lattice_feature_subsets: List[np.ndarray] = []
        self.lattices: List[Lattice] = []
        rank = min(lattice_rank, query_dim + 1)
        for _ in range(num_lattices):
            subset = rng.choice(query_dim, size=max(rank - 1, 1), replace=False)
            self.lattice_feature_subsets.append(np.sort(subset))
            self.lattices.append(Lattice(len(subset) + 1, monotone_dim=len(subset), rng=rng))
        self.log_scale = Tensor(np.asarray([np.log(max(output_scale_init, 1e-6))]), requires_grad=True)
        self.bias = Tensor(np.asarray([0.0]), requires_grad=True)

    def forward(self, queries: np.ndarray, thresholds: np.ndarray) -> Tensor:
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64).reshape(-1)
        calibrated_query = [
            calibrator(queries[:, dim]).reshape(len(queries))
            for dim, calibrator in enumerate(self.query_calibrators)
        ]
        calibrated_threshold = self.threshold_calibrator(thresholds).reshape(len(thresholds))

        lattice_outputs = []
        for subset, lattice in zip(self.lattice_feature_subsets, self.lattices):
            columns = [calibrated_query[int(dim)] for dim in subset]
            columns.append(calibrated_threshold)
            calibrated = stack(columns, axis=1)
            lattice_outputs.append(lattice(calibrated))
        # Non-negative (uniform) mixture preserves monotonicity in t.
        ensemble = stack(lattice_outputs, axis=1).mean(axis=1)
        scale = self.log_scale.exp()
        return ensemble * scale + self.bias


@register_estimator(
    "dln",
    display_name="DLN",
    description="Deep lattice network, monotone in the threshold by construction",
    consistent=True,
    default_params={"num_lattices": 6},
    scale_params=lambda scale, num_vectors: {"epochs": scale.baseline_epochs},
)
class DLNEstimator(SelectivityEstimator):
    """Deep-lattice-network selectivity estimator (consistency guaranteed)."""

    name = "DLN"
    guarantees_consistency = True

    def __init__(
        self,
        num_keypoints: int = 8,
        num_lattices: int = 8,
        lattice_rank: int = 3,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 5e-3,
        early_stopping_patience: Optional[int] = 15,
        seed: int = 0,
    ) -> None:
        self.num_keypoints = num_keypoints
        self.num_lattices = num_lattices
        self.lattice_rank = lattice_rank
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.early_stopping_patience = early_stopping_patience
        self.seed = seed
        self.model: Optional[DeepLatticeNetwork] = None

    def fit(self, split: WorkloadSplit) -> "DLNEstimator":
        rng = np.random.default_rng(self.seed)
        queries = split.train.queries
        self._input_dim = queries.shape[1]
        feature_ranges = [
            (float(queries[:, dim].min()), float(queries[:, dim].max()))
            for dim in range(queries.shape[1])
        ]
        scale_init = max(float(split.train.selectivities.max()), 1.0)
        self.model = DeepLatticeNetwork(
            query_dim=queries.shape[1],
            t_max=split.t_max,
            feature_ranges=feature_ranges,
            num_keypoints=self.num_keypoints,
            num_lattices=self.num_lattices,
            lattice_rank=self.lattice_rank,
            output_scale_init=scale_init,
            rng=rng,
        )
        optimizer = Adam(self.model.parameters(), learning_rate=self.learning_rate, max_grad_norm=5.0)
        loader = DataLoader(
            split.train.queries,
            split.train.thresholds,
            split.train.selectivities,
            batch_size=self.batch_size,
            shuffle=True,
            rng=rng,
        )
        best_state = None
        best_validation = float("inf")
        stall = 0
        for _ in range(self.epochs):
            self.model.train()
            for batch_queries, batch_thresholds, batch_labels in loader:
                optimizer.zero_grad()
                prediction = self.model(batch_queries, batch_thresholds)
                loss = log_huber_loss(prediction, batch_labels)
                loss.backward()
                optimizer.step()
            self.model.eval()
            prediction = self.model(split.validation.queries, split.validation.thresholds)
            validation_loss = log_huber_loss(prediction, split.validation.selectivities).item()
            if validation_loss < best_validation - 1e-9:
                best_validation = validation_loss
                best_state = self.model.state_dict()
                stall = 0
            else:
                stall += 1
            if self.early_stopping_patience is not None and stall >= self.early_stopping_patience:
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        with no_grad():
            output = self.model(
                np.asarray(queries, dtype=np.float64), np.asarray(thresholds, dtype=np.float64)
            )
        return np.clip(output.data.reshape(len(queries)), 0.0, None)

"""LSH importance-sampling baseline ("LSH" in the paper).

Wu, Charikar & Natchu ("Local Density Estimation in High Dimensions",
ICML 2018) use locality-sensitive hashing as an importance-sampling device:
objects likely to fall inside the query ball are sampled with higher
probability, and the inverse-probability (Horvitz–Thompson) correction keeps
the count estimate unbiased while shrinking its variance compared with
uniform sampling.

This implementation uses SimHash (random-hyperplane signatures), so — like the
original — it only supports the cosine distance.  Database objects are
grouped by the Hamming distance between their signature and the query's
signature; strata with small Hamming distance (likely near neighbours) are
sampled at higher rates.  The final estimate sums, over sampled objects that
actually satisfy ``d(x, o) <= t``, the inverse of their stratum's sampling
rate.  Counting indicator functions of a ball is monotone in ``t``, so the
estimator is consistent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.workload import WorkloadSplit
from ..distances import cosine_distance, normalize_rows
from ..estimator import SelectivityEstimator
from ..registry import register_estimator


@register_estimator(
    "lsh",
    display_name="LSH",
    description="SimHash-stratified importance sampling (Wu et al.); cosine only",
    consistent=True,
    distances=("cosine",),
    scale_params=lambda scale, num_vectors: {"num_samples": scale.sample_budget(num_vectors)},
)
class LSHEstimator(SelectivityEstimator):
    """SimHash-stratified importance sampling for cosine selectivity.

    Parameters
    ----------
    num_hash_bits:
        Number of random hyperplanes (signature length).
    num_samples:
        Total sampling budget per query (the paper uses 2 000).
    seed:
        Seed controlling both the hyperplanes and the per-stratum sampling.
    """

    name = "LSH"
    guarantees_consistency = True

    def __init__(self, num_hash_bits: int = 16, num_samples: int = 2000, seed: int = 0) -> None:
        self.num_hash_bits = num_hash_bits
        self.num_samples = num_samples
        self.seed = seed
        self._data: Optional[np.ndarray] = None
        self._signatures: Optional[np.ndarray] = None
        self._hyperplanes: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------ #
    def fit(self, split: WorkloadSplit) -> "LSHEstimator":
        if split.distance.name != "cosine":
            raise ValueError("the LSH baseline only supports cosine distance (SimHash)")
        data = normalize_rows(split.dataset.vectors)
        rng = np.random.default_rng(self.seed)
        hyperplanes = rng.normal(size=(data.shape[1], self.num_hash_bits))
        signatures = (data @ hyperplanes) > 0.0
        self._data = data
        self._signatures = signatures
        self._hyperplanes = hyperplanes
        self._rng = rng
        self._input_dim = data.shape[1]
        return self

    # ------------------------------------------------------------------ #
    def _estimate_one(self, query: np.ndarray, threshold: float) -> float:
        query = np.asarray(query, dtype=np.float64)
        query = query / max(np.linalg.norm(query), 1e-12)
        query_signature = (query @ self._hyperplanes) > 0.0
        hamming = np.count_nonzero(self._signatures != query_signature[None, :], axis=1)

        # Deterministic per-query sampling: the same query must reuse the same
        # sample for every threshold, otherwise sampling noise could make the
        # estimate non-monotone in t.  (Counting ball members over a fixed
        # sample is monotone in the threshold.)
        signature_bits = np.packbits(query_signature).tobytes()
        query_seed = int.from_bytes(signature_bits, "little") % (2 ** 32)
        sampler = np.random.default_rng(self.seed + query_seed)

        # Importance weights: strata with smaller Hamming distance are more
        # likely to contain ball members, so they receive a larger share of
        # the sampling budget.  Weight decays geometrically with distance.
        strata_weights = 0.5 ** np.arange(self.num_hash_bits + 1)
        estimate = 0.0
        budget = self.num_samples
        # Allocate the budget proportionally to stratum weight * stratum size.
        stratum_sizes = np.bincount(hamming, minlength=self.num_hash_bits + 1)
        allocation_scores = strata_weights * stratum_sizes
        total_score = allocation_scores.sum()
        if total_score <= 0:
            return 0.0
        for stratum, size in enumerate(stratum_sizes):
            if size == 0:
                continue
            stratum_budget = int(np.ceil(budget * allocation_scores[stratum] / total_score))
            stratum_budget = min(max(stratum_budget, 1), int(size))
            members = np.where(hamming == stratum)[0]
            sampled = sampler.choice(members, size=stratum_budget, replace=False)
            distances = cosine_distance(query, self._data[sampled])
            hits = np.count_nonzero(distances <= threshold)
            sampling_rate = stratum_budget / size
            estimate += hits / sampling_rate
        return float(estimate)

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self._data is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        return np.asarray(
            [self._estimate_one(query, threshold) for query, threshold in zip(queries, thresholds)]
        )

"""Aggregate the repo's committed ``BENCH_*.json`` files into one table.

Each benchmark writes its own JSON artifact (``BENCH_inference.json``,
``BENCH_net.json``, ``BENCH_oracle.json``, ``BENCH_pipeline.json``) with its
own schema.  ``repro bench-report`` reads whatever subset is present and
renders one performance-trajectory table — the quick answer to "where does
the stack stand right now" without opening four JSON files.  The
``benchmarks/bench_report.py`` script is a thin wrapper over this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, Path]

#: the benchmark artifacts this report understands, in display order
BENCH_FILES = (
    "BENCH_inference.json",
    "BENCH_net.json",
    "BENCH_oracle.json",
    "BENCH_pipeline.json",
)


def collect_bench_reports(root: PathLike = ".") -> Dict[str, Dict[str, Any]]:
    """Load every known ``BENCH_*.json`` under ``root`` (missing ones skipped)."""
    root = Path(root)
    reports: Dict[str, Dict[str, Any]] = {}
    for name in BENCH_FILES:
        path = root / name
        if path.is_file():
            with open(path) as handle:
                reports[name] = json.load(handle)
    return reports


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:,.{digits}f}"


def _inference_lines(data: Dict[str, Any]) -> List[str]:
    rows = data.get("rows", [])
    if not rows:
        return ["  (no rows)"]
    lines = [
        f"  {'dtype':<8} {'best speedup':>12} {'best rows/s':>14} "
        f"{'max |dev|':>10} {'max rel dev':>12}"
    ]
    tiers: List[str] = []
    for row in rows:
        tier = row.get("dtype", "float64")
        if tier not in tiers:
            tiers.append(tier)
    for tier in tiers:
        tier_rows = [row for row in rows if row.get("dtype", "float64") == tier]
        lines.append(
            f"  {tier:<8} "
            f"{max(row['speedup'] for row in tier_rows):>11.2f}x "
            f"{max(row['compiled_rows_per_second'] for row in tier_rows):>14,.0f} "
            f"{max(row['max_abs_deviation'] for row in tier_rows):>10.2e} "
            f"{max(row.get('max_rel_deviation', 0.0) for row in tier_rows):>12.2e}"
        )
    return lines


def _net_lines(data: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    for scenario in data.get("scenarios", []):
        lines.append(
            f"  {scenario['scenario']:<14} knee {scenario['knee_rps']:>10,.0f} rps   "
            f"peak {scenario['peak_achieved_rps']:>10,.0f} rps   "
            f"final shards {scenario.get('final_shards', '?')}"
        )
    transport = data.get("transport_roundtrip")
    if transport:
        speedups = transport.get("speedup_process_over_network", {})
        if speedups:
            best = max(speedups.values())
            lines.append(f"  transport      shm beats pickling up to {best:.2f}x per round trip")
    density = data.get("cache_density")
    if density:
        lines.append(
            f"  cache density  uint{density['quantize_bits']} curves: "
            f"{density['density_ratio']:.1f}x more cached queries at "
            f"{density['max_bytes']:,} B "
            f"(dev {density['max_rel_deviation_vs_full_cache']:.1e} "
            f"<= budget {density['error_budget']:.0e})"
        )
    return lines or ["  (no scenarios)"]


def _oracle_lines(data: Dict[str, Any]) -> List[str]:
    rows = data.get("rows", [])
    if not rows:
        return ["  (no rows)"]
    lines = []
    for row in rows:
        speedup = (
            row["engine_queries_per_second"] / row["baseline_queries_per_second"]
            if row.get("baseline_queries_per_second")
            else float("inf")
        )
        lines.append(
            f"  {row.get('distance', '?'):<12} dim {row.get('dim', 0):>4}  "
            f"engine {row['engine_queries_per_second']:>10,.0f} q/s  "
            f"({speedup:.1f}x over baseline, "
            f"parity={'exact' if row.get('parity_exact') else 'approx'})"
        )
    return lines


def _pipeline_lines(data: Dict[str, Any]) -> List[str]:
    lines = []
    cold = data.get("cold", {})
    warm = data.get("warm", {})
    if cold and warm:
        lines.append(
            f"  cold {cold.get('elapsed_seconds', 0.0):.2f}s -> warm "
            f"{warm.get('elapsed_seconds', 0.0):.2f}s "
            f"({data.get('speedup_warm_over_cold', 0.0):.1f}x, "
            f"{len(data.get('metadata', {}).get('models', []))} models)"
        )
    return lines or ["  (no runs)"]


_SECTION_RENDERERS = {
    "BENCH_inference.json": ("inference: compiled kernels vs autodiff graph", _inference_lines),
    "BENCH_net.json": ("net: serving-tier saturation", _net_lines),
    "BENCH_oracle.json": ("oracle: vectorized labeling engine", _oracle_lines),
    "BENCH_pipeline.json": ("pipeline: artifact-store experiment runs", _pipeline_lines),
}


def format_trajectory(reports: Dict[str, Dict[str, Any]]) -> str:
    """One text table across every present benchmark artifact."""
    if not reports:
        return "bench-report: no BENCH_*.json artifacts found"
    lines = ["bench-report: committed performance trajectory", ""]
    for name in BENCH_FILES:
        data = reports.get(name)
        if data is None:
            continue
        title, renderer = _SECTION_RENDERERS[name]
        lines.append(f"{name} — {title}")
        lines.extend(renderer(data))
        lines.append("")
    return "\n".join(lines).rstrip()


def bench_report(root: PathLike = ".", output: Optional[PathLike] = None) -> str:
    """Collect, render and (optionally) serialise the aggregate report."""
    reports = collect_bench_reports(root)
    text = format_trajectory(reports)
    if output is not None:
        summary = {"benchmark": "repro-trajectory", "sources": sorted(reports), "reports": reports}
        with open(output, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return text

"""Canonical, hashable experiment specs — the pipeline's unit of identity.

Every stage of an experiment (synthesize a dataset, label a workload, train
an estimator, evaluate it) is described by a frozen dataclass whose fields
fully determine its output for a fixed seed.  Each spec has a **stable
content hash** — BLAKE2b over its canonical JSON form — which is the key the
:class:`~repro.pipeline.store.ArtifactStore` memoizes the stage's output
under.  Changing any field (a seed, a scale knob, a hyper-parameter) changes
the hash, so stale artifacts can never be served for a new configuration;
re-running the identical spec is a pure cache hit.

The spec graph mirrors the experiment DAG::

    DatasetSpec <- WorkloadSpec <- TrainSpec <- EvalSpec  (<- ExperimentSpec)

``build`` methods contain exactly the computation the seed-era experiment
code performed (same factories, same argument defaults), so a cold pipeline
run is byte-identical to the pre-pipeline path; ``save_artifact`` /
``load_artifact`` round-trip each output losslessly (npz for arrays, the
:mod:`repro.persistence` format for models, JSON for evaluation results).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

import numpy as np

#: canonical-form marker key identifying nested specs
_SPEC_MARKER = "__spec__"


# ---------------------------------------------------------------------- #
# Canonical form and hashing
# ---------------------------------------------------------------------- #
def canonical_value(value: Any) -> Any:
    """Convert ``value`` to a deterministic JSON-able form for hashing."""
    if isinstance(value, Spec):
        payload = {
            _SPEC_MARKER: type(value).__name__,
            **{
                f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
        return payload
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): canonical_value(item) for key, item in sorted(value.items())}
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for spec hashing: {value!r}"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON rendering used for spec hashes and manifests."""
    return json.dumps(canonical_value(value), sort_keys=True, separators=(",", ":"))


def spec_hash(spec: "Spec") -> str:
    """Stable 16-hex-digit content hash of a spec."""
    digest = hashlib.blake2b(canonical_json(spec).encode("utf-8"), digest_size=8)
    return digest.hexdigest()


def _hashable(value: Any) -> Any:
    """Recursively convert lists/dicts to tuples so frozen specs stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, Mapping):
        return tuple(sorted((str(key), _hashable(item)) for key, item in value.items()))
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


class Spec:
    """Base class for pipeline stage specs (frozen dataclasses).

    Subclasses define ``kind`` (the artifact namespace on disk), their
    dependencies, how to build their value from dependency values and how to
    persist / restore it.  ``**options`` on ``build`` carries non-semantic
    tuning (labeling-engine ``num_workers`` / ``block_bytes`` / ``progress``)
    which never enters the hash: the same spec is the same artifact no
    matter how many cores computed it.
    """

    kind: ClassVar[str] = "artifact"

    #: exclusive stages run alone on the runner's pool (no concurrent
    #: stages) so their wall-clock measurements are contention-free
    exclusive: ClassVar[bool] = False

    @property
    def spec_hash(self) -> str:
        return spec_hash(self)

    def canonical(self) -> Dict[str, Any]:
        return canonical_value(self)

    def dependencies(self) -> Tuple["Spec", ...]:
        return ()

    def describe(self) -> str:  # pragma: no cover - overridden everywhere
        return f"{self.kind}:{self.spec_hash}"

    def build(self, store, **options):  # pragma: no cover - abstract
        raise NotImplementedError

    def save_artifact(self, directory, value) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def load_artifact(self, directory, store):  # pragma: no cover - abstract
        raise NotImplementedError


# ---------------------------------------------------------------------- #
# Datasets
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DatasetSpec(Spec):
    """One synthetic dataset: generator name, size, dimensionality, seed."""

    name: str
    num_vectors: int
    dim: int
    seed: int

    kind: ClassVar[str] = "dataset"

    @classmethod
    def for_setting(cls, setting: str, scale, seed_offset: int = 0) -> "DatasetSpec":
        """The dataset of one paper setting at an experiment scale.

        Mirrors :func:`repro.experiments.scale.make_scaled_dataset` exactly
        (same generator arguments, same per-setting base seeds).
        """
        from ..experiments.scale import dataset_args_for_setting

        return cls(**dataset_args_for_setting(setting, scale, seed_offset))

    def describe(self) -> str:
        return f"dataset:{self.name}[n={self.num_vectors},d={self.dim},seed={self.seed}]"

    def build(self, store, **options):
        from ..data.synthetic import make_dataset

        return make_dataset(
            self.name, num_vectors=self.num_vectors, dim=self.dim, seed=self.seed
        )

    def save_artifact(self, directory, value) -> None:
        np.savez(directory / "dataset.npz", vectors=value.vectors)
        payload = {
            "name": value.name,
            "distances": list(value.distances),
            "metadata": value.metadata,
        }
        (directory / "dataset.json").write_text(json.dumps(payload, indent=2) + "\n")

    def load_artifact(self, directory, store):
        from ..data.synthetic import Dataset

        payload = json.loads((directory / "dataset.json").read_text())
        with np.load(directory / "dataset.npz") as archive:
            vectors = archive["vectors"]
        return Dataset(
            name=payload["name"],
            vectors=vectors,
            distances=tuple(payload["distances"]),
            metadata=payload["metadata"],
        )


# ---------------------------------------------------------------------- #
# Labeled workload splits
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkloadSpec(Spec):
    """A labeled train/validation/test workload over one dataset."""

    dataset: DatasetSpec
    distance: str
    num_queries: int
    thresholds_per_query: int
    threshold_distribution: str = "geometric"
    max_selectivity_fraction: float = 0.01
    seed: int = 0

    kind: ClassVar[str] = "workload"

    _FOLDS: ClassVar[Tuple[str, ...]] = ("train", "validation", "test")

    @classmethod
    def for_setting(
        cls,
        setting: str,
        scale,
        threshold_distribution: str = "geometric",
        seed: int = 0,
        seed_offset: int = 0,
    ) -> "WorkloadSpec":
        """The workload of one paper setting (mirrors ``build_setting_split``)."""
        from ..experiments.scale import setting_distance

        return cls(
            dataset=DatasetSpec.for_setting(setting, scale, seed_offset),
            distance=setting_distance(setting),
            num_queries=scale.num_queries,
            thresholds_per_query=scale.thresholds_per_query,
            threshold_distribution=threshold_distribution,
            max_selectivity_fraction=scale.max_selectivity_fraction,
            seed=seed,
        )

    def describe(self) -> str:
        return (
            f"workload:{self.dataset.name}/{self.distance}"
            f"[q={self.num_queries},w={self.thresholds_per_query},"
            f"{self.threshold_distribution},seed={self.seed}]"
        )

    def dependencies(self) -> Tuple[Spec, ...]:
        return (self.dataset,)

    def build(self, store, num_workers=None, block_bytes=None, progress=None, **options):
        from ..data.workload import build_workload_split

        dataset = store.get_or_build(
            self.dataset, num_workers=num_workers, block_bytes=block_bytes, progress=progress
        )
        return build_workload_split(
            dataset,
            self.distance,
            num_queries=self.num_queries,
            thresholds_per_query=self.thresholds_per_query,
            threshold_distribution=self.threshold_distribution,
            max_selectivity_fraction=self.max_selectivity_fraction,
            seed=self.seed,
            num_workers=num_workers,
            block_bytes=block_bytes,
            progress=progress,
        )

    def save_artifact(self, directory, value) -> None:
        arrays: Dict[str, np.ndarray] = {}
        for fold_name in self._FOLDS:
            fold = getattr(value, fold_name)
            arrays[f"{fold_name}_queries"] = fold.queries
            arrays[f"{fold_name}_thresholds"] = fold.thresholds
            arrays[f"{fold_name}_selectivities"] = fold.selectivities
            arrays[f"{fold_name}_query_ids"] = fold.query_ids
        np.savez(directory / "workload.npz", **arrays)
        payload = {
            "t_max": float(value.t_max),
            "distance_name": value.train.distance_name,
            "metadata": value.train.metadata,
        }
        (directory / "workload.json").write_text(json.dumps(payload, indent=2) + "\n")

    def load_artifact(self, directory, store):
        from ..data.ground_truth import SelectivityOracle
        from ..data.workload import Workload, WorkloadSplit
        from ..distances import get_distance

        dataset = store.get_or_build(self.dataset)
        distance_fn = get_distance(self.distance)
        payload = json.loads((directory / "workload.json").read_text())
        folds: Dict[str, Workload] = {}
        with np.load(directory / "workload.npz") as archive:
            for fold_name in self._FOLDS:
                folds[fold_name] = Workload(
                    queries=archive[f"{fold_name}_queries"],
                    thresholds=archive[f"{fold_name}_thresholds"],
                    selectivities=archive[f"{fold_name}_selectivities"],
                    query_ids=archive[f"{fold_name}_query_ids"],
                    t_max=payload["t_max"],
                    distance_name=payload["distance_name"],
                    metadata=dict(payload["metadata"]),
                )
        oracle = SelectivityOracle(dataset.vectors, distance_fn)
        return WorkloadSplit(
            train=folds["train"],
            validation=folds["validation"],
            test=folds["test"],
            oracle=oracle,
            dataset=dataset,
            distance=distance_fn,
        )


# ---------------------------------------------------------------------- #
# Trained estimators
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TrainedModel:
    """A fitted estimator plus the wall-clock seconds its fit took.

    ``fit_seconds`` is measured while other training branches may run
    concurrently on the runner's pool, so it includes contention and is
    only comparable across runs at ``num_workers=1`` (the paper's timing
    metric — per-query estimation latency — is measured contention-free
    via exclusive eval stages instead; see :class:`EvalSpec`).
    """

    estimator: Any
    fit_seconds: float


@dataclass(frozen=True)
class TrainSpec(Spec):
    """One registered estimator fitted on one workload.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs (values
    with lists converted to tuples) so the spec stays frozen and hashable;
    use :meth:`create` to build one from a plain parameter dict.
    """

    workload: WorkloadSpec
    estimator: str
    params: Tuple[Tuple[str, Any], ...] = ()
    #: optional estimator display-name override (sweep rows like "SelNet(K=3)")
    display_name: Optional[str] = None

    kind: ClassVar[str] = "train"

    @classmethod
    def create(
        cls,
        workload: WorkloadSpec,
        estimator: str,
        params: Optional[Mapping[str, Any]] = None,
        display_name: Optional[str] = None,
    ) -> "TrainSpec":
        for key, value in (params or {}).items():
            # A dict value would be flattened to tuple-of-pairs for hashing
            # and could not be restored for the factory call; no registered
            # estimator takes one, so reject loudly instead of corrupting.
            if isinstance(value, Mapping):
                raise TypeError(
                    f"TrainSpec param {key!r} is a mapping; estimator "
                    "hyper-parameters must be scalars or (nested) sequences"
                )
        pairs = tuple(
            sorted((str(key), _hashable(value)) for key, value in (params or {}).items())
        )
        return cls(
            workload=workload,
            estimator=estimator.lower(),
            params=pairs,
            display_name=display_name,
        )

    @property
    def params_dict(self) -> Dict[str, Any]:
        return {key: value for key, value in self.params}

    def describe(self) -> str:
        label = self.display_name or self.estimator
        return f"train:{label}@{self.workload.dataset.name}/{self.workload.distance}"

    def dependencies(self) -> Tuple[Spec, ...]:
        return (self.workload,)

    def build(self, store, **options):
        import time

        from ..registry import create_estimator

        split = store.get_or_build(self.workload, **options)
        estimator = create_estimator(self.estimator, **self.params_dict)
        if self.display_name is not None:
            estimator.name = self.display_name
        start = time.perf_counter()
        estimator.fit(split)
        fit_seconds = time.perf_counter() - start
        return TrainedModel(estimator=estimator, fit_seconds=fit_seconds)

    def save_artifact(self, directory, value) -> None:
        from ..persistence import save_estimator

        save_estimator(
            value.estimator,
            directory,
            extra_metadata={
                "fit_seconds": value.fit_seconds,
                "pipeline_spec": self.canonical(),
                "workload_hash": self.workload.spec_hash,
            },
        )

    def load_artifact(self, directory, store):
        from ..persistence import load_estimator, read_metadata

        estimator = load_estimator(directory)
        recorded = read_metadata(directory).get("metadata", {})
        return TrainedModel(
            estimator=estimator,
            fit_seconds=float(recorded.get("fit_seconds", 0.0)),
        )


# ---------------------------------------------------------------------- #
# Evaluations
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class EvalSpec(Spec):
    """Accuracy / timing / monotonicity measurement of one trained model."""

    train: TrainSpec
    measure_monotonicity: bool = False
    monotonicity_queries: int = 40
    monotonicity_thresholds: int = 50
    seed: int = 0

    kind: ClassVar[str] = "eval"
    #: evaluations time per-query estimation (Table 7); they must not share
    #: the pool with concurrently training models or the measured latency
    #: would be contention noise frozen into the cached artifact
    exclusive: ClassVar[bool] = True
    #: wall-clock measurement fields of the saved payload — environment, not
    #: output; excluded from cross-executor identity digests (everything
    #: else must be byte-identical between the thread and process backends)
    TIMING_FIELDS: ClassVar[Tuple[str, ...]] = (
        "fit_seconds",
        "estimation_milliseconds",
    )

    @classmethod
    def deterministic_payload(cls, payload: Mapping) -> Dict[str, Any]:
        """``evaluation.json`` content minus the timing measurement fields."""
        return {
            key: value for key, value in payload.items() if key not in cls.TIMING_FIELDS
        }

    def __post_init__(self) -> None:
        # The monotonicity knobs are only read when measuring; normalize them
        # when unused so evaluations of the same trained model hash (and
        # cache) identically across tables with different scale profiles.
        if not self.measure_monotonicity:
            object.__setattr__(self, "monotonicity_queries", 40)
            object.__setattr__(self, "monotonicity_thresholds", 50)

    def describe(self) -> str:
        label = self.train.display_name or self.train.estimator
        suffix = "+mono" if self.measure_monotonicity else ""
        return f"eval:{label}@{self.train.workload.dataset.name}{suffix}"

    def dependencies(self) -> Tuple[Spec, ...]:
        return (self.train,)

    def build(self, store, **options):
        from ..eval.harness import evaluate_fitted

        trained = store.get_or_build(self.train, **options)
        split = store.get_or_build(self.train.workload, **options)
        return evaluate_fitted(
            trained.estimator,
            split,
            fit_seconds=trained.fit_seconds,
            measure_monotonicity=self.measure_monotonicity,
            monotonicity_queries=self.monotonicity_queries,
            monotonicity_thresholds=self.monotonicity_thresholds,
            seed=self.seed,
        )

    def save_artifact(self, directory, value) -> None:
        payload = {
            "model_name": value.model_name,
            "guarantees_consistency": bool(value.guarantees_consistency),
            "validation_metrics": value.validation_metrics.as_dict(),
            "test_metrics": value.test_metrics.as_dict(),
            "fit_seconds": value.fit_seconds,
            "estimation_milliseconds": value.estimation_milliseconds,
            "monotonicity_percent": value.monotonicity_percent,
        }
        (directory / "evaluation.json").write_text(json.dumps(payload, indent=2) + "\n")

    def load_artifact(self, directory, store):
        from ..eval.harness import EvaluationResult
        from ..eval.metrics import ErrorMetrics

        payload = json.loads((directory / "evaluation.json").read_text())
        return EvaluationResult(
            model_name=payload["model_name"],
            guarantees_consistency=payload["guarantees_consistency"],
            validation_metrics=ErrorMetrics(**payload["validation_metrics"]),
            test_metrics=ErrorMetrics(**payload["test_metrics"]),
            fit_seconds=payload["fit_seconds"],
            estimation_milliseconds=payload["estimation_milliseconds"],
            monotonicity_percent=payload["monotonicity_percent"],
        )


# ---------------------------------------------------------------------- #
# Canonical-form round trip
# ---------------------------------------------------------------------- #
def spec_from_canonical(payload: Any) -> Any:
    """Rebuild a spec from its :func:`canonical_value` form.

    The canonical dict marks every nested spec with ``__spec__: ClassName``
    and a trained artifact's sidecar records its full ``TrainSpec`` this way
    (``pipeline_spec`` in the metadata) — so a saved model is enough to
    reconstruct the exact :class:`WorkloadSpec` it was fitted on and
    regenerate (or cache-hit) its workload, which is what
    ``repro serve-bench --from-store`` / ``cluster-bench --from-store`` do.
    Lists become tuples (specs are frozen/hashable); non-spec values pass
    through unchanged.
    """
    if isinstance(payload, Mapping):
        if _SPEC_MARKER in payload:
            cls = _SPEC_CLASSES.get(payload[_SPEC_MARKER])
            if cls is None:
                raise ValueError(f"unknown spec class {payload[_SPEC_MARKER]!r}")
            kwargs = {
                key: spec_from_canonical(value)
                for key, value in payload.items()
                if key != _SPEC_MARKER
            }
            return cls(**kwargs)
        return {key: spec_from_canonical(value) for key, value in payload.items()}
    if isinstance(payload, list):
        return tuple(spec_from_canonical(item) for item in payload)
    return payload


# ---------------------------------------------------------------------- #
# Experiments (runner input, not a stored artifact)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentSpec(Spec):
    """A named collection of evaluations executed as one DAG."""

    name: str
    evals: Tuple[EvalSpec, ...] = ()
    description: str = ""
    #: extra terminal stages (e.g. bare TrainSpecs for figures that analyse
    #: fitted models directly instead of through an EvalSpec)
    extra_stages: Tuple[Spec, ...] = field(default_factory=tuple)

    kind: ClassVar[str] = "experiment"

    def describe(self) -> str:
        return f"experiment:{self.name}[{len(self.evals) + len(self.extra_stages)} stages]"

    def dependencies(self) -> Tuple[Spec, ...]:
        return tuple(self.evals) + tuple(self.extra_stages)


#: classes `spec_from_canonical` can restore by their `__spec__` marker
_SPEC_CLASSES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (DatasetSpec, WorkloadSpec, TrainSpec, EvalSpec, ExperimentSpec)
}


__all__ = [
    "Spec",
    "DatasetSpec",
    "WorkloadSpec",
    "TrainSpec",
    "TrainedModel",
    "EvalSpec",
    "ExperimentSpec",
    "canonical_value",
    "canonical_json",
    "spec_from_canonical",
    "spec_hash",
]

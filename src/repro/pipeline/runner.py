"""Topological pipeline execution over the artifact store.

:class:`PipelineRunner` takes an :class:`~repro.pipeline.specs.ExperimentSpec`,
deduplicates its spec closure into a DAG (two evals sharing one workload
share one workload *stage*), and materializes every stage through the store
in dependency order.  Independent branches — the per-model training stages
of an accuracy table, the per-setting branches of the ablation study — run
concurrently on a worker pool sized by the same ``num_workers`` conventions
as the exact-selectivity engine (:func:`repro.exact.get_default_num_workers`).

Where that pool lives is the **executor backend** (``executor=``):

``"thread"`` (default)
    Stages run on a thread pool inside this process.  Dependency-free and
    exactly the historical behavior; training branches share the GIL.

``"process"``
    Stages run in dedicated worker processes (one fresh pool per ``run``),
    following the same spawn idiom as the cluster tier's
    :class:`~repro.cluster.backends.ProcessShardBackend` — a lazily built
    module-global slot in each worker survives both fork and spawn start
    methods without initializer plumbing.  A stage ships as its canonical
    **spec plus dependency hashes** only: the worker rebuilds the value
    through its own :class:`~repro.pipeline.store.ArtifactStore` over the
    shared on-disk root, so no dataset, workload or model is ever pickled
    across the process boundary, and training branches use all cores
    without sharing a GIL.  Requires a persistent store (the store *is*
    the data plane); results are bit-identical to the thread backend.

``"cluster"``
    Same worker machinery, but the process pool is **persistent across
    runs** of this runner (closed by :meth:`PipelineRunner.close` or the
    context manager), so repeated sweeps amortize worker spawn and the
    workers' warm in-memory artifact caches.

Stages never wait inside workers: the scheduler submits a stage only once
all of its dependencies completed, so a pool of any width cannot deadlock.
Because every completed stage is persisted by the store before its
dependents start, an interrupted run resumes cleanly — the next run replays
finished stages as cache hits and recomputes only what was in flight.

Two scheduling refinements keep the measurements and the warm path honest:

* **exclusive stages** (``Spec.exclusive``, set on ``EvalSpec``) run alone —
  the scheduler drains the pool first and submits nothing alongside them —
  so the per-query estimation latencies they record (Table 7) are
  contention-free, exactly as in the old sequential harness, while training
  branches still overlap freely with each other;
* **dependency pruning**: a stage whose artifact is already complete in the
  store replays from its own payload, so its upstream closure is not
  scheduled at all — a warm table run reads a handful of evaluation JSONs
  instead of re-materializing datasets, labeled workloads and models.
  (Loading an artifact that itself needs a dependency — e.g. a workload
  split reconstructing its oracle — pulls that dependency on demand through
  ``store.get_or_build``.)

Labeling stages additionally split the exact-engine thread budget between
however many of them can actually overlap — recomputed at every submission
from the live ready/in-flight sets, so a labeler that runs alone in a later
wave gets the full engine width back.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs import trace as obstrace
from .specs import ExperimentSpec, Spec, spec_from_canonical
from .store import ArtifactStore, BuildInfo, MANIFEST_FILE

#: labeling-engine build options forwarded to workload stages
ENGINE_OPTION_KEYS = ("num_workers", "block_bytes", "progress")

#: recognised executor backends
EXECUTORS = ("thread", "process", "cluster")


@dataclass
class StageReport:
    """Outcome of one pipeline stage."""

    name: str
    kind: str
    spec_hash: str
    #: ``False`` when built, ``"memory"`` / ``"disk"`` when served from cache
    cached: Union[bool, str]
    seconds: float
    #: CPU seconds spent by the stage's worker thread (``time.thread_time``
    #: — a cache replay shows ~0, a compute-bound build tracks ``seconds``)
    cpu_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "hash": self.spec_hash,
            "cached": self.cached,
            "seconds": self.seconds,
            "cpu_seconds": self.cpu_seconds,
        }


@dataclass
class PipelineReport:
    """Per-stage wall-clock and cache statistics of one pipeline run."""

    experiment: str
    stages: List[StageReport] = field(default_factory=list)
    total_seconds: float = 0.0
    executor: str = "thread"

    @property
    def cache_hits(self) -> int:
        return sum(1 for stage in self.stages if stage.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for stage in self.stages if not stage.cached)

    @property
    def all_cached(self) -> bool:
        return bool(self.stages) and all(stage.cached for stage in self.stages)

    @property
    def cpu_seconds(self) -> float:
        return sum(stage.cpu_seconds for stage in self.stages)

    def stages_by_kind(self, kind: str) -> List[StageReport]:
        return [stage for stage in self.stages if stage.kind == kind]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "executor": self.executor,
            "total_seconds": self.total_seconds,
            "cpu_seconds": self.cpu_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "all_cached": self.all_cached,
            "stages": [stage.as_dict() for stage in self.stages],
        }

    @staticmethod
    def merged(name: str, reports) -> Optional["PipelineReport"]:
        """One report covering several pipeline runs (multi-setting tables /
        figures); ``None`` entries are skipped, all-``None`` gives ``None``."""
        present = [report for report in reports if report is not None]
        if not present:
            return None
        combined = PipelineReport(experiment=name, executor=present[0].executor)
        for report in present:
            combined.stages.extend(report.stages)
            combined.total_seconds += report.total_seconds
        return combined

    @property
    def text(self) -> str:
        lines = [
            f"pipeline {self.experiment}: {len(self.stages)} stages "
            f"[{self.executor}], {self.cache_hits} cached / "
            f"{self.cache_misses} built, {self.total_seconds:.2f} s"
        ]
        for stage in self.stages:
            source = stage.cached if stage.cached else "built"
            lines.append(
                f"  {stage.name:<44} {source:>7} {stage.seconds:>9.3f} s  [{stage.spec_hash}]"
            )
        return "\n".join(lines)


@dataclass
class PipelineOutcome:
    """Values plus the report of one :meth:`PipelineRunner.run`."""

    experiment: ExperimentSpec
    values: Dict[str, Any]
    report: PipelineReport

    def value(self, spec: Spec) -> Any:
        return self.values[spec.spec_hash]


def _default_stage_workers() -> int:
    from ..exact import get_default_num_workers

    return get_default_num_workers()


# ---------------------------------------------------------------------- #
# Process-executor worker side.
#
# Mirrors the cluster tier's ProcessShardBackend idiom: a module-global
# slot built lazily from the arguments shipped with the first task, so the
# same code survives fork and spawn start methods.  One ArtifactStore per
# root keeps a worker's disk-replayed artifacts warm across the stages it
# executes — the workload split loaded for one training stage is reused by
# the next model trained in the same worker, without any cross-process
# value traffic.
# ---------------------------------------------------------------------- #
_WORKER_STORES: Dict[str, ArtifactStore] = {}


def _worker_store(root: str) -> ArtifactStore:
    store = _WORKER_STORES.get(root)
    if store is None:
        store = ArtifactStore(root)
        _WORKER_STORES[root] = store
    return store


def _process_stage(
    store_root: str,
    payload: Dict[str, Any],
    dep_hashes: Dict[str, str],
    options: Dict[str, Any],
    trace_config: Optional[Dict[str, Any]],
    trace_id: Optional[str],
) -> Tuple[BuildInfo, float]:
    """One stage build inside a worker process.

    The stage arrives as its canonical spec payload plus the hashes of its
    dependencies; the value is built through (and persisted by) the shared
    on-disk store and **never** shipped back — the parent reads terminal
    values from the store, interior values stay where they were built.
    """
    if trace_config and obstrace.get_sink() is None:
        obstrace.configure_tracing(
            trace_config["path"],
            trace_config.get("sample", 1.0),
            role="pipeline-worker",
        )
    spec = spec_from_canonical(payload)
    store = _worker_store(store_root)
    if not store.contains(spec):
        # The scheduler only submits a stage once its dependencies are
        # complete; verify before building so a coordination bug surfaces
        # as a loud invariant violation instead of a silent (and possibly
        # enormous) in-worker rebuild of an upstream artifact.
        missing = {
            dep_hash: kind
            for dep_hash, kind in dep_hashes.items()
            if not (store.root / kind / dep_hash / MANIFEST_FILE).is_file()
        }
        if missing:
            raise RuntimeError(
                f"pipeline worker asked to build {spec.describe()} but its "
                f"dependencies are not in the store: {missing}"
            )
    cpu_start = time.thread_time()
    with obstrace.span(
        "pipeline.stage", trace_id=trace_id, kind=spec.kind, spec=spec.spec_hash
    ) as fields:
        _, info = store.get_or_build_info(spec, **options)
        fields["cached"] = info.cached
    return info, time.thread_time() - cpu_start


class PipelineRunner:
    """Schedules an experiment DAG over an :class:`ArtifactStore`.

    Parameters
    ----------
    store:
        Artifact store; a fresh memory-only store when omitted (pure
        compute, nothing persisted — the library default).
    num_workers:
        Stage-level worker-pool width (``None`` = the exact-engine default).
        Only *independent* stages overlap; dependency order is always
        respected, and results are independent of the pool width.
    engine_options:
        Labeling-engine tuning forwarded to workload stages
        (``num_workers`` / ``block_bytes`` / ``progress``); never part of
        any spec hash.
    executor:
        ``"thread"`` (default), ``"process"`` or ``"cluster"`` — see the
        module docstring.  The process-backed executors require a
        persistent store.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        num_workers: Optional[int] = None,
        engine_options: Optional[Dict[str, Any]] = None,
        executor: Optional[str] = None,
    ) -> None:
        self.store = store if store is not None else ArtifactStore.memory()
        self.num_workers = num_workers
        self.executor = executor if executor is not None else "thread"
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        if self.executor != "thread" and not self.store.persistent:
            raise ValueError(
                f"executor={self.executor!r} coordinates stages through the "
                "on-disk store; use a persistent ArtifactStore(root=...) "
                "(a memory-only store cannot be shared across processes)"
            )
        self.engine_options = {
            key: value
            for key, value in (engine_options or {}).items()
            if key in ENGINE_OPTION_KEYS and value is not None
        }
        self._cluster_pool: Optional[ProcessPoolExecutor] = None
        self._cluster_width = 0

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _make_pool(self, max_workers: int):
        """(pool, owned) — ``owned`` pools are shut down when the run ends."""
        if self.executor == "thread":
            return (
                ThreadPoolExecutor(
                    max_workers=max_workers, thread_name_prefix="repro-pipeline"
                ),
                True,
            )
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=max_workers), True
        if self._cluster_pool is None or self._cluster_width < max_workers:
            if self._cluster_pool is not None:
                self._cluster_pool.shutdown(wait=True)
            self._cluster_pool = ProcessPoolExecutor(max_workers=max_workers)
            self._cluster_width = max_workers
        return self._cluster_pool, False

    def close(self) -> None:
        """Shut down a persistent ``cluster`` pool (no-op otherwise)."""
        if self._cluster_pool is not None:
            self._cluster_pool.shutdown(wait=True)
            self._cluster_pool = None
            self._cluster_width = 0

    def __enter__(self) -> "PipelineRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def run(self, experiment: ExperimentSpec) -> PipelineOutcome:
        """Materialize every stage of ``experiment``; returns values + report."""
        nodes, dependents, indegree, order_index = self._build_dag(experiment)
        report = PipelineReport(experiment=experiment.name, executor=self.executor)
        values: Dict[str, Any] = {}
        # One trace per run, so stage spans in the sink share a trace ID
        # (pool threads don't inherit the context var — passed explicitly).
        trace_id = obstrace.new_trace_id() if obstrace.tracing_enabled() else None
        start = time.perf_counter()

        if not nodes:
            report.total_seconds = time.perf_counter() - start
            return PipelineOutcome(experiment, values, report)

        max_workers = self.num_workers or _default_stage_workers()
        max_workers = max(1, min(int(max_workers), len(nodes)))
        engine_total = (
            int(self.num_workers) if self.num_workers else _default_stage_workers()
        )

        ready = sorted(
            (key for key, degree in indegree.items() if degree == 0),
            key=order_index.__getitem__,
        )
        in_flight: Dict[Future, str] = {}
        exclusive_in_flight = False
        failure: Optional[BaseException] = None
        remote = self.executor != "thread"

        def stage_options(spec: Spec) -> Dict[str, Any]:
            # Workload-labeling stages spawn their own exact-engine thread
            # pools; when several can overlap on the stage pool, split the
            # engine budget between them instead of oversubscribing the
            # cores with pool-width x engine-width GEMM threads.  The split
            # is recomputed at every submission from the *live* ready and
            # in-flight sets, so a labeler running alone in a later wave
            # (after the first wave completed) gets the full engine width —
            # the static whole-DAG count would starve it forever.
            options = dict(self.engine_options)
            if (
                spec.kind == "workload"
                and "num_workers" not in options
                and max_workers > 1
            ):
                overlapping = (
                    1
                    + sum(1 for k in in_flight.values() if nodes[k].kind == "workload")
                    + sum(1 for k in ready if nodes[k].kind == "workload")
                )
                concurrent_labelers = min(max_workers, overlapping)
                if concurrent_labelers > 1:
                    options["num_workers"] = max(1, engine_total // concurrent_labelers)
            return options

        def submit(pool, spec: Spec) -> Future:
            options = stage_options(spec)
            if remote:
                return pool.submit(
                    _process_stage,
                    str(self.store.root),
                    spec.canonical(),
                    {dep.spec_hash: dep.kind for dep in spec.dependencies()},
                    options,
                    obstrace.trace_config(),
                    trace_id,
                )
            return pool.submit(self._run_stage, spec, options, trace_id)

        def submit_ready(pool) -> None:
            # Prefer non-exclusive stages to keep the pool busy; an exclusive
            # stage (timing-sensitive evaluation) is submitted only into a
            # drained pool and blocks further submissions until it finishes.
            nonlocal exclusive_in_flight
            while ready and failure is None and not exclusive_in_flight:
                index = next(
                    (i for i, key in enumerate(ready) if not nodes[key].exclusive),
                    None,
                )
                if index is None:
                    if in_flight:
                        return  # exclusive-only ready set: wait for quiet
                    index = 0
                    exclusive_in_flight = True
                key = ready.pop(index)
                in_flight[submit(pool, nodes[key])] = key

        pool, owned = self._make_pool(max_workers)
        try:
            while ready or in_flight:
                submit_ready(pool)
                if not in_flight:
                    break
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    key = in_flight.pop(future)
                    if nodes[key].exclusive:
                        exclusive_in_flight = False
                    try:
                        if remote:
                            info, cpu_seconds = future.result()
                        else:
                            value, info, cpu_seconds = future.result()
                            values[key] = value
                    except BaseException as error:  # noqa: BLE001 - re-raised below
                        failure = failure or error
                        continue
                    report.stages.append(
                        StageReport(
                            name=info.description,
                            kind=info.kind,
                            spec_hash=info.spec_hash,
                            cached=info.cached,
                            seconds=info.seconds,
                            cpu_seconds=cpu_seconds,
                        )
                    )
                    for dependent in dependents[key]:
                        indegree[dependent] -= 1
                        if indegree[dependent] == 0:
                            ready.append(dependent)
                    ready.sort(key=order_index.__getitem__)
        finally:
            if owned:
                pool.shutdown(wait=True)

        if failure is None and remote:
            # Workers persisted every artifact but shipped no values; load
            # only what the caller consumes — the experiment's terminal
            # stages — from the store (pure disk/memory hits).  Interior
            # values (datasets, workloads, models) never reach the driver.
            for spec in experiment.dependencies():
                values[spec.spec_hash] = self.store.get_or_build(spec)

        report.total_seconds = time.perf_counter() - start
        if failure is not None:
            raise failure
        return PipelineOutcome(experiment, values, report)

    # ------------------------------------------------------------------ #
    def _run_stage(
        self,
        spec: Spec,
        options: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> Tuple[Any, BuildInfo, float]:
        """One stage build, with a CPU timer and an optional trace span.

        ``time.thread_time`` is per-thread, and a stage runs wholly on its
        pool thread, so the delta is *this stage's* CPU even while other
        stages overlap on the pool.
        """
        cpu_start = time.thread_time()
        with obstrace.span(
            "pipeline.stage", trace_id=trace_id, kind=spec.kind, spec=spec.spec_hash
        ) as fields:
            value, info = self.store.get_or_build_info(
                spec, **(self.engine_options if options is None else options)
            )
            fields["cached"] = info.cached
        return value, info, time.thread_time() - cpu_start

    def _build_dag(self, experiment: ExperimentSpec):
        """Deduplicated spec closure as (nodes, dependents, indegree, order).

        A stage whose artifact is already complete in the store contributes
        no dependency edges: replaying it reads its own payload, so its
        upstream closure is pruned from the DAG entirely (warm runs touch
        only the artifacts actually consumed).
        """
        nodes: Dict[str, Spec] = {}
        dependents: Dict[str, List[str]] = {}
        indegree: Dict[str, int] = {}
        order_index: Dict[str, int] = {}

        def visit(spec: Spec) -> str:
            key = spec.spec_hash
            if key in nodes:
                return key
            nodes[key] = spec
            dependents.setdefault(key, [])
            deps = () if self.store.contains(spec) else spec.dependencies()
            indegree[key] = len(deps)
            for dep in deps:
                dep_key = visit(dep)
                dependents[dep_key].append(key)
            # Post-order numbering: dependencies are numbered before their
            # dependents, giving the serial scheduler a deterministic,
            # dependency-respecting order.
            order_index[key] = len(order_index)
            return key

        for stage in experiment.dependencies():
            visit(stage)
        return nodes, dependents, indegree, order_index


__all__ = [
    "PipelineRunner",
    "PipelineOutcome",
    "PipelineReport",
    "StageReport",
    "ENGINE_OPTION_KEYS",
    "EXECUTORS",
]

"""Content-addressed, on-disk memoization of pipeline stage outputs.

Layout (one directory per artifact, keyed by the spec's content hash)::

    <root>/
      dataset/<hash>/   dataset.npz  dataset.json  manifest.json
      workload/<hash>/  workload.npz workload.json manifest.json
      train/<hash>/     estimator.json weights.npz state.pkl manifest.json
      eval/<hash>/      evaluation.json manifest.json

``manifest.json`` is the provenance record: the canonical spec, dependency
hashes, build wall-clock, creation time and library version.  An artifact
directory is **complete iff its manifest exists** — builders write into a
hidden ``.tmp-*`` sibling and atomically rename it into place, so an
interrupted run never leaves a half-written artifact that a later run could
mistake for a finished one; leftover temp directories are swept by
:meth:`ArtifactStore.gc`.

Concurrent **multi-process** writers are safe: every build runs under an
advisory ``fcntl.flock`` keyed by ``<kind>/<hash>`` (lock files live under
``<root>/.locks/``), with the manifest re-checked after the lock is won, so
two processes racing ``get_or_build`` on one spec build it exactly once —
the loser blocks on the lock and then replays the winner's artifact from
disk.  Readers never take the lock: the manifest-presence invariant already
makes completed artifacts safe to load concurrently.  The same locks let
``gc`` skip temp directories belonging to a *live* build in another
process (non-blocking probe), and ``gc(max_bytes=...)`` trims the store to
a byte budget by evicting least-recently-*used* artifacts first (manifest
mtime, refreshed on every load).

``ArtifactStore(root=None)`` is a memory-only store (a per-run memo table
with the same interface) — the default when no store is activated, so plain
library calls never touch the filesystem.  Activate an on-disk store for a
region of code with :func:`use_store` / :func:`set_active_store`; the CLI
does this for ``repro run`` / ``table`` / ``figure``.

The ``train/`` namespace doubles as a model directory in the
:mod:`repro.persistence` layout, so :class:`repro.serving.EstimationService`
(and therefore the sharded cluster) can serve trained pipeline models
straight from the store — see :meth:`ArtifactStore.models_dir`.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from ..obs import MetricsRegistry
from .specs import Spec, canonical_value

try:  # POSIX advisory file locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

PathLike = Union[str, "os.PathLike[str]"]

MANIFEST_FILE = "manifest.json"
MANIFEST_FORMAT = "repro-artifact"
MANIFEST_VERSION = 1

#: directory (under the store root) holding the per-artifact lock files
LOCKS_DIR = ".locks"

#: environment variable naming the default on-disk store root
STORE_ENV = "REPRO_ARTIFACTS"

#: default on-disk store root (relative to the working directory)
DEFAULT_STORE_DIR = ".repro-artifacts"

_TMP_PREFIX = ".tmp-"


@dataclass
class BuildInfo:
    """What happened when a spec was materialized."""

    kind: str
    spec_hash: str
    description: str
    #: ``False`` (built), ``"memory"`` or ``"disk"`` (cache hit)
    cached: Union[bool, str]
    seconds: float


class StoreStats:
    """Hit / miss counters, per artifact kind and overall.

    A view over one ``repro_store_lookups_total{kind,result}`` counter
    family in a :class:`~repro.obs.MetricsRegistry` (``result`` is one of
    ``memory`` / ``disk`` / ``miss``); the historical attributes and
    ``as_dict`` shape are derived from the series on read.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lookups = self.registry.counter(
            "repro_store_lookups_total",
            "Artifact-store lookups by kind and result (memory/disk/miss)",
            ("kind", "result"),
        )

    def record(self, kind: str, cached: Union[bool, str]) -> None:
        result = "miss" if not cached else ("disk" if cached == "disk" else "memory")
        self._lookups.labels(kind=kind, result=result).inc()

    def _count(self, **match: str) -> int:
        return int(
            sum(
                child.value
                for labels, child in self._lookups.series()
                if all(labels[key] == value for key, value in match.items())
            )
        )

    @property
    def hits_memory(self) -> int:
        return self._count(result="memory")

    @property
    def hits_disk(self) -> int:
        return self._count(result="disk")

    @property
    def misses(self) -> int:
        return self._count(result="miss")

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def by_kind(self) -> Dict[str, Dict[str, int]]:
        buckets: Dict[str, Dict[str, int]] = {}
        for labels, child in self._lookups.series():
            bucket = buckets.setdefault(labels["kind"], {"hits": 0, "misses": 0})
            key = "misses" if labels["result"] == "miss" else "hits"
            bucket[key] += int(child.value)
        return buckets

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "by_kind": self.by_kind,
        }


class ArtifactStore:
    """Memoizes spec outputs under their content hash (disk and/or memory).

    Parameters
    ----------
    root:
        Store directory, created lazily on first write.  ``None`` makes the
        store memory-only (a per-process memo table, nothing persisted).
    pin_values:
        Whether materialized values stay pinned in the in-process memo table
        (the default — repeated ``get_or_build`` calls within one run share
        objects).  ``False`` releases every value as soon as it is persisted
        or loaded, so a driver iterating over million-vector sweep stages
        holds at most one stage's data at a time; repeated lookups then
        re-read from disk.  Memory-only stores always pin (releasing would
        silently discard the only copy).
    """

    def __init__(self, root: Optional[PathLike] = None, pin_values: bool = True) -> None:
        self.root = None if root is None else Path(root)
        self.pin_values = bool(pin_values) or self.root is None
        self._memory: Dict[str, Any] = {}
        self._locks: Dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        self._stats_guard = threading.Lock()
        self.metrics = MetricsRegistry()
        self.stats = StoreStats(self.metrics)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def memory(cls) -> "ArtifactStore":
        """A memory-only store (per-run memo table, nothing persisted)."""
        return cls(root=None)

    @classmethod
    def from_env(cls, root: Optional[PathLike] = None) -> "ArtifactStore":
        """On-disk store at ``root``, ``$REPRO_ARTIFACTS`` or ``.repro-artifacts``."""
        if root is None:
            root = os.environ.get(STORE_ENV) or DEFAULT_STORE_DIR
        return cls(root=root)

    @property
    def persistent(self) -> bool:
        return self.root is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = "memory" if self.root is None else str(self.root)
        return f"ArtifactStore({target!r})"

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def path_for(self, spec: Spec) -> Optional[Path]:
        """On-disk directory of a spec's artifact (None for memory stores)."""
        if self.root is None:
            return None
        return self.root / spec.kind / spec.spec_hash

    def models_dir(self) -> Path:
        """The ``train/`` namespace — a servable model directory.

        Every trained-model artifact is saved in the
        :mod:`repro.persistence` layout, keyed by its spec hash, so this
        directory can be handed directly to
        :class:`repro.serving.EstimationService` (``model_dir=...``) or
        :class:`repro.cluster.ClusterConfig`.
        """
        if self.root is None:
            raise ValueError("a memory-only store has no model directory")
        from .specs import TrainSpec

        return self.root / TrainSpec.kind

    def model_path(self, spec_or_hash: Union[Spec, str]) -> Path:
        """Saved-model directory for a TrainSpec (or its hash)."""
        name = spec_or_hash.spec_hash if isinstance(spec_or_hash, Spec) else str(spec_or_hash)
        return self.models_dir() / name

    def load_model(self, spec_or_hash: Union[Spec, str], mmap: bool = True):
        """Load a trained model straight from the store's ``train/`` namespace.

        Memory-maps the weight checkpoint by default (the store is the
        common case of many processes sharing one artifact tree, where the
        page cache deduplicates the weight bytes); pass ``mmap=False`` to
        read eagerly.
        """
        from ..persistence import load_estimator

        return load_estimator(self.model_path(spec_or_hash), mmap=mmap)

    def _lock_for(self, key: str) -> threading.Lock:
        with self._locks_guard:
            return self._locks.setdefault(key, threading.Lock())

    # ------------------------------------------------------------------ #
    # Cross-process build locks (advisory flock per <kind>/<hash>)
    # ------------------------------------------------------------------ #
    def _lock_path(self, kind: str, spec_hash: str) -> Optional[Path]:
        if self.root is None or fcntl is None:
            return None
        return self.root / LOCKS_DIR / kind / f"{spec_hash}.lock"

    @contextlib.contextmanager
    def _build_lock(
        self, kind: str, spec_hash: str, blocking: bool = True
    ) -> Iterator[bool]:
        """Hold the cross-process build lock of one artifact.

        Yields ``True`` once the lock is held — or immediately (without any
        lock) for memory-only stores and platforms without ``fcntl``, where
        the per-hash thread lock is the only writer exclusion needed.  With
        ``blocking=False`` yields ``False`` instead of waiting when another
        process (or another descriptor in this one) holds the lock.

        Lock files are never unlinked: removing a path another process holds
        a lock on would let a third process lock a *new* inode under the
        same name, silently breaking mutual exclusion.
        """
        path = self._lock_path(kind, spec_hash)
        if path is None:
            yield True
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
            try:
                fcntl.flock(fd, flags)
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Lookup / build
    # ------------------------------------------------------------------ #
    def contains(self, spec: Spec) -> bool:
        """Whether a complete artifact (memory or disk) exists for ``spec``."""
        key = spec.spec_hash
        if key in self._memory:
            return True
        path = self.path_for(spec)
        return path is not None and (path / MANIFEST_FILE).is_file()

    def get_or_build(self, spec: Spec, **options) -> Any:
        """The spec's value — loaded from cache when present, built otherwise."""
        value, _ = self.get_or_build_info(spec, **options)
        return value

    def get_or_build_info(self, spec: Spec, **options) -> "tuple[Any, BuildInfo]":
        """Like :meth:`get_or_build`, also reporting how the value was obtained.

        Readers are lock-free across processes (an artifact is complete iff
        its manifest exists); builders additionally hold the per-artifact
        ``flock`` so concurrent processes racing the same spec build it
        exactly once — the loser blocks, then replays the winner's artifact.
        """
        key = spec.spec_hash
        start = time.perf_counter()
        with self._lock_for(key):
            if key in self._memory:
                info = BuildInfo(spec.kind, key, spec.describe(), "memory", 0.0)
                self._record(spec.kind, "memory")
                return self._memory[key], info

            path = self.path_for(spec)
            if path is not None and (path / MANIFEST_FILE).is_file():
                return self._load_disk(spec, key, path, start)

            if path is None:
                value = spec.build(self, **options)
                seconds = time.perf_counter() - start
                self._memory[key] = value
                info = BuildInfo(spec.kind, key, spec.describe(), False, seconds)
                self._record(spec.kind, False)
                return value, info

            with self._build_lock(spec.kind, key):
                # Another process may have finished this artifact while we
                # waited for the lock; its manifest makes it ours to replay.
                if (path / MANIFEST_FILE).is_file():
                    return self._load_disk(spec, key, path, start)
                value = spec.build(self, **options)
                seconds = time.perf_counter() - start
                self._persist(spec, value, seconds)
            if self.pin_values:
                self._memory[key] = value
            info = BuildInfo(spec.kind, key, spec.describe(), False, seconds)
            self._record(spec.kind, False)
            return value, info

    def _load_disk(self, spec: Spec, key: str, path: Path, start: float):
        """Replay a complete on-disk artifact (caller holds the thread lock)."""
        self._warn_version_mismatch(path)
        value = spec.load_artifact(path, self)
        with contextlib.suppress(OSError):  # LRU recency for eviction
            os.utime(path / MANIFEST_FILE)
        if self.pin_values:
            self._memory[key] = value
        seconds = time.perf_counter() - start
        info = BuildInfo(spec.kind, key, spec.describe(), "disk", seconds)
        self._record(spec.kind, "disk")
        return value, info

    def _record(self, kind: str, cached) -> None:
        # Independent pipeline stages complete on different pool threads; the
        # per-spec-hash lock does not cover the shared counters.
        with self._stats_guard:
            self.stats.record(kind, cached)

    def _warn_version_mismatch(self, path: Path) -> None:
        """Warn (once per store) when replaying artifacts built by another
        library version — spec hashes cover spec fields, not code, so a
        stale store can serve numbers the current code would not produce.
        Eviction (``repro artifacts gc``) is the remedy; reuse stays legal
        because most artifacts (datasets, workloads) are version-stable."""
        if getattr(self, "_version_warned", False):
            return
        try:
            recorded = json.loads((path / MANIFEST_FILE).read_text()).get("repro_version")
        except (OSError, json.JSONDecodeError):
            return
        current = _repro_version()
        if recorded and recorded != current:
            self._version_warned = True
            import sys

            print(
                f"[repro.pipeline] warning: replaying artifacts built by repro "
                f"{recorded} with repro {current} installed ({self.root}); run "
                f"`repro artifacts gc --all` to rebuild from scratch",
                file=sys.stderr,
            )

    def _persist(self, spec: Spec, value: Any, build_seconds: float) -> None:
        final = self.path_for(spec)
        assert final is not None
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.parent / f"{_TMP_PREFIX}{spec.spec_hash}-{uuid.uuid4().hex[:8]}"
        tmp.mkdir()
        try:
            spec.save_artifact(tmp, value)
            manifest = {
                "format": MANIFEST_FORMAT,
                "format_version": MANIFEST_VERSION,
                "kind": spec.kind,
                "hash": spec.spec_hash,
                "description": spec.describe(),
                "spec": canonical_value(spec),
                "dependencies": {
                    dep.spec_hash: dep.kind for dep in spec.dependencies()
                },
                "build_seconds": build_seconds,
                "created_at": time.time(),
                "repro_version": _repro_version(),
            }
            # The manifest is written last: its presence marks completeness.
            (tmp / MANIFEST_FILE).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n"
            )
            try:
                os.replace(tmp, final)
            except OSError:
                # Lost a cross-process race; the other writer's artifact wins.
                if not (final / MANIFEST_FILE).is_file():
                    raise
                shutil.rmtree(tmp, ignore_errors=True)
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def list_artifacts(self, kinds: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Manifests of every complete artifact (plus path and size)."""
        results: List[Dict[str, Any]] = []
        if self.root is None or not self.root.is_dir():
            return results
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir() or kind_dir.name.startswith("."):
                continue
            if kinds is not None and kind_dir.name not in kinds:
                continue
            for artifact_dir in sorted(kind_dir.iterdir()):
                manifest_path = artifact_dir / MANIFEST_FILE
                if artifact_dir.name.startswith(".") or not manifest_path.is_file():
                    continue
                try:
                    manifest = json.loads(manifest_path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                manifest["path"] = str(artifact_dir)
                manifest["size_bytes"] = _tree_size(artifact_dir)
                manifest["last_used_at"] = manifest_path.stat().st_mtime
                results.append(manifest)
        return results

    def size_bytes(self) -> int:
        return sum(entry["size_bytes"] for entry in self.list_artifacts())

    def reset_stats(self) -> None:
        # Counters are monotone; resetting swaps in a fresh registry.
        self.metrics = MetricsRegistry()
        self.stats = StoreStats(self.metrics)

    def clear_memory(self) -> None:
        """Drop the in-process value cache (disk artifacts are untouched).

        Materialized values stay pinned in memory for the store's lifetime
        (that is what makes repeated ``get_or_build`` calls within one run
        share objects); a long-lived store that has finished a batch of
        experiments should call this to release datasets and models.
        Construct the store with ``pin_values=False`` to never pin at all.
        """
        self._memory.clear()

    def release(self, spec_or_hash: Union[Spec, str]) -> bool:
        """Drop one pinned value (persistent stores only; the artifact stays
        on disk and the next lookup replays it).  Returns whether a value
        was actually pinned."""
        if self.root is None:
            raise ValueError("a memory-only store cannot release values")
        key = (
            spec_or_hash.spec_hash
            if isinstance(spec_or_hash, Spec)
            else str(spec_or_hash)
        )
        return self._memory.pop(key, None) is not None

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def evict(
        self,
        kinds: Optional[Sequence[str]] = None,
        older_than_seconds: Optional[float] = None,
        spec_hashes: Optional[Sequence[str]] = None,
        dry_run: bool = False,
    ) -> List[Dict[str, Any]]:
        """Delete artifacts matching the filters; returns their manifests.

        ``older_than_seconds`` compares against the artifact's last *use*
        (manifest mtime, refreshed on every load), so recently served
        artifacts survive an age-based sweep.
        """
        removed: List[Dict[str, Any]] = []
        now = time.time()
        wanted_hashes = None if spec_hashes is None else set(spec_hashes)
        for entry in self.list_artifacts(kinds):
            if wanted_hashes is not None and entry["hash"] not in wanted_hashes:
                continue
            if (
                older_than_seconds is not None
                and now - entry["last_used_at"] < older_than_seconds
            ):
                continue
            if not dry_run:
                shutil.rmtree(entry["path"], ignore_errors=True)
                self._memory.pop(entry["hash"], None)
            removed.append(entry)
        return removed

    #: temp dirs younger than this survive gc when the per-hash lock probe
    #: is unavailable (no fcntl) — they may be a live build in another
    #: process (interrupted-build leftovers are much older)
    TMP_SWEEP_MIN_AGE_SECONDS = 3600.0

    def gc(
        self,
        kinds: Optional[Sequence[str]] = None,
        older_than_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> Dict[str, Any]:
        """Evict matching artifacts and sweep interrupted-build temp dirs.

        ``max_bytes`` trims the store (after any kind/age eviction) to a
        byte budget by removing least-recently-used artifacts first —
        recency is the manifest mtime, refreshed on every load, and sizes
        are the byte-accounted artifact tree sizes of
        :meth:`list_artifacts`.  With *only* ``max_bytes`` given, nothing
        is evicted unconditionally: the store is just trimmed to budget.
        """
        removed: List[Dict[str, Any]] = []
        if kinds is not None or older_than_seconds is not None or max_bytes is None:
            removed = self.evict(
                kinds=kinds, older_than_seconds=older_than_seconds, dry_run=dry_run
            )
        temp_swept = self._sweep_temp_dirs(dry_run=dry_run)
        if max_bytes is not None:
            removed.extend(self._trim_to_bytes(int(max_bytes), dry_run=dry_run))
        return {
            "removed": removed,
            "removed_bytes": sum(entry["size_bytes"] for entry in removed),
            "temp_dirs_swept": temp_swept,
            "max_bytes": max_bytes,
            "dry_run": dry_run,
        }

    def _sweep_temp_dirs(self, dry_run: bool = False) -> int:
        """Remove interrupted-build ``.tmp-*`` directories.

        A live builder in another process holds the per-``<kind>/<hash>``
        flock for the whole build-and-persist window, so a non-blocking
        probe distinguishes its in-flight temp dir (skip) from a crashed
        build's leftover (sweep).  Where the lock probe is unavailable the
        conservative age threshold applies instead.
        """
        temp_swept = 0
        now = time.time()
        if self.root is None or not self.root.is_dir():
            return temp_swept
        for kind_dir in self.root.iterdir():
            if not kind_dir.is_dir() or kind_dir.name == LOCKS_DIR:
                continue
            for child in kind_dir.iterdir():
                if not (child.is_dir() and child.name.startswith(_TMP_PREFIX)):
                    continue
                # .tmp-<hash>-<suffix> (see _persist)
                spec_hash = child.name[len(_TMP_PREFIX):].rsplit("-", 1)[0]
                if self._lock_path(kind_dir.name, spec_hash) is not None:
                    with self._build_lock(
                        kind_dir.name, spec_hash, blocking=False
                    ) as acquired:
                        if not acquired:
                            continue  # live build in another process
                        if not dry_run:
                            shutil.rmtree(child, ignore_errors=True)
                    temp_swept += 1
                    continue
                try:
                    age = now - child.stat().st_mtime
                except OSError:
                    continue
                if age < self.TMP_SWEEP_MIN_AGE_SECONDS:
                    continue
                if not dry_run:
                    shutil.rmtree(child, ignore_errors=True)
                temp_swept += 1
        return temp_swept

    def _trim_to_bytes(self, max_bytes: int, dry_run: bool = False) -> List[Dict[str, Any]]:
        """LRU-evict artifacts until the store fits in ``max_bytes``.

        Artifacts whose build lock is held by another process are skipped
        (their bytes still count — the next gc retries them).
        """
        entries = sorted(self.list_artifacts(), key=lambda entry: entry["last_used_at"])
        total = sum(entry["size_bytes"] for entry in entries)
        removed: List[Dict[str, Any]] = []
        for entry in entries:
            if total <= max_bytes:
                break
            if dry_run:
                total -= entry["size_bytes"]
                removed.append(entry)
                continue
            with self._build_lock(entry["kind"], entry["hash"], blocking=False) as acquired:
                if not acquired:
                    continue
                shutil.rmtree(entry["path"], ignore_errors=True)
            self._memory.pop(entry["hash"], None)
            total -= entry["size_bytes"]
            removed.append(entry)
        return removed


def _tree_size(path: Path) -> int:
    total = 0
    for child in path.rglob("*"):
        with contextlib.suppress(OSError):
            if child.is_file():
                total += child.stat().st_size
    return total


def _repro_version() -> str:
    from .. import __version__

    return __version__


# ---------------------------------------------------------------------- #
# Active-store management
# ---------------------------------------------------------------------- #
_active_store: Optional[ArtifactStore] = None


def get_active_store() -> Optional[ArtifactStore]:
    """The store experiment code routes through (None = no caching)."""
    return _active_store


def set_active_store(store: Optional[ArtifactStore]) -> Optional[ArtifactStore]:
    """Set the process-wide active store; returns the previous one."""
    global _active_store
    previous = _active_store
    _active_store = store
    return previous


@contextlib.contextmanager
def use_store(store: Optional[ArtifactStore]) -> Iterator[Optional[ArtifactStore]]:
    """Activate ``store`` for the enclosed block (restores the previous one)."""
    previous = set_active_store(store)
    try:
        yield store
    finally:
        set_active_store(previous)


def resolve_store(store: Optional[ArtifactStore] = None) -> Optional[ArtifactStore]:
    """An explicit store if given, else the active store (possibly None)."""
    return store if store is not None else get_active_store()


__all__ = [
    "ArtifactStore",
    "BuildInfo",
    "StoreStats",
    "MANIFEST_FILE",
    "LOCKS_DIR",
    "STORE_ENV",
    "DEFAULT_STORE_DIR",
    "get_active_store",
    "set_active_store",
    "use_store",
    "resolve_store",
]

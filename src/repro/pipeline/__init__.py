"""Declarative experiment pipeline with a content-addressed artifact store.

Three layers:

* :mod:`repro.pipeline.specs` — canonical, hashable stage specs
  (``DatasetSpec`` → ``WorkloadSpec`` → ``TrainSpec`` → ``EvalSpec``,
  grouped by ``ExperimentSpec``) whose BLAKE2b content hash identifies each
  stage's output;
* :mod:`repro.pipeline.store` — :class:`ArtifactStore`, the on-disk
  memoization of stage outputs under their spec hash, with provenance
  manifests, eviction / GC and atomic (resume-safe) writes;
* :mod:`repro.pipeline.runner` — :class:`PipelineRunner`, the DAG scheduler
  that materializes stages in dependency order, overlapping independent
  branches on a worker pool.

The evaluation harness (:mod:`repro.eval.harness`), every table / figure
reproduction (:mod:`repro.experiments`) and the ``repro run`` CLI are built
on these; the serving tier loads trained models straight from the store's
``train/`` namespace (:meth:`ArtifactStore.models_dir`).
"""

from .runner import (
    ENGINE_OPTION_KEYS,
    EXECUTORS,
    PipelineOutcome,
    PipelineReport,
    PipelineRunner,
    StageReport,
)
from .specs import (
    DatasetSpec,
    EvalSpec,
    ExperimentSpec,
    Spec,
    TrainSpec,
    TrainedModel,
    WorkloadSpec,
    canonical_json,
    canonical_value,
    spec_from_canonical,
    spec_hash,
)
from .store import (
    DEFAULT_STORE_DIR,
    LOCKS_DIR,
    MANIFEST_FILE,
    STORE_ENV,
    ArtifactStore,
    BuildInfo,
    StoreStats,
    get_active_store,
    resolve_store,
    set_active_store,
    use_store,
)

__all__ = [
    "Spec",
    "DatasetSpec",
    "WorkloadSpec",
    "TrainSpec",
    "TrainedModel",
    "EvalSpec",
    "ExperimentSpec",
    "spec_hash",
    "canonical_value",
    "canonical_json",
    "spec_from_canonical",
    "ArtifactStore",
    "BuildInfo",
    "StoreStats",
    "MANIFEST_FILE",
    "LOCKS_DIR",
    "STORE_ENV",
    "DEFAULT_STORE_DIR",
    "get_active_store",
    "set_active_store",
    "use_store",
    "resolve_store",
    "PipelineRunner",
    "PipelineOutcome",
    "PipelineReport",
    "StageReport",
    "ENGINE_OPTION_KEYS",
    "EXECUTORS",
]

"""Batched exact-selectivity engine: blocked kernels, delta maintenance, bench.

The default oracle everywhere: :class:`repro.data.ground_truth.
SelectivityOracle` fronts :class:`BlockedOracle` for all batch work, the
workload generator derives thresholds through
:meth:`BlockedOracle.threshold_profile`, and the update pipeline replays
insert/delete streams through :class:`DeltaOracle`.
"""

from .bench import (
    OracleBenchmarkReport,
    OracleBenchmarkRow,
    run_oracle_benchmark,
    write_oracle_benchmark_json,
)
from .blocked import (
    DEFAULT_BLOCK_BYTES,
    BlockedOracle,
    get_default_num_workers,
    set_default_num_workers,
)
from .delta import DeltaOracle
from .reference import LegacyOracle, ReferenceOracle

__all__ = [
    "BlockedOracle",
    "DeltaOracle",
    "LegacyOracle",
    "ReferenceOracle",
    "DEFAULT_BLOCK_BYTES",
    "get_default_num_workers",
    "set_default_num_workers",
    "OracleBenchmarkReport",
    "OracleBenchmarkRow",
    "run_oracle_benchmark",
    "write_oracle_benchmark_json",
]

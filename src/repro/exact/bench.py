"""Oracle benchmark (the ``repro oracle-bench`` CLI).

Three phases, each timing the blocked engine against the seed's per-query
pipeline (:class:`~repro.exact.reference.LegacyOracle` — one GEMV scan
plus a sort or count per query) over equivalent inputs, with an
**exact-integer parity gate** per phase (engine counts must match both
the legacy pipeline and the kernel-pinned
:class:`~repro.exact.reference.ReferenceOracle`):

* **workload-generation** — derive geometric-rank thresholds and exact
  labels for ``Q`` queries (the ``generate_workload`` hot path: baseline
  sorts an ``n``-vector per query; the engine partitions once per row).
* **relabel-batch** — aligned ``(query, threshold)`` relabeling (the
  ``relabel_workload`` / update-replay hot path; counting, no sorts).
* **delta-replay** — replay a mixed insert/delete stream, relabeling the
  same workload after every operation: :class:`~repro.exact.delta.
  DeltaOracle` vs a from-scratch legacy relabel per operation.

Results serialise to ``BENCH_oracle.json`` via
:func:`write_oracle_benchmark_json`; CI runs ``repro oracle-bench
--smoke`` which exits non-zero when any phase's parity gate fails.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .blocked import BlockedOracle
from .delta import DeltaOracle
from .reference import LegacyOracle, ReferenceOracle

PathLike = Union[str, Path]


@dataclass
class OracleBenchmarkRow:
    """One phase measurement: per-query baseline vs blocked engine."""

    phase: str
    distance: str
    num_objects: int
    dim: int
    num_queries: int
    thresholds_per_query: int
    num_workers: int
    baseline_seconds: float
    engine_seconds: float
    speedup: float
    baseline_queries_per_second: float
    engine_queries_per_second: float
    parity_exact: bool

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class OracleBenchmarkReport:
    """All measurements of one oracle benchmark run."""

    rows: List[OracleBenchmarkRow] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def parity_ok(self) -> bool:
        return all(row.parity_exact for row in self.rows)

    def speedup_for(self, phase: str) -> float:
        candidates = [row.speedup for row in self.rows if row.phase == phase]
        if not candidates:
            raise KeyError(f"no benchmark rows for phase {phase!r}")
        return max(candidates)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": "repro-oracle",
            "metadata": dict(self.metadata),
            "rows": [row.as_dict() for row in self.rows],
        }

    @property
    def text(self) -> str:
        lines = [
            "oracle-bench: blocked engine vs per-query reference oracle",
            f"{'phase':<20} {'distance':<10} {'n':>7} {'dim':>4} {'queries':>7} "
            f"{'workers':>7} {'baseline s':>11} {'engine s':>9} {'speedup':>8} {'parity':>7}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.phase:<20} {row.distance:<10} {row.num_objects:>7} {row.dim:>4} "
                f"{row.num_queries:>7} {row.num_workers:>7} "
                f"{row.baseline_seconds:>11.3f} {row.engine_seconds:>9.3f} "
                f"{row.speedup:>7.2f}x {'exact' if row.parity_exact else 'FAIL':>7}"
            )
        return "\n".join(lines)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_oracle_benchmark(
    num_objects: int = 50_000,
    dim: int = 128,
    num_queries: int = 100,
    thresholds_per_query: int = 40,
    distance: str = "euclidean",
    num_workers: int = 4,
    block_bytes: Optional[int] = None,
    max_selectivity_fraction: float = 0.01,
    delta_operations: int = 20,
    records_per_operation: int = 5,
    include_delta: bool = True,
    seed: int = 0,
) -> OracleBenchmarkReport:
    """Measure the batched oracle against the per-query baseline."""
    # Imported lazily: repro.data.ground_truth fronts this package's engine,
    # so a module-level import here would be circular.
    from ..data.synthetic import make_dataset
    from ..data.updates import generate_update_stream

    dataset = make_dataset(
        "face_like", num_vectors=num_objects, dim=dim, num_clusters=16, seed=seed
    )
    data = dataset.vectors
    rng = np.random.default_rng(seed)
    query_index = rng.choice(num_objects, size=min(num_queries, num_objects), replace=False)
    queries = data[query_index]
    num_queries = len(queries)

    engine = BlockedOracle(data, distance, block_bytes=block_bytes, num_workers=num_workers)
    reference = ReferenceOracle(data, distance)

    targets = np.geomspace(
        1.0, max(num_objects * max_selectivity_fraction, 2.0), num=thresholds_per_query
    )
    ranks = np.clip(np.round(targets).astype(np.int64), 1, num_objects)

    report = OracleBenchmarkReport(
        metadata={
            "num_objects": num_objects,
            "dim": dim,
            "num_queries": num_queries,
            "thresholds_per_query": thresholds_per_query,
            "distance": distance,
            "num_workers": num_workers,
            "seed": seed,
        }
    )

    def add_row(phase, baseline_seconds, engine_seconds, parity_exact):
        report.rows.append(
            OracleBenchmarkRow(
                phase=phase,
                distance=distance,
                num_objects=num_objects,
                dim=dim,
                num_queries=num_queries,
                thresholds_per_query=thresholds_per_query,
                num_workers=num_workers,
                baseline_seconds=baseline_seconds,
                engine_seconds=engine_seconds,
                speedup=baseline_seconds / max(engine_seconds, 1e-12),
                baseline_queries_per_second=num_queries / max(baseline_seconds, 1e-12),
                engine_queries_per_second=num_queries / max(engine_seconds, 1e-12),
                parity_exact=bool(parity_exact),
            )
        )

    # Phase 1: workload generation (threshold derivation + exact labels).
    # Timed baseline: the seed's per-query pipeline (one GEMV scan + one
    # full sort per query).  Parity is layered: the engine must match the
    # kernel-pinned ReferenceOracle *bitwise* (thresholds and counts), and
    # the integer labels must also match the legacy pipeline (both resolve
    # every rank tie by construction, so ulp-level threshold differences
    # cannot show up in the counts).
    legacy = LegacyOracle(data, distance)
    (legacy_thresholds, legacy_counts), baseline_s = _timed(
        lambda: legacy.threshold_profile(queries, ranks)
    )
    (eng_thresholds, eng_counts), engine_s = _timed(
        lambda: engine.threshold_profile(queries, ranks)
    )
    ref_thresholds, ref_counts = reference.threshold_profile(queries, ranks)
    parity = (
        np.array_equal(ref_counts, eng_counts)
        and np.array_equal(ref_thresholds, eng_thresholds)
        and np.array_equal(legacy_counts, eng_counts)
    )
    add_row("workload-generation", baseline_s, engine_s, parity)

    # Phase 2: aligned relabeling over flat (query, threshold) rows — the
    # seed's `batch_selectivity` loop (one unsorted scan + count per row)
    # vs blocked counting.  Flat engine counts must also agree bitwise with
    # the fused phase-1 counts (row deduplication invariance).
    flat_queries = np.repeat(queries, thresholds_per_query, axis=0)
    flat_thresholds = eng_thresholds.reshape(-1)
    legacy_flat, baseline_s = _timed(
        lambda: legacy.selectivities_batch(flat_queries, legacy_thresholds.reshape(-1))
    )
    eng_flat, engine_s = _timed(
        lambda: engine.selectivities_batch(flat_queries, flat_thresholds)
    )
    parity = np.array_equal(eng_flat, eng_counts.reshape(-1)) and np.array_equal(
        legacy_flat, eng_flat
    )
    add_row("relabel-batch", baseline_s, engine_s, parity)

    if include_delta:
        # Phase 3: update replay — relabel the workload after every operation.
        # Each arm derives rank thresholds with its own kernel and replays
        # with it: the legacy per-query GEMV pipeline is bit-stable under row
        # deletion (each distance is an independent dot product), so both
        # pipelines resolve every rank-threshold tie by construction and
        # their integer labels must agree at every step.
        operations = generate_update_stream(
            data,
            num_operations=delta_operations,
            records_per_operation=records_per_operation,
            seed=seed,
        )
        def baseline_replay():
            current = data
            labels = []
            from ..data.updates import apply_update

            for operation in operations:
                current = apply_update(current, operation)
                labels.append(
                    LegacyOracle(current, distance).selectivities_batch(
                        queries, legacy_thresholds
                    )
                )
            return labels

        def delta_replay():
            delta = DeltaOracle(
                data, distance, block_bytes=block_bytes, num_workers=num_workers
            )
            labels = []
            for operation in operations:
                delta.apply(operation)
                labels.append(delta.selectivities_batch(queries, eng_thresholds))
            return labels

        ref_labels, baseline_s = _timed(baseline_replay)
        eng_labels, engine_s = _timed(delta_replay)
        parity = all(np.array_equal(r, e) for r, e in zip(ref_labels, eng_labels))
        add_row("delta-replay", baseline_s, engine_s, parity)

    return report


def write_oracle_benchmark_json(report: OracleBenchmarkReport, path: PathLike) -> Path:
    """Serialise a benchmark report to ``path`` (e.g. ``BENCH_oracle.json``)."""
    path = Path(path)
    with open(path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

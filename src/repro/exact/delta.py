"""Incremental exact selectivities under insert/delete batches.

After a :mod:`repro.data.updates` stream mutates the database, the naive
path rebuilds a fresh oracle and rescans all ``n`` rows per relabel.
:class:`DeltaOracle` instead answers from

``count(D') = count(D_base) - count(dead base rows) + count(live inserts)``

where the base term is computed once per distinct ``(queries, thresholds)``
batch (content-addressed cache) and the delta terms only scan the handful
of rows an update stream actually touched.  Replaying the paper's
100-operation streams therefore costs one full scan up front plus
``O(changed rows)`` per operation instead of ``O(n)`` per operation.

Exactness: workload thresholds are order statistics of the base data, so a
deleted row's distance frequently *equals* a threshold, and recomputing it
in a different GEMM shape can move it by one ulp across the boundary (BLAS
dispatches tiny matrices to different micro-kernels).  The base pass
therefore records, per ``(query, threshold)`` pair, the rows inside a
guard band of the threshold together with their counted outcome
(:meth:`~repro.exact.blocked.BlockedOracle.selectivities_with_boundaries`);
the deleted-row term replays those outcomes for any ambiguous comparison,
so deleted contributions cancel exactly and composed counts match a
from-scratch rebuild integer for integer (the ``DeltaOracle`` parity tests
assert this after mixed streams).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from ..distances import DistanceFunction, get_distance
from .blocked import BlockedOracle

#: distinct (queries, thresholds) batches whose base counts are retained
BASE_CACHE_SIZE = 8

#: relative guard band for ambiguous comparisons (orders of magnitude wider
#: than GEMM accumulation error, yet narrow enough that only genuine ties
#: and duplicate rows fall inside it)
COMPARISON_GUARD = 1e-9

#: boundary sets are recorded with a wider band so any comparison that looks
#: ambiguous when recomputed is guaranteed to have been recorded
RECORDING_GUARD = 1e-8


def _batch_digest(queries: np.ndarray, thresholds: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(queries.shape).encode())
    digest.update(np.ascontiguousarray(queries).tobytes())
    digest.update(str(thresholds.shape).encode())
    digest.update(np.ascontiguousarray(thresholds).tobytes())
    return digest.digest()


class DeltaOracle:
    """Exact selectivities over a database evolving through updates.

    Row indexing follows :func:`repro.data.updates.apply_update`: deletes
    take indices into the *current* view (surviving base rows in original
    order followed by surviving inserted rows in insertion order; indices
    past the end are ignored) and inserts append at the end.
    """

    def __init__(
        self,
        data: np.ndarray,
        distance,
        block_bytes: Optional[int] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        self.distance: DistanceFunction = (
            distance if isinstance(distance, DistanceFunction) else get_distance(distance)
        )
        self._base = BlockedOracle(
            data, self.distance, block_bytes=block_bytes, num_workers=num_workers
        )
        self._block_bytes = block_bytes
        self._num_workers = num_workers
        self._base_alive = np.ones(self._base.num_objects, dtype=bool)
        self._inserted = np.empty((0, self._base.dim), dtype=np.float64)
        self._insert_alive = np.empty(0, dtype=bool)
        self._base_cache: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self._dead_oracle: Optional[BlockedOracle] = None
        self._insert_oracle: Optional[BlockedOracle] = None

    # ------------------------------------------------------------------ #
    # Current view
    # ------------------------------------------------------------------ #
    @property
    def num_objects(self) -> int:
        return int(np.count_nonzero(self._base_alive) + np.count_nonzero(self._insert_alive))

    @property
    def base_size(self) -> int:
        return self._base.num_objects

    def current_data(self) -> np.ndarray:
        """Materialise the current database (matches ``apply_stream`` output)."""
        return np.concatenate(
            [self._base.data[self._base_alive], self._inserted[self._insert_alive]], axis=0
        )

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert(self, vectors: np.ndarray) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self._base.dim:
            raise ValueError("inserted vectors must match the database dimensionality")
        self._inserted = np.concatenate([self._inserted, vectors], axis=0)
        self._insert_alive = np.concatenate(
            [self._insert_alive, np.ones(len(vectors), dtype=bool)]
        )
        self._insert_oracle = None

    def delete(self, indices: np.ndarray) -> None:
        """Delete rows by index into the current view.

        Semantics mirror :func:`~repro.data.updates.apply_update`: indices
        past the end are ignored, negative indices count from the end
        (numpy wrap-around), and indices below ``-size`` raise.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        size = self.num_objects
        indices = indices[indices < size]
        indices = np.where(indices < 0, indices + size, indices)
        if np.any(indices < 0):
            raise IndexError("delete index out of bounds for the current database size")
        if len(indices) == 0:
            return
        alive_base = np.nonzero(self._base_alive)[0]
        alive_inserts = np.nonzero(self._insert_alive)[0]
        base_hits = indices[indices < len(alive_base)]
        insert_hits = indices[indices >= len(alive_base)] - len(alive_base)
        if len(base_hits):
            self._base_alive[alive_base[base_hits]] = False
            self._dead_oracle = None
        if len(insert_hits):
            self._insert_alive[alive_inserts[insert_hits]] = False
            self._insert_oracle = None

    def apply(self, operation) -> None:
        """Apply one :class:`~repro.data.updates.UpdateOperation`."""
        if operation.kind == "insert":
            self.insert(operation.vectors)
        elif operation.kind == "delete":
            self.delete(operation.indices)
        else:  # pragma: no cover - UpdateOperation validates kinds
            raise ValueError(f"unknown operation kind {operation.kind!r}")

    def apply_stream(self, operations: Sequence) -> None:
        for operation in operations:
            self.apply(operation)

    # ------------------------------------------------------------------ #
    # Counting
    # ------------------------------------------------------------------ #
    def _base_counts(self, queries: np.ndarray, thresholds: np.ndarray):
        key = _batch_digest(queries, thresholds)
        cached = self._base_cache.get(key)
        if cached is None:
            cached = self._base.selectivities_with_boundaries(
                queries, thresholds, guard=RECORDING_GUARD
            )
            self._base_cache[key] = cached
            while len(self._base_cache) > BASE_CACHE_SIZE:
                self._base_cache.popitem(last=False)
        else:
            self._base_cache.move_to_end(key)
        return cached

    def _subset_oracle(self, vectors: np.ndarray) -> BlockedOracle:
        return BlockedOracle(
            vectors,
            self.distance,
            block_bytes=self._block_bytes,
            num_workers=self._num_workers,
        )

    def _dead_counts(
        self,
        queries: np.ndarray,
        grid: np.ndarray,
        boundaries: dict,
        dead_ids: np.ndarray,
    ) -> np.ndarray:
        """How many *deleted* base rows each pair counted in the base pass.

        Distances to the deleted rows are recomputed with the blocked
        kernel; any comparison within the guard band of the threshold is
        resolved from the recorded base outcome instead, so the subtraction
        cancels the base term exactly even at forced ties.
        """
        if self._dead_oracle is None:
            self._dead_oracle = self._subset_oracle(self._base.data[dead_ids])
        tiles = self._dead_oracle.distances_matrix(queries)
        width = grid.shape[1]
        counts = np.zeros(grid.shape, dtype=np.int64)
        for j in range(width):
            cutoff = grid[:, j : j + 1]
            le = tiles <= cutoff
            ambiguous = np.abs(tiles - cutoff) <= COMPARISON_GUARD * (1.0 + np.abs(cutoff))
            for i_local, d_local in zip(*np.nonzero(ambiguous)):
                recorded = boundaries.get(int(i_local) * width + j)
                if recorded is None:
                    continue
                ids, outcomes = recorded
                slot = np.searchsorted(ids, dead_ids[d_local])
                if slot < len(ids) and ids[slot] == dead_ids[d_local]:
                    le[i_local, d_local] = outcomes[slot]
            counts[:, j] = np.count_nonzero(le, axis=1)
        return counts

    def selectivities_batch(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Exact counts against the current database state.

        ``thresholds`` may be 1-D (aligned) or 2-D ``(len(queries), w)``,
        exactly as for :meth:`BlockedOracle.selectivities_batch`.
        """
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        base_counts, boundaries = self._base_counts(queries, thresholds)
        counts = base_counts.copy()
        grid = thresholds if thresholds.ndim == 2 else thresholds[:, None]
        dead = ~self._base_alive
        if dead.any():
            dead_ids = np.nonzero(dead)[0]
            dead_counts = self._dead_counts(
                np.ascontiguousarray(queries), grid, boundaries, dead_ids
            )
            counts -= dead_counts if thresholds.ndim == 2 else dead_counts[:, 0]
        if self._insert_alive.any():
            if self._insert_oracle is None:
                self._insert_oracle = self._subset_oracle(self._inserted[self._insert_alive])
            counts += self._insert_oracle.selectivities_batch(queries, thresholds)
        return counts

    batch_selectivity = selectivities_batch

    def cache_info(self) -> dict:
        """Introspection for tests and benchmarks."""
        return {
            "base_batches_cached": len(self._base_cache),
            "dead_base_rows": int(np.count_nonzero(~self._base_alive)),
            "live_inserted_rows": int(np.count_nonzero(self._insert_alive)),
        }

"""Blocked, multi-core exact-selectivity engine (the batched oracle).

The per-query oracle in :mod:`repro.data.ground_truth` pays one GEMV, one
``O(n log n)`` sort and (for cosine) a fresh norm pass per query.  This
module replaces that hot path with a *batched* engine:

* **Blocked pairwise kernels** — query-block x data-block GEMM with data
  squared-norms / norms precomputed once per oracle, memory-bounded by a
  configurable ``block_bytes`` budget.
* **Thread-pool scatter** over query blocks (the underlying BLAS releases
  the GIL) with a deterministic, order-preserving gather: every worker
  writes a disjoint slice of a preallocated output, so results are
  bit-identical for any worker count.
* **Count, don't sort** — :meth:`BlockedOracle.selectivities_batch` counts
  ``d <= t`` per data block and accumulates;
  :meth:`BlockedOracle.kth_distances` uses ``np.partition`` and
  :meth:`BlockedOracle.threshold_profile` partitions once at the largest
  rank and sorts only the tiny head, so workload generation never
  materialises a sorted ``n``-vector per query.
* **Optional triangle-inequality pruning** fed by
  :class:`~repro.index.cover_tree.BallRegion` regions (Euclidean only):
  regions whose ball lies entirely inside / outside the query ball are
  counted / skipped without a distance computation; only borderline
  regions are scanned with the exact kernel, behind a conservative margin
  so the counts stay exactly equal to the unpruned ones.

Bit-exactness contract
----------------------
All distances go through 2-D GEMM (one-row blocks are padded to two rows:
BLAS dispatches ``M == 1`` to a GEMV kernel whose summation order differs
from GEMM's).  Per-element GEMM results are invariant under row/column
blocking, so counts are identical across block sizes, worker counts, and
row deduplication — the property the exact-integer parity gate in
``repro oracle-bench`` asserts against :class:`~repro.exact.reference.
ReferenceOracle`.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..distances import DistanceFunction, get_distance
from ..distances.metrics import COSINE_NORM_FLOOR

#: default memory budget for one query-block x data-block distance tile
DEFAULT_BLOCK_BYTES = 32 * 1024 * 1024

#: env var consulted for the default worker count
NUM_WORKERS_ENV = "REPRO_ORACLE_WORKERS"

_DEFAULT_NUM_WORKERS: Optional[int] = None

ProgressCallback = Callable[[int, int], None]


def set_default_num_workers(num_workers: Optional[int]) -> None:
    """Set the process-wide default oracle worker count (None = auto)."""
    global _DEFAULT_NUM_WORKERS
    _DEFAULT_NUM_WORKERS = None if num_workers is None else max(int(num_workers), 1)


def get_default_num_workers() -> int:
    """Default worker count: explicit setting, else $REPRO_ORACLE_WORKERS, else auto."""
    if _DEFAULT_NUM_WORKERS is not None:
        return _DEFAULT_NUM_WORKERS
    env = os.environ.get(NUM_WORKERS_ENV)
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return max(min(4, os.cpu_count() or 1), 1)


def _matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` that always takes BLAS's GEMM path.

    NumPy dispatches ``(1, k) @ (k, n)`` to GEMV, whose per-element
    summation order differs from GEMM's; padding to two rows keeps every
    distance bit-identical regardless of how queries are blocked.
    """
    if a.shape[0] == 1:
        return (np.concatenate([a, a], axis=0) @ b)[:1]
    return a @ b


class BlockedOracle:
    """Batched exact selectivities ``|{o in D : d(x, o) <= t}|``.

    Parameters
    ----------
    data:
        Database vectors, shape ``(n, dim)``; cached once as C-contiguous
        float64.
    distance:
        A :class:`~repro.distances.DistanceFunction` or its name.
    block_bytes:
        Memory budget for one distance tile (default 32 MiB).
    num_workers:
        Thread-pool width for the scatter over query blocks; ``None``
        means :func:`get_default_num_workers`.
    regions:
        Optional :class:`~repro.index.cover_tree.BallRegion` sequence
        enabling triangle-inequality pruning (Euclidean distance only;
        silently ignored otherwise).  The regions must cover disjoint
        database rows (e.g. ``CoverTree.leaf_regions()``).
    """

    def __init__(
        self,
        data: np.ndarray,
        distance,
        block_bytes: Optional[int] = None,
        num_workers: Optional[int] = None,
        regions: Optional[Sequence] = None,
    ) -> None:
        self.data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        if self.data.ndim != 2:
            raise ValueError("data must be a 2-D array")
        self.distance: DistanceFunction = (
            distance if isinstance(distance, DistanceFunction) else get_distance(distance)
        )
        self.block_bytes = DEFAULT_BLOCK_BYTES if block_bytes is None else int(block_bytes)
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.num_workers = num_workers
        self._data_t = np.ascontiguousarray(self.data.T)
        if self.distance.name == "euclidean":
            self._data_sq = np.einsum("ij,ij->i", self.data, self.data)
            self._data_norms = None
        elif self.distance.name == "cosine":
            self._data_sq = None
            self._data_norms = np.linalg.norm(self.data, axis=1)
        else:
            self._data_sq = None
            self._data_norms = None
        self._regions = self._prepare_regions(regions)

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #
    @property
    def num_objects(self) -> int:
        return int(self.data.shape[0])

    @property
    def dim(self) -> int:
        return int(self.data.shape[1])

    def _resolved_workers(self) -> int:
        if self.num_workers is not None:
            return max(int(self.num_workers), 1)
        return get_default_num_workers()

    def _row_block(self, columns: int, per_row_bytes: int = 8) -> int:
        """Query rows per block so one ``(rows, columns)`` tile fits the budget."""
        columns = max(int(columns), 1)
        return int(max(self.block_bytes // (per_row_bytes * columns), 1))

    def _column_block(self, rows: int) -> int:
        """Data columns per block for a fixed query-block height."""
        rows = max(int(rows), 1)
        return int(min(max(self.block_bytes // (8 * rows), 1024), max(self.num_objects, 1)))

    # ------------------------------------------------------------------ #
    # Distance tiles
    # ------------------------------------------------------------------ #
    def _distance_tile(
        self, queries: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Distances from a query block to ``data[start:stop]`` (GEMM path)."""
        if self.distance.name == "euclidean":
            gram = _matmul(queries, self._data_t[:, start:stop])
            q_sq = np.einsum("ij,ij->i", queries, queries)
            squared = q_sq[:, None] + self._data_sq[None, start:stop] - 2.0 * gram
            return np.sqrt(np.maximum(squared, 0.0, out=squared), out=squared)
        if self.distance.name == "cosine":
            gram = _matmul(queries, self._data_t[:, start:stop])
            q_norms = np.linalg.norm(queries, axis=1)
            denom = np.maximum(
                q_norms[:, None] * self._data_norms[None, start:stop], COSINE_NORM_FLOOR
            )
            return 1.0 - gram / denom
        return self.distance.pairwise(queries, self.data[start:stop])

    def distances_matrix(self, queries: np.ndarray) -> np.ndarray:
        """Full ``(len(queries), n)`` distance matrix, assembled block-wise."""
        queries = self._coerce_queries(queries)
        out = np.empty((len(queries), self.num_objects), dtype=np.float64)
        if len(queries) == 0:
            return out
        self._scatter(
            len(queries),
            self._row_block(self.num_objects),
            lambda s, e: out.__setitem__(slice(s, e), self._fill_rows(queries[s:e])),
        )
        return out

    def _fill_rows(self, block: np.ndarray) -> np.ndarray:
        rows = np.empty((len(block), self.num_objects), dtype=np.float64)
        step = self._column_block(len(block))
        for start in range(0, self.num_objects, step):
            stop = min(start + step, self.num_objects)
            rows[:, start:stop] = self._distance_tile(block, start, stop)
        return rows

    # ------------------------------------------------------------------ #
    # Scatter / gather
    # ------------------------------------------------------------------ #
    def _scatter(
        self,
        total_rows: int,
        rows_per_block: int,
        work: Callable[[int, int], None],
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        """Run ``work(start, stop)`` over query blocks, optionally threaded.

        Each call writes a disjoint output slice, so the gather is
        order-preserving and deterministic for any worker count.
        """
        bounds = [
            (start, min(start + rows_per_block, total_rows))
            for start in range(0, total_rows, rows_per_block)
        ]
        # More threads than cores is pure loss for CPU-bound BLAS work (the
        # concurrent tiles evict each other from cache), so the requested
        # width is capped at the machine; results are identical either way.
        workers = min(self._resolved_workers(), len(bounds), os.cpu_count() or 1)
        if workers <= 1:
            done = 0
            for start, stop in bounds:
                work(start, stop)
                done += stop - start
                if progress is not None:
                    progress(done, total_rows)
            return
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(work, start, stop) for start, stop in bounds]
            done = 0
            for (start, stop), future in zip(bounds, futures):
                future.result()  # re-raises worker errors; order-preserving
                done += stop - start
                if progress is not None:
                    progress(done, total_rows)

    @staticmethod
    def _coerce_queries(queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        return np.ascontiguousarray(queries)

    # ------------------------------------------------------------------ #
    # Selectivities
    # ------------------------------------------------------------------ #
    def selectivities_batch(
        self,
        queries: np.ndarray,
        thresholds: np.ndarray,
        progress: Optional[ProgressCallback] = None,
    ) -> np.ndarray:
        """Exact counts for aligned queries and thresholds.

        ``thresholds`` may be 1-D (one threshold per query) or 2-D
        ``(len(queries), w)`` (several thresholds per query); the result
        matches its shape with dtype int64.  Counts accumulate over data
        blocks — no sort is ever performed.
        """
        queries = self._coerce_queries(queries)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.ndim not in (1, 2) or len(thresholds) != len(queries):
            raise ValueError("queries and thresholds must be aligned")
        out = np.empty(thresholds.shape, dtype=np.int64)
        if len(queries) == 0:
            return out

        if thresholds.ndim == 1 and self._regions is not None:
            worker = lambda s, e: out.__setitem__(
                slice(s, e), self._pruned_counts(queries[s:e], thresholds[s:e])
            )
            width = self.num_objects
        elif thresholds.ndim == 1:
            worker = lambda s, e: out.__setitem__(
                slice(s, e), self._aligned_counts(queries[s:e], thresholds[s:e])
            )
            width = self._column_block(64)
        else:
            worker = lambda s, e: out.__setitem__(
                slice(s, e), self._grid_counts(queries[s:e], thresholds[s:e])
            )
            width = self._column_block(64)
        self._scatter(len(queries), self._row_block(width), worker, progress=progress)
        return out

    def _aligned_counts(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        counts = np.zeros(len(queries), dtype=np.int64)
        step = self._column_block(len(queries))
        cutoffs = thresholds[:, None]
        for start in range(0, self.num_objects, step):
            tile = self._distance_tile(queries, start, min(start + step, self.num_objects))
            counts += np.count_nonzero(tile <= cutoffs, axis=1)
        return counts

    def _grid_counts(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        counts = np.zeros(thresholds.shape, dtype=np.int64)
        step = self._column_block(len(queries))
        for start in range(0, self.num_objects, step):
            tile = self._distance_tile(queries, start, min(start + step, self.num_objects))
            for j in range(thresholds.shape[1]):
                counts[:, j] += np.count_nonzero(tile <= thresholds[:, j : j + 1], axis=1)
        return counts

    def selectivities_with_boundaries(
        self,
        queries: np.ndarray,
        thresholds: np.ndarray,
        guard: float = 1e-8,
    ):
        """Counts plus, per pair, the rows within a guard band of the threshold.

        Returns ``(counts, boundaries)`` where ``boundaries`` maps a
        flattened pair index (``row`` for 1-D thresholds, ``row * w + j``
        for 2-D) to ``(row_ids, outcomes)``: the database rows whose
        distance lies within ``guard * (1 + |t|)`` of the pair's threshold
        and whether this oracle counted them (``d <= t``).

        :class:`~repro.exact.delta.DeltaOracle` replays these recorded
        outcomes when subtracting deleted rows: recomputing a tie row's
        distance in a different GEMM shape can move it by one ulp across
        the threshold, but the guard band is orders of magnitude wider
        than any accumulation error, so every ambiguous comparison is
        resolved from the base pass and deleted contributions cancel
        exactly.
        """
        queries = self._coerce_queries(queries)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.ndim not in (1, 2) or len(thresholds) != len(queries):
            raise ValueError("queries and thresholds must be aligned")
        counts = np.zeros(thresholds.shape, dtype=np.int64)
        boundaries: dict = {}
        if len(queries) == 0:
            return counts, boundaries
        grid = thresholds if thresholds.ndim == 2 else thresholds[:, None]
        width = grid.shape[1]
        block_counts = np.zeros(grid.shape, dtype=np.int64)
        guards = guard * (1.0 + np.abs(grid))

        def work(start: int, stop: int) -> None:
            sub = queries[start:stop]
            step = self._column_block(len(sub))
            for col in range(0, self.num_objects, step):
                tile = self._distance_tile(sub, col, min(col + step, self.num_objects))
                for j in range(width):
                    cutoff = grid[start:stop, j : j + 1]
                    block_counts[start:stop, j] += np.count_nonzero(tile <= cutoff, axis=1)
                    near = np.abs(tile - cutoff) <= guards[start:stop, j : j + 1]
                    if not near.any():
                        continue
                    for i_local, row_local in zip(*np.nonzero(near)):
                        pair = (start + int(i_local)) * width + j
                        ids, outcomes = boundaries.setdefault(pair, ([], []))
                        ids.append(col + int(row_local))
                        outcomes.append(
                            bool(tile[i_local, row_local] <= grid[start + i_local, j])
                        )

        self._scatter(len(queries), self._row_block(self._column_block(64)), work)
        finalised = {
            pair: (np.asarray(ids, dtype=np.int64), np.asarray(outcomes, dtype=bool))
            for pair, (ids, outcomes) in boundaries.items()
        }
        counts[...] = block_counts if thresholds.ndim == 2 else block_counts[:, 0]
        return counts, finalised

    # ------------------------------------------------------------------ #
    # Order statistics
    # ------------------------------------------------------------------ #
    def kth_distances(
        self,
        queries: np.ndarray,
        ks: Sequence[int],
        progress: Optional[ProgressCallback] = None,
    ) -> np.ndarray:
        """The ``k``-th smallest distances (0-based) per query via ``np.partition``.

        Returns shape ``(len(queries), len(ks))`` in the order of ``ks``.
        """
        queries = self._coerce_queries(queries)
        ks = np.asarray(ks, dtype=np.int64)
        if ks.ndim != 1:
            raise ValueError("ks must be a 1-D sequence of ranks")
        if len(ks) and (ks.min() < 0 or ks.max() >= self.num_objects):
            raise ValueError("ranks must lie in [0, num_objects)")
        out = np.empty((len(queries), len(ks)), dtype=np.float64)
        if len(queries) == 0 or len(ks) == 0:
            return out
        unique = np.unique(ks)
        kth = unique if len(unique) > 1 else int(unique[0])

        def work(start: int, stop: int) -> None:
            rows = self._fill_rows(queries[start:stop])
            part = np.partition(rows, kth, axis=1)
            out[start:stop] = part[:, ks]

        self._scatter(len(queries), self._row_block(self.num_objects), work, progress=progress)
        return out

    def tie_robust_thresholds(self, raw: np.ndarray) -> np.ndarray:
        """Nudge rank-derived thresholds just above their defining distance.

        A rank threshold *equals* some database row's computed distance, so
        any consumer that recomputes that distance with a different kernel
        (GEMV vs GEMM, a sampled subset, a post-update rebuild) can land one
        ulp above the raw threshold and lose the tie.  The margin is an
        error-propagation bound on that kernel spread — for Euclidean it is
        added in *squared* space, where GEMM accumulation error is uniform,
        which automatically widens near zero (the catastrophic-cancellation
        regime of ``sqrt``) and tightens to a relative nudge for large
        distances — so exact counts at the nudged threshold are identical
        for every brute-force kernel, while remaining far below any genuine
        gap between distinct data points.
        """
        raw = np.asarray(raw, dtype=np.float64)
        eps = float(np.finfo(np.float64).eps)
        spread = 64.0 * max(self.dim, 1) * eps
        if self.distance.name == "euclidean":
            scale_sq = 4.0 * float(self._data_sq.max()) if self.num_objects else 1.0
            return np.sqrt(raw * raw + spread * max(scale_sq, 1.0))
        if self.distance.name == "cosine":
            return raw + spread * np.maximum(np.abs(raw), 1.0)
        return raw + 1e-12 * (1.0 + np.abs(raw))

    def threshold_profile(
        self,
        queries: np.ndarray,
        ranks: Sequence[int],
        progress: Optional[ProgressCallback] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Tie-robust thresholds *and* exact counts at 1-based ranks, fused.

        For every query returns ``(thresholds, counts)`` of shape
        ``(len(queries), len(ranks))`` where ``thresholds[i, j]`` is the
        ``ranks[j]``-th smallest distance passed through
        :meth:`tie_robust_thresholds` and ``counts[i, j]`` the exact
        selectivity at that threshold (``>= ranks[j]``; ties push it up).

        One distance sweep serves both: the row is partitioned once at the
        largest rank, only the tiny head is sorted, and the few tail
        elements the nudged top threshold can reach are counted exactly —
        the full ``n``-vector is never sorted.
        """
        queries = self._coerce_queries(queries)
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.ndim != 1 or len(ranks) == 0:
            raise ValueError("ranks must be a non-empty 1-D sequence")
        if ranks.min() < 1 or ranks.max() > self.num_objects:
            raise ValueError("ranks must lie in [1, num_objects]")
        thresholds = np.empty((len(queries), len(ranks)), dtype=np.float64)
        counts = np.empty((len(queries), len(ranks)), dtype=np.int64)
        if len(queries) == 0:
            return thresholds, counts
        kmax = int(ranks.max()) - 1

        def work(start: int, stop: int) -> None:
            rows = self._fill_rows(queries[start:stop])
            if kmax + 1 >= rows.shape[1]:
                head = np.sort(rows, axis=1)
                tail = rows[:, rows.shape[1] :]
            else:
                part = np.partition(rows, kmax, axis=1)
                head = np.sort(part[:, : kmax + 1], axis=1)
                tail = part[:, kmax + 1 :]
            block_thresholds = self.tie_robust_thresholds(head[:, ranks - 1])
            block_counts = np.empty_like(block_thresholds, dtype=np.int64)
            for i in range(len(head)):
                block_counts[i] = np.searchsorted(head[i], block_thresholds[i], side="right")
            # Only thresholds nudged past the partition boundary can reach
            # tail elements (in practice just the largest rank's ties).
            boundary = head[:, kmax]
            reaches_tail = block_thresholds >= boundary[:, None]
            if tail.size and reaches_tail.any():
                for j in np.nonzero(reaches_tail.any(axis=0))[0]:
                    hit = np.nonzero(reaches_tail[:, j])[0]
                    block_counts[hit, j] += np.count_nonzero(
                        tail[hit] <= block_thresholds[hit, j : j + 1], axis=1
                    )
            thresholds[start:stop] = block_thresholds
            counts[start:stop] = block_counts

        self._scatter(len(queries), self._row_block(self.num_objects), work, progress=progress)
        return thresholds, counts

    def max_distances(self, queries: np.ndarray) -> np.ndarray:
        """Largest distance from each query to the database."""
        queries = self._coerce_queries(queries)
        out = np.empty(len(queries), dtype=np.float64)
        if len(queries) == 0:
            return out

        def work(start: int, stop: int) -> None:
            block = queries[start:stop]
            maxima = np.full(len(block), -np.inf)
            step = self._column_block(len(block))
            for col in range(0, self.num_objects, step):
                tile = self._distance_tile(block, col, min(col + step, self.num_objects))
                np.maximum(maxima, tile.max(axis=1), out=maxima)
            out[start:stop] = maxima

        self._scatter(len(queries), self._row_block(self._column_block(64)), work)
        return out

    # ------------------------------------------------------------------ #
    # Triangle-inequality pruning (Euclidean only)
    # ------------------------------------------------------------------ #
    def _prepare_regions(self, regions: Optional[Sequence]):
        if regions is None or self.distance.name != "euclidean":
            return None
        centers = np.ascontiguousarray(
            np.stack([np.asarray(region.center, dtype=np.float64) for region in regions])
        )
        radii = np.asarray([float(region.radius) for region in regions])
        members = [np.asarray(region.point_indices, dtype=np.int64) for region in regions]
        covered = np.concatenate(members) if members else np.asarray([], dtype=np.int64)
        if len(covered) != self.num_objects or len(np.unique(covered)) != self.num_objects:
            raise ValueError("pruning regions must cover every database row exactly once")
        blocks = [np.ascontiguousarray(self.data[index]) for index in members]
        sizes = np.asarray([len(index) for index in members], dtype=np.int64)
        return centers, radii, blocks, sizes

    def _pruned_counts(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Exact counts via ball bounds; borderline regions scanned exactly.

        The margin absorbs floating-point error in the computed bounds:
        regions decided by a bound would also be decided by the exact
        kernel, so pruned and unpruned counts are identical integers.
        """
        centers, radii, blocks, sizes = self._regions
        center_sq = np.einsum("ij,ij->i", centers, centers)
        gram = _matmul(queries, centers.T)
        q_sq = np.einsum("ij,ij->i", queries, queries)
        center_distances = np.sqrt(
            np.maximum(q_sq[:, None] + center_sq[None, :] - 2.0 * gram, 0.0)
        )
        margin = 1e-9 * (1.0 + np.abs(thresholds))[:, None]
        all_in = center_distances + radii[None, :] <= thresholds[:, None] - margin
        all_out = center_distances - radii[None, :] > thresholds[:, None] + margin
        counts = (all_in * sizes[None, :]).sum(axis=1).astype(np.int64)
        scan = ~(all_in | all_out)
        for r in np.nonzero(scan.any(axis=0))[0]:
            block = blocks[r]
            if len(block) == 0:
                continue
            rows = np.nonzero(scan[:, r])[0]
            sub = np.ascontiguousarray(queries[rows])
            gram_r = _matmul(sub, block.T)
            sub_sq = np.einsum("ij,ij->i", sub, sub)
            block_sq = np.einsum("ij,ij->i", block, block)
            tile = np.sqrt(np.maximum(sub_sq[:, None] + block_sq[None, :] - 2.0 * gram_r, 0.0))
            counts[rows] += np.count_nonzero(tile <= thresholds[rows, None], axis=1)
        return counts

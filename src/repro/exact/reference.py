"""Per-query reference oracle for the batched engine's parity gate.

:class:`ReferenceOracle` reproduces the *pre-batching* oracle algorithm —
one distance scan, one full ``O(n log n)`` sort and a ``searchsorted`` per
query — while computing each distance through the same GEMM formula as
:class:`~repro.exact.blocked.BlockedOracle` (one padded two-row matmul per
query).  Pinning the distance kernel makes the parity gate deterministic:
any integer mismatch indicts the batching machinery (blocking, threading,
pruning, delta composition), never BLAS summation-order noise at tie
thresholds.  It also serves as the honest per-query baseline arm of
``repro oracle-bench``, since its per-query cost matches what
``generate_workload`` and ``relabel_workload`` paid before this engine.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .blocked import BlockedOracle


class ReferenceOracle:
    """One-query-at-a-time oracle with engine-identical distances."""

    def __init__(self, data: np.ndarray, distance) -> None:
        self._engine = BlockedOracle(data, distance, num_workers=1)

    @property
    def num_objects(self) -> int:
        return self._engine.num_objects

    def sorted_distances_to(self, query: np.ndarray) -> np.ndarray:
        """All distances from one query, ascending (full sort, GEMM kernel)."""
        row = self._engine._fill_rows(self._engine._coerce_queries(query))
        return np.sort(row[0])

    def selectivities_batch(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Counts via one sort + ``searchsorted`` per query."""
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if len(queries) != len(thresholds):
            raise ValueError("queries and thresholds must be aligned")
        out = np.empty(thresholds.shape, dtype=np.int64)
        for i, query in enumerate(queries):
            profile = self.sorted_distances_to(query)
            out[i] = np.searchsorted(profile, thresholds[i], side="right")
        return out

    batch_selectivity = selectivities_batch

    def kth_distances(self, queries: np.ndarray, ks: Sequence[int]) -> np.ndarray:
        """0-based order statistics per query, from the fully sorted profile."""
        queries = np.asarray(queries, dtype=np.float64)
        ks = np.asarray(ks, dtype=np.int64)
        out = np.empty((len(queries), len(ks)), dtype=np.float64)
        for i, query in enumerate(queries):
            out[i] = self.sorted_distances_to(query)[ks]
        return out

    def threshold_profile(
        self, queries: np.ndarray, ranks: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query tie-robust thresholds and counts (full sorted profile)."""
        queries = np.asarray(queries, dtype=np.float64)
        ranks = np.asarray(ranks, dtype=np.int64)
        thresholds = np.empty((len(queries), len(ranks)), dtype=np.float64)
        counts = np.empty((len(queries), len(ranks)), dtype=np.int64)
        for i, query in enumerate(queries):
            profile = self.sorted_distances_to(query)
            thresholds[i] = self._engine.tie_robust_thresholds(profile[ranks - 1])
            counts[i] = np.searchsorted(profile, thresholds[i], side="right")
        return thresholds, counts


class LegacyOracle:
    """The seed repo's per-query oracle pipeline, kept as an update-replay
    reference.

    Distances come from ``DistanceFunction.query_to_data`` — one GEMV per
    query — exactly as the pre-engine ``SelectivityOracle`` computed them.
    GEMV output elements are independent per-row dot products, so a
    surviving row's distance is *bit-identical before and after other rows
    are deleted* — unlike GEMM tiles, whose panel layout shifts with the
    matrix shape.  That stability is what makes this pipeline the anchor
    for the ``DeltaOracle`` replay parity gate: both pipelines resolve a
    rank-threshold tie by construction, so their integer counts agree at
    every update step even though their float thresholds differ in ulps.
    """

    def __init__(self, data: np.ndarray, distance) -> None:
        from ..distances import DistanceFunction, get_distance

        self.data = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
        self.distance: DistanceFunction = (
            distance if isinstance(distance, DistanceFunction) else get_distance(distance)
        )

    @property
    def num_objects(self) -> int:
        return int(self.data.shape[0])

    def sorted_distances_to(self, query: np.ndarray) -> np.ndarray:
        return np.sort(self.distance(np.asarray(query, dtype=np.float64), self.data))

    def selectivities_batch(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Counts exactly as the seed computed them.

        1-D thresholds mirror the seed's ``batch_selectivity`` (one
        unsorted scan and a count per row); 2-D grids mirror the seed's
        workload-generation loop (one sort + ``searchsorted`` per query).
        """
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        out = np.empty(thresholds.shape, dtype=np.int64)
        if thresholds.ndim == 1:
            for i, query in enumerate(queries):
                distances = self.distance(query, self.data)
                out[i] = np.count_nonzero(distances <= thresholds[i])
            return out
        for i, query in enumerate(queries):
            profile = self.sorted_distances_to(query)
            out[i] = np.searchsorted(profile, thresholds[i], side="right")
        return out

    batch_selectivity = selectivities_batch

    def threshold_profile(
        self, queries: np.ndarray, ranks: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        queries = np.asarray(queries, dtype=np.float64)
        ranks = np.asarray(ranks, dtype=np.int64)
        thresholds = np.empty((len(queries), len(ranks)), dtype=np.float64)
        counts = np.empty((len(queries), len(ranks)), dtype=np.int64)
        for i, query in enumerate(queries):
            profile = self.sorted_distances_to(query)
            thresholds[i] = profile[ranks - 1]
            counts[i] = np.searchsorted(profile, thresholds[i], side="right")
        return thresholds, counts

"""Workload shaping: scenario-driven request-traffic generation.

See :class:`TrafficGenerator` for the entry point::

    from repro.workloads import TrafficGenerator

    generator = TrafficGenerator("zipfian", pool_size=len(thresholds), seed=0)
    for event in generator.batches(num_requests=2000, arrival_batch=32):
        ...
"""

from .traffic import (
    SCENARIOS,
    EstimateEvent,
    Scenario,
    TrafficEvent,
    TrafficGenerator,
    UpdateEvent,
    available_scenarios,
    make_scenario,
)

__all__ = [
    "Scenario",
    "SCENARIOS",
    "available_scenarios",
    "make_scenario",
    "TrafficGenerator",
    "TrafficEvent",
    "EstimateEvent",
    "UpdateEvent",
]

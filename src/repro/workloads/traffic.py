"""Scenario-driven request-traffic generation for serving benchmarks.

A serving benchmark is only as honest as its workload.  This module turns a
pool of labelled ``(query, threshold)`` rows into a *request stream* shaped
by a named :class:`Scenario`:

``uniform``
    Every pool row is equally likely — the cache-hostile baseline.
``zipfian``
    Row popularity follows a Zipf law over a seeded permutation of the pool
    (rank-``k`` probability proportional to ``1 / k**s``), the classic
    hot-key distribution of user-facing traffic.
``bursty``
    Zipfian popularity with a pulsing arrival process: bursts of oversized
    arrival batches separated by idle (empty) ticks, stressing queues and
    admission control rather than steady-state throughput.
``update-heavy``
    Zipfian reads interleaved with periodic data-update events (insert
    batches), the answering-queries-under-updates regime.
``drifting``
    A hot set that rotates through the pool over time, so yesterday's cached
    curves steadily stop paying off.

Streams are **deterministic per seed**: the generator owns a single
``numpy`` RNG and both :func:`repro.serving.run_serving_benchmark` and the
cluster benchmark replay identical event sequences for the same
``(scenario, pool size, seed)`` triple — which is what makes single-process
versus sharded throughput comparisons meaningful.

Events are pool-relative: :class:`EstimateEvent` carries *row indices* into
the caller's pool (the caller maps them to query/threshold arrays), and
:class:`UpdateEvent` carries freshly sampled insert vectors plus optional
delete indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class Scenario:
    """One named traffic shape (see the module docstring for the catalogue).

    Parameters
    ----------
    popularity:
        ``"uniform"``, ``"zipfian"`` or ``"hotset"`` row popularity.
    zipf_exponent:
        Skew ``s`` of the Zipf law (``popularity="zipfian"``); larger is
        more skewed.
    hot_fraction / hot_probability:
        With ``popularity="hotset"``, the share of the pool forming the hot
        window and the probability a request lands in it.
    drift_period:
        When positive, the hot window's start rotates through the pool every
        ``drift_period`` arrival batches (``popularity="hotset"`` only).
    burst_length / burst_idle / burst_multiplier:
        When ``burst_length > 0``, arrivals pulse: ``burst_length`` batches
        of ``burst_multiplier`` times the nominal arrival-batch size, then
        ``burst_idle`` empty ticks.
    update_every / update_inserts / update_deletes:
        When ``update_every > 0``, an :class:`UpdateEvent` with
        ``update_inserts`` sampled insert vectors (and ``update_deletes``
        delete indices) is emitted every ``update_every`` arrival batches.
    """

    name: str
    description: str = ""
    popularity: str = "uniform"
    zipf_exponent: float = 1.2
    hot_fraction: float = 0.1
    hot_probability: float = 0.7
    drift_period: int = 0
    burst_length: int = 0
    burst_idle: int = 2
    burst_multiplier: int = 4
    update_every: int = 0
    update_inserts: int = 8
    update_deletes: int = 0

    def with_overrides(self, **overrides) -> "Scenario":
        """A copy of this scenario with some fields replaced."""
        return replace(self, **overrides)


#: the built-in scenario catalogue, keyed by name
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="uniform",
            description="uniform row popularity (cache-hostile baseline)",
        ),
        Scenario(
            name="zipfian",
            description="Zipf hot keys over a seeded pool permutation",
            popularity="zipfian",
        ),
        Scenario(
            name="bursty",
            description="zipfian popularity with pulsed arrivals and idle ticks",
            popularity="zipfian",
            burst_length=4,
            burst_idle=2,
            burst_multiplier=4,
        ),
        Scenario(
            name="update-heavy",
            description="zipfian reads interleaved with periodic insert batches",
            popularity="zipfian",
            update_every=4,
            update_inserts=8,
        ),
        Scenario(
            name="drifting",
            description="a hot set that rotates through the pool over time",
            popularity="hotset",
            hot_fraction=0.1,
            hot_probability=0.8,
            drift_period=8,
        ),
    )
}


def available_scenarios() -> Tuple[str, ...]:
    """Names of the built-in traffic scenarios."""
    return tuple(sorted(SCENARIOS))


def make_scenario(scenario: Union[str, Scenario], **overrides) -> Scenario:
    """Resolve a scenario by name (with optional field overrides)."""
    if isinstance(scenario, Scenario):
        return scenario.with_overrides(**overrides) if overrides else scenario
    try:
        base = SCENARIOS[scenario]
    except KeyError:
        raise KeyError(
            f"unknown traffic scenario {scenario!r}; available: {available_scenarios()}"
        ) from None
    return base.with_overrides(**overrides) if overrides else base


@dataclass
class EstimateEvent:
    """One arrival batch of estimation requests (row indices into the pool)."""

    indices: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)


@dataclass
class UpdateEvent:
    """One data-update event: sampled insert vectors and/or delete indices."""

    inserts: Optional[np.ndarray] = None
    deletes: Optional[np.ndarray] = None

    def __len__(self) -> int:
        inserts = 0 if self.inserts is None else len(self.inserts)
        deletes = 0 if self.deletes is None else len(self.deletes)
        return inserts + deletes


TrafficEvent = Union[EstimateEvent, UpdateEvent]


class TrafficGenerator:
    """Deterministic event stream for one scenario over one request pool.

    Parameters
    ----------
    scenario:
        A :class:`Scenario` or the name of a built-in one.
    pool_size:
        Number of rows in the caller's ``(query, threshold)`` pool that
        :class:`EstimateEvent` indices refer to.
    seed:
        Seeds the single RNG that drives popularity sampling, pool
        permutation and update-vector synthesis.
    insert_dim:
        Dimensionality of sampled insert vectors; required when the scenario
        emits update events.
    insert_scale:
        Standard deviation of the sampled insert vectors.
    """

    def __init__(
        self,
        scenario: Union[str, Scenario],
        pool_size: int,
        seed: int = 0,
        insert_dim: Optional[int] = None,
        insert_scale: float = 1.0,
    ) -> None:
        self.scenario = make_scenario(scenario)
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if self.scenario.burst_length > 0 and self.scenario.burst_multiplier < 1:
            raise ValueError("burst_multiplier must be at least 1 for bursty scenarios")
        if self.scenario.update_every > 0 and insert_dim is None:
            raise ValueError(
                f"scenario {self.scenario.name!r} emits update events; pass insert_dim"
            )
        self.pool_size = int(pool_size)
        self.seed = int(seed)
        self.insert_dim = None if insert_dim is None else int(insert_dim)
        self.insert_scale = float(insert_scale)
        self._rng = np.random.default_rng(self.seed)
        # Zipf popularity is assigned over a seeded permutation so hot keys
        # are scattered through the pool instead of always being row 0..k.
        self._permutation = self._rng.permutation(self.pool_size)
        if self.scenario.popularity == "zipfian":
            ranks = np.arange(1, self.pool_size + 1, dtype=np.float64)
            weights = ranks ** (-float(self.scenario.zipf_exponent))
            self._zipf_cdf = np.cumsum(weights / weights.sum())
        else:
            self._zipf_cdf = None

    # ------------------------------------------------------------------ #
    def _sample_indices(self, size: int, batch_number: int) -> np.ndarray:
        scenario = self.scenario
        if size == 0:
            return np.empty(0, dtype=np.int64)
        if scenario.popularity == "uniform":
            return self._rng.integers(0, self.pool_size, size=size)
        if scenario.popularity == "zipfian":
            draws = np.searchsorted(self._zipf_cdf, self._rng.random(size))
            return self._permutation[np.minimum(draws, self.pool_size - 1)]
        if scenario.popularity == "hotset":
            hot_size = max(int(scenario.hot_fraction * self.pool_size), 1)
            if scenario.drift_period > 0:
                rotation = (batch_number // scenario.drift_period) * hot_size
            else:
                rotation = 0
            hot = self._rng.integers(0, hot_size, size=size)
            cold = self._rng.integers(0, self.pool_size, size=size)
            in_hot = self._rng.random(size) < scenario.hot_probability
            offsets = np.where(in_hot, (hot + rotation) % self.pool_size, cold)
            return self._permutation[offsets]
        raise ValueError(f"unknown popularity model {scenario.popularity!r}")

    def _make_update(self) -> UpdateEvent:
        scenario = self.scenario
        inserts = None
        if scenario.update_inserts > 0:
            inserts = self.insert_scale * self._rng.standard_normal(
                (scenario.update_inserts, self.insert_dim)
            )
        deletes = None
        if scenario.update_deletes > 0:
            deletes = self._rng.integers(0, self.pool_size, size=scenario.update_deletes)
        return UpdateEvent(inserts=inserts, deletes=deletes)

    # ------------------------------------------------------------------ #
    def batches(self, num_requests: int, arrival_batch: int) -> Iterator[TrafficEvent]:
        """Yield events until exactly ``num_requests`` estimate rows were emitted.

        Bursty scenarios modulate the per-tick batch size (including empty
        idle ticks, emitted as zero-length :class:`EstimateEvent`); all
        others emit steady ``arrival_batch``-sized batches.  Update events
        ride between arrival batches at the scenario's cadence.
        """
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if arrival_batch < 1:
            raise ValueError("arrival_batch must be at least 1")
        scenario = self.scenario
        emitted = 0
        batch_number = 0
        while emitted < num_requests:
            if scenario.update_every > 0 and batch_number > 0:
                if batch_number % scenario.update_every == 0:
                    yield self._make_update()
            if scenario.burst_length > 0:
                cycle = scenario.burst_length + scenario.burst_idle
                in_burst = (batch_number % cycle) < scenario.burst_length
                size = arrival_batch * scenario.burst_multiplier if in_burst else 0
            else:
                size = arrival_batch
            size = min(size, num_requests - emitted)
            yield EstimateEvent(indices=self._sample_indices(size, batch_number))
            emitted += size
            batch_number += 1

    def materialize(self, num_requests: int, arrival_batch: int) -> List[TrafficEvent]:
        """The full event list for one run (convenience for benchmarks)."""
        return list(self.batches(num_requests, arrival_batch))

"""Reproduction of the paper's figures (as numeric series, no plotting).

The environment has no plotting stack, so each ``figure*`` function returns
the series the figure plots (and a text rendering); the benchmark suite
prints them so the curves can be compared with the paper's figures.

* Figure 3 — a simplified DLN (calibrator + 2-vertex lattice) and the
  SelNet-style adaptive piece-wise linear fit on ``y = exp(t) / 10``,
  both with 8 control points.
* Figure 4 — learned control points of SelNet-ct vs SelNet-ad-ct for two
  random queries on fasttext-cos.
* Figure 5 — MSE / MAPE over a stream of 100 update operations with the
  incremental-learning procedure of Section 5.4.

Figures 4 and 5 are spec-driven: their dataset / workload / training stages
run through the pipeline (:mod:`repro.pipeline`), so with an artifact store
active the expensive stages are shared with the tables and across reruns.
Figure 5 additionally labels each update step **once** per operation —
every model tracking the stream reuses the same exact-relabeled
validation / train / test workloads instead of relabeling per model.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import (
    IncrementalConfig,
    IncrementalSelNet,
    PiecewiseLinearCurve,
    SelNetEstimator,
    fit_piecewise_linear_curve,
)
from ..data import generate_update_stream
from ..data.workload import Workload, WorkloadSplit, relabel_workload
from ..eval.registry import selnet_factory, selnet_train_spec
from ..pipeline import (
    ExperimentSpec,
    PipelineReport,
    PipelineRunner,
    TrainSpec,
    WorkloadSpec,
    resolve_store,
)
from .scale import SMALL, ExperimentScale


@dataclass
class FigureResult:
    """A reproduced figure: named numeric series plus a text rendering."""

    figure_id: str
    description: str
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    text: str = ""
    #: per-stage wall-clock / cache stats when the pipeline path ran
    pipeline_report: Optional[PipelineReport] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def _materialize_selnet_variants(
    name: str,
    setting: str,
    scale: ExperimentScale,
    variants: Sequence[str],
    seed: int,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> Tuple[WorkloadSplit, Dict[str, SelNetEstimator], Optional[PipelineReport]]:
    """Workload split + fitted SelNet variants through the pipeline.

    With a persistent store active the returned estimators are private
    copies — figures may mutate them (e.g. fine-tuning under updates)
    without corrupting the store's shared cached instances.  Without one,
    the runner's throwaway memory store is unreachable after this call, so
    the fresh estimators are returned as-is (no copy cost).
    """
    workload_spec = WorkloadSpec.for_setting(setting, scale, seed=seed)
    train_specs: Dict[str, TrainSpec] = {
        variant: selnet_train_spec(workload_spec, scale, variant, seed=seed)
        for variant in variants
    }
    # The workload is demanded explicitly (figures read the split, not just
    # the models), so warm-run dependency pruning cannot skip it.
    experiment = ExperimentSpec(
        name=name, extra_stages=(workload_spec,) + tuple(train_specs.values())
    )
    store = resolve_store()
    runner = PipelineRunner(
        store=store,
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    outcome = runner.run(experiment)
    split = outcome.values[workload_spec.spec_hash]
    materialize = copy.deepcopy if store is not None else (lambda estimator: estimator)
    estimators = {
        variant: materialize(outcome.value(spec).estimator)
        for variant, spec in train_specs.items()
    }
    return split, estimators, outcome.report


# ---------------------------------------------------------------------- #
# Figure 3: fitting y = exp(t) / 10 with 8 control points
# ---------------------------------------------------------------------- #
def figure3_dln_vs_selnet(
    num_control_points: int = 8,
    num_training_points: int = 80,
    t_range: Tuple[float, float] = (0.0, 10.0),
    seed: int = 0,
) -> FigureResult:
    """Figure 3: DLN-style vs SelNet-style piece-wise linear fit of exp(t)/10.

    The DLN calibrator places its control points at equally spaced thresholds
    (only the outputs are learned); the SelNet-style fit places control points
    adaptively where the function changes fastest.  The figure's message —
    adaptive placement approximates the exponential far better — is measured
    here as the MSE of each fit on a dense grid.  (Pure function of its
    arguments; nothing worth caching, so it stays off the pipeline.)
    """
    rng = np.random.default_rng(seed)
    low, high = t_range
    train_t = np.sort(rng.uniform(low, high, size=num_training_points))
    train_y = np.exp(train_t) / 10.0

    dln_style = fit_piecewise_linear_curve(train_t, train_y, num_control_points, adaptive=False)
    selnet_style = fit_piecewise_linear_curve(train_t, train_y, num_control_points, adaptive=True)

    grid = np.linspace(low, high, 400)
    truth = np.exp(grid) / 10.0
    dln_estimate = dln_style(grid)
    selnet_estimate = selnet_style(grid)
    dln_mse = float(np.mean((dln_estimate - truth) ** 2))
    selnet_mse = float(np.mean((selnet_estimate - truth) ** 2))

    lines = [
        "Figure 3: fitting y = exp(t)/10 with 8 control points",
        f"  equally spaced control points (DLN calibrator) : MSE = {dln_mse:.2f}",
        f"  adaptive control points (SelNet)               : MSE = {selnet_mse:.2f}",
        f"  improvement factor                             : {dln_mse / max(selnet_mse, 1e-12):.1f}x",
        f"  DLN knots    : {np.array2string(dln_style.tau, precision=2)}",
        f"  SelNet knots : {np.array2string(selnet_style.tau, precision=2)}",
    ]
    return FigureResult(
        figure_id="Figure 3",
        description="DLN vs SelNet control-point placement on y = exp(t)/10",
        series={
            "grid": grid,
            "ground_truth": truth,
            "dln_estimate": dln_estimate,
            "selnet_estimate": selnet_estimate,
            "dln_tau": dln_style.tau,
            "dln_p": dln_style.p,
            "selnet_tau": selnet_style.tau,
            "selnet_p": selnet_style.p,
        },
        text="\n".join(lines),
    )


# ---------------------------------------------------------------------- #
# Figure 4: learned control points for two queries
# ---------------------------------------------------------------------- #
def figure4_control_points(
    setting: str = "fasttext-cos",
    scale: ExperimentScale = SMALL,
    num_example_queries: int = 2,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> FigureResult:
    """Figure 4: control points of SelNet-ct vs SelNet-ad-ct for random queries.

    SelNet-ad-ct uses the same τ values for every query; SelNet-ct adapts
    them.  The result reports, per query, the learned knots and the MSE of
    each model's curve against the exact selectivity curve.
    """
    report: Optional[PipelineReport] = None
    if split is None:
        split, estimators, report = _materialize_selnet_variants(
            f"figure4-{setting}-{scale.name}",
            setting,
            scale,
            ("SelNet-ct", "SelNet-ad-ct"),
            seed,
            num_workers=num_workers,
            engine_options=engine_options,
            executor=executor,
        )
        ct = estimators["SelNet-ct"]
        ad_ct = estimators["SelNet-ad-ct"]
    else:
        ct = selnet_factory(scale, "SelNet-ct", seed=seed)().fit(split)
        ad_ct = selnet_factory(scale, "SelNet-ad-ct", seed=seed)().fit(split)

    rng = np.random.default_rng(seed)
    query_ids = np.unique(split.test.query_ids)
    chosen = rng.choice(query_ids, size=min(num_example_queries, len(query_ids)), replace=False)

    series: Dict[str, np.ndarray] = {}
    lines = [f"Figure 4: learned control points on {setting} [{scale.name} scale]"]
    tau_spreads = {"SelNet-ct": [], "SelNet-ad-ct": []}
    for position, query_id in enumerate(chosen, start=1):
        row = np.where(split.test.query_ids == query_id)[0][0]
        query = split.test.queries[row]
        thresholds = np.linspace(0.0, split.t_max, 120)
        truth = split.oracle.selectivities(query, thresholds).astype(np.float64)

        for model, estimator in (("SelNet-ct", ct), ("SelNet-ad-ct", ad_ct)):
            curve: PiecewiseLinearCurve = estimator.curve_for_query(query)
            estimate = estimator.selectivity_curve(query, thresholds)
            mse = float(np.mean((estimate - truth) ** 2))
            key = f"query{position}_{model}"
            series[f"{key}_tau"] = curve.tau
            series[f"{key}_p"] = curve.p
            series[f"{key}_estimate"] = estimate
            tau_spreads[model].append(curve.tau)
            lines.append(
                f"  query {position} {model:<13}: curve MSE = {mse:10.2f}, "
                f"tau = {np.array2string(curve.tau[:6], precision=3)}..."
            )
        series[f"query{position}_thresholds"] = thresholds
        series[f"query{position}_ground_truth"] = truth

    # The diagnostic the figure makes visually: ad-ct's tau is (near) identical
    # across queries while ct's varies per query.
    for model, taus in tau_spreads.items():
        if len(taus) >= 2:
            spread = float(np.mean(np.abs(taus[0] - taus[1])))
            lines.append(f"  mean |tau(query 1) - tau(query 2)| for {model}: {spread:.5f}")
            series[f"tau_spread_{model}"] = np.asarray([spread])
    return FigureResult(
        figure_id="Figure 4",
        description="Query-dependent vs query-independent control points",
        series=series,
        text="\n".join(lines),
        pipeline_report=report,
    )


# ---------------------------------------------------------------------- #
# Figure 5: accuracy over a stream of updates
# ---------------------------------------------------------------------- #
def figure5_updates(
    settings: Sequence[str] = ("face-cos", "fasttext-cos"),
    scale: ExperimentScale = SMALL,
    num_operations: int = 20,
    records_per_operation: int = 5,
    mae_drift_threshold: float = 2.0,
    models: Sequence[str] = ("SelNet-ct",),
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> FigureResult:
    """Figure 5: MSE and MAPE on the test set across a stream of updates.

    The paper applies 100 operations of 5 records each; the default here is a
    shorter stream (scaled with everything else) — pass ``num_operations=100``
    to match the paper exactly.

    ``models`` selects the SelNet variants tracking the stream.  However many
    there are, every update step relabels the validation / train / test
    workloads exactly **once** against one shared incremental oracle; all
    models consume the same refreshed labels (they are exact counts — no
    model could see anything different).
    """
    series: Dict[str, np.ndarray] = {}
    lines = [f"Figure 5: accuracy under data updates [{scale.name} scale]"]
    reports: List[Optional[PipelineReport]] = []
    for setting in settings:
        split, estimators, setting_report = _materialize_selnet_variants(
            f"figure5-{setting}-{scale.name}",
            setting,
            scale,
            tuple(models),
            seed,
            num_workers=num_workers,
            engine_options=engine_options,
            executor=executor,
        )
        reports.append(setting_report)
        from ..exact import DeltaOracle

        incrementals: Dict[str, IncrementalSelNet] = {
            model: IncrementalSelNet(
                estimator=estimators[model],
                data=split.dataset.vectors,
                distance=split.distance,
                train=split.train,
                validation=split.validation,
                config=IncrementalConfig(
                    mae_drift_threshold=mae_drift_threshold,
                    max_epochs=max(scale.selnet_epochs // 4, 3),
                ),
            )
            for model in models
        }
        operations = generate_update_stream(
            split.dataset.vectors,
            num_operations=num_operations,
            records_per_operation=records_per_operation,
            seed=seed,
        )
        mse_series: Dict[str, List[float]] = {model: [] for model in models}
        mape_series: Dict[str, List[float]] = {model: [] for model in models}
        retrain_counts: Dict[str, int] = {model: 0 for model in models}

        # One incremental oracle labels each step of the stream exactly once
        # for every model: base counts are computed once, each step scans
        # only the rows the operation touched (exact parity with a full
        # rebuild), and validation / train / test refreshes are shared.
        shared_oracle = DeltaOracle(split.dataset.vectors, split.distance)
        validation_rows = split.validation
        train_rows = split.train
        test = split.test
        from ..eval.metrics import compute_error_metrics

        for operation in operations:
            shared_oracle.apply(operation)
            validation = relabel_workload(validation_rows, shared_oracle)
            train_supplier = _once(lambda: relabel_workload(train_rows, shared_oracle))
            for model in models:
                report = incrementals[model].apply_operation(
                    operation, validation=validation, train=train_supplier
                )
                retrain_counts[model] += int(report.retrained)
            test = relabel_workload(test, shared_oracle)
            for model in models:
                estimates = incrementals[model].estimate(test.queries, test.thresholds)
                metrics = compute_error_metrics(estimates, test.selectivities)
                mse_series[model].append(metrics.mse)
                mape_series[model].append(metrics.mape)

        for model in models:
            prefix = setting if len(models) == 1 else f"{setting}_{model}"
            series[f"{prefix}_mse"] = np.asarray(mse_series[model])
            series[f"{prefix}_mape"] = np.asarray(mape_series[model])
            label = setting if len(models) == 1 else f"{setting} {model}"
            lines.append(
                f"  {label}: MSE start {mse_series[model][0]:.2f} end {mse_series[model][-1]:.2f}, "
                f"MAPE start {mape_series[model][0]:.3f} end {mape_series[model][-1]:.3f}, "
                f"retrained {retrain_counts[model]}/{num_operations} operations"
            )
    return FigureResult(
        figure_id="Figure 5",
        description="Accuracy across a stream of insert/delete operations",
        series=series,
        text="\n".join(lines),
        pipeline_report=PipelineReport.merged(f"figure5-{scale.name}", reports),
    )


def _once(compute: Callable[[], Workload]) -> Callable[[], Workload]:
    """Memoize a zero-argument workload computation (shared across models)."""
    cache: List[Workload] = []

    def supply() -> Workload:
        if not cache:
            cache.append(compute())
        return cache[0]

    return supply

"""Reproduction of every table in the paper's evaluation section.

Each ``run_*`` function regenerates one table of Section 7 and returns both
the structured results and a formatted text rendering.  The benchmark suite
wraps these functions; the EXPERIMENTS.md document records paper-vs-measured
values produced by them.

Scale note: the functions accept an :class:`ExperimentScale`; absolute error
values differ from the paper (synthetic data, smaller models), but the
qualitative findings — who wins, the value of partitioning and
query-dependent control points, 100 % monotonicity of the starred models —
are what these reproductions check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import SelNetConfig, SelNetEstimator
from ..data.workload import WorkloadSplit
from ..eval.harness import (
    EvaluationResult,
    SettingEvaluation,
    build_setting_split,
    evaluate_estimator,
    run_setting,
)
from ..eval.registry import ABLATION_MODEL_ORDER, PAPER_MODEL_ORDER, selnet_factory
from ..eval.reporting import (
    format_accuracy_table,
    format_monotonicity_table,
    format_sweep_table,
    format_timing_table,
)
from .scale import PAPER_SETTINGS, SMALL, ExperimentScale


@dataclass
class TableResult:
    """A reproduced table: structured rows plus the formatted rendering."""

    table_id: str
    description: str
    text: str
    rows: List[Dict[str, float]] = field(default_factory=list)
    evaluation: Optional[SettingEvaluation] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


# ---------------------------------------------------------------------- #
# Tables 1-4 and 11: accuracy comparisons
# ---------------------------------------------------------------------- #
_SETTING_TABLE_IDS = {
    "fasttext-cos": "Table 1",
    "fasttext-l2": "Table 2",
    "face-cos": "Table 3",
    "youtube-cos": "Table 4",
}


def run_accuracy_table(
    setting: str = "fasttext-cos",
    scale: ExperimentScale = SMALL,
    models: Optional[Sequence[str]] = None,
    threshold_distribution: str = "geometric",
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
) -> TableResult:
    """Tables 1-4 (geometric thresholds) and Table 11 (beta thresholds).

    Compares every model of the paper on one dataset / distance setting and
    reports MSE / MAE / MAPE on the validation and test splits.
    """
    if models is None:
        models = PAPER_MODEL_ORDER
    evaluation = run_setting(
        setting,
        scale,
        models=models,
        threshold_distribution=threshold_distribution,
        split=split,
        seed=seed,
    )
    if threshold_distribution == "beta":
        table_id = "Table 11"
        description = f"Accuracy on {setting} with Beta(3, 2.5) thresholds"
    else:
        table_id = _SETTING_TABLE_IDS.get(setting, "Table 1")
        description = f"Accuracy on {setting}"
    text = format_accuracy_table(evaluation, title=f"{table_id}: {description} [{scale.name} scale]")
    return TableResult(
        table_id=table_id,
        description=description,
        text=text,
        rows=[result.as_row() for result in evaluation.results],
        evaluation=evaluation,
    )


# ---------------------------------------------------------------------- #
# Table 5: empirical monotonicity
# ---------------------------------------------------------------------- #
def run_monotonicity_table(
    setting: str = "face-cos",
    scale: ExperimentScale = SMALL,
    models: Optional[Sequence[str]] = None,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
) -> TableResult:
    """Table 5: empirical monotonicity (%) of every model on face-cos."""
    if models is None:
        models = PAPER_MODEL_ORDER
    evaluation = run_setting(
        setting,
        scale,
        models=models,
        measure_monotonicity=True,
        split=split,
        seed=seed,
    )
    text = format_monotonicity_table(
        evaluation, title=f"Table 5: empirical monotonicity on {setting} [{scale.name} scale]"
    )
    return TableResult(
        table_id="Table 5",
        description=f"Empirical monotonicity on {setting}",
        text=text,
        rows=[result.as_row() for result in evaluation.results],
        evaluation=evaluation,
    )


# ---------------------------------------------------------------------- #
# Table 6: ablation study
# ---------------------------------------------------------------------- #
def run_ablation_table(
    settings: Sequence[str] = PAPER_SETTINGS,
    scale: ExperimentScale = SMALL,
    seed: int = 0,
) -> TableResult:
    """Table 6: SelNet vs SelNet-ct vs SelNet-ad-ct on every setting."""
    rows: List[Dict[str, float]] = []
    lines: List[str] = [f"Table 6: ablation study [{scale.name} scale]"]
    header = f"{'Setting':<14} {'Model':<14} {'MSE':>12} {'MAE':>12} {'MAPE':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for setting in settings:
        split = build_setting_split(setting, scale, seed=seed)
        for variant in ABLATION_MODEL_ORDER:
            estimator = selnet_factory(scale, variant, seed=seed)()
            result = evaluate_estimator(estimator, split, seed=seed)
            row = result.as_row()
            row["setting"] = setting
            rows.append(row)
            lines.append(
                f"{setting:<14} {variant:<14} "
                f"{result.test_metrics.mse:>12.2f} {result.test_metrics.mae:>12.2f} "
                f"{result.test_metrics.mape:>12.3f}"
            )
    return TableResult(
        table_id="Table 6",
        description="Ablation study (partitioning, query-dependent control points)",
        text="\n".join(lines),
        rows=rows,
    )


# ---------------------------------------------------------------------- #
# Table 7: estimation time
# ---------------------------------------------------------------------- #
def run_timing_table(
    settings: Sequence[str] = PAPER_SETTINGS,
    scale: ExperimentScale = SMALL,
    models: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> TableResult:
    """Table 7: average estimation time (ms per query) per model and setting."""
    if models is None:
        models = tuple(PAPER_MODEL_ORDER) + ("SelNet-ct", "SelNet-ad-ct")
    evaluations: Dict[str, SettingEvaluation] = {}
    for setting in settings:
        evaluations[setting] = run_setting(setting, scale, models=models, seed=seed)
    text = format_timing_table(
        evaluations, title=f"Table 7: average estimation time (ms) [{scale.name} scale]"
    )
    rows: List[Dict[str, float]] = []
    for setting, evaluation in evaluations.items():
        for result in evaluation.results:
            row = result.as_row()
            row["setting"] = setting
            rows.append(row)
    return TableResult(
        table_id="Table 7",
        description="Average estimation time (milliseconds per query)",
        text=text,
        rows=rows,
    )


# ---------------------------------------------------------------------- #
# Table 8: number of control points
# ---------------------------------------------------------------------- #
def run_control_point_sweep(
    setting: str = "fasttext-l2",
    control_points: Sequence[int] = (4, 8, 16, 32),
    scale: ExperimentScale = SMALL,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
) -> TableResult:
    """Table 8: validation errors as the number of control points L varies.

    The paper sweeps L in {10, 50, 90, 130} at its scale; the values here are
    scaled to the smaller synthetic workload but keep the too-few /
    about-right / too-many progression.
    """
    if split is None:
        split = build_setting_split(setting, scale, seed=seed)
    rows: List[Dict[str, float]] = []
    for num_points in control_points:
        estimator = SelNetEstimator(
            scale.selnet_config(num_control_points=num_points, num_partitions=1, seed=seed),
            name=f"SelNet-ct(L={num_points})",
        )
        result = evaluate_estimator(estimator, split, seed=seed)
        rows.append(
            {
                "control_points": num_points,
                "mse": result.validation_metrics.mse,
                "mae": result.validation_metrics.mae,
                "mape": result.validation_metrics.mape,
            }
        )
    text = format_sweep_table(
        rows,
        parameter_name="control_points",
        title=f"Table 8: errors vs number of control points on {setting} [{scale.name} scale]",
    )
    return TableResult(
        table_id="Table 8",
        description=f"Errors vs number of control points on {setting}",
        text=text,
        rows=rows,
    )


# ---------------------------------------------------------------------- #
# Table 9: partition size
# ---------------------------------------------------------------------- #
def run_partition_size_sweep(
    setting: str = "fasttext-l2",
    partition_sizes: Sequence[int] = (1, 3, 6),
    scale: ExperimentScale = SMALL,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
) -> TableResult:
    """Table 9: errors and estimation time as the partition count K varies."""
    if split is None:
        split = build_setting_split(setting, scale, seed=seed)
    rows: List[Dict[str, float]] = []
    for num_partitions in partition_sizes:
        estimator = SelNetEstimator(
            scale.selnet_config(num_partitions=num_partitions, seed=seed),
            name=f"SelNet(K={num_partitions})",
        )
        result = evaluate_estimator(estimator, split, seed=seed)
        rows.append(
            {
                "partitions": num_partitions,
                "mse": result.validation_metrics.mse,
                "mae": result.validation_metrics.mae,
                "mape": result.validation_metrics.mape,
                "estimation_ms": result.estimation_milliseconds,
            }
        )
    text = format_sweep_table(
        rows,
        parameter_name="partitions",
        metric_names=("mse", "mae", "mape", "estimation_ms"),
        title=f"Table 9: errors vs partition size on {setting} [{scale.name} scale]",
    )
    return TableResult(
        table_id="Table 9",
        description=f"Errors vs partition size on {setting}",
        text=text,
        rows=rows,
    )


# ---------------------------------------------------------------------- #
# Table 10: partitioning methods
# ---------------------------------------------------------------------- #
def run_partition_method_table(
    setting: str = "fasttext-l2",
    methods: Sequence[str] = ("ct", "rp", "km"),
    num_partitions: int = 3,
    scale: ExperimentScale = SMALL,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
) -> TableResult:
    """Table 10: cover-tree vs random vs k-means partitioning."""
    if split is None:
        split = build_setting_split(setting, scale, seed=seed)
    rows: List[Dict[str, float]] = []
    for method in methods:
        estimator = SelNetEstimator(
            scale.selnet_config(
                num_partitions=num_partitions, partition_method=method, seed=seed
            ),
            name=f"SelNet({method.upper()}, K={num_partitions})",
        )
        result = evaluate_estimator(estimator, split, seed=seed)
        rows.append(
            {
                "method": method.upper(),
                "mse": result.test_metrics.mse,
                "mae": result.test_metrics.mae,
                "mape": result.test_metrics.mape,
            }
        )
    text = format_sweep_table(
        rows,
        parameter_name="method",
        title=f"Table 10: errors vs partitioning method on {setting} [{scale.name} scale]",
    )
    return TableResult(
        table_id="Table 10",
        description=f"Errors vs partitioning method on {setting}",
        text=text,
        rows=rows,
    )

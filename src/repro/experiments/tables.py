"""Reproduction of every table in the paper's evaluation section.

Each ``run_*`` function regenerates one table of Section 7 and returns both
the structured results and a formatted text rendering.  The benchmark suite
wraps these functions; the EXPERIMENTS.md document records paper-vs-measured
values produced by them.

Every table is **spec-driven**: the function assembles a
:class:`repro.pipeline.ExperimentSpec` (workload specs shared across model
stages, one ``TrainSpec``/``EvalSpec`` pair per table row) and executes it
through a :class:`repro.pipeline.PipelineRunner`.  With an artifact store
active (``repro run`` / ``repro table`` on the CLI, or
:func:`repro.pipeline.use_store` in code) each stage is memoized under its
content hash: rerunning a table is a pure cache replay, and tables sharing
a workload (e.g. Tables 2, 8, 9, 10 on fasttext-l2) label it exactly once.
Passing a pre-built ``split`` falls back to the direct path.

Scale note: the functions accept an :class:`ExperimentScale`; absolute error
values differ from the paper (synthetic data, smaller models), but the
qualitative findings — who wins, the value of partitioning and
query-dependent control points, 100 % monotonicity of the starred models —
are what these reproductions check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import SelNetEstimator
from ..data.workload import WorkloadSplit
from ..eval.harness import (
    EvaluationResult,
    SettingEvaluation,
    evaluate_estimator,
    run_setting,
)
from ..eval.registry import (
    ABLATION_MODEL_ORDER,
    PAPER_MODEL_ORDER,
    selnet_train_spec,
    train_specs_for_models,
)
from ..eval.reporting import (
    format_accuracy_table,
    format_monotonicity_table,
    format_sweep_table,
    format_timing_table,
)
from ..pipeline import (
    EvalSpec,
    ExperimentSpec,
    PipelineReport,
    PipelineRunner,
    TrainSpec,
    WorkloadSpec,
    resolve_store,
)
from .scale import PAPER_SETTINGS, SMALL, ExperimentScale


@dataclass
class TableResult:
    """A reproduced table: structured rows plus the formatted rendering."""

    table_id: str
    description: str
    text: str
    rows: List[Dict[str, float]] = field(default_factory=list)
    evaluation: Optional[SettingEvaluation] = None
    #: per-stage wall-clock / cache stats when the pipeline path ran
    pipeline_report: Optional[PipelineReport] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def _run_eval_specs(
    name: str,
    eval_specs: Sequence[EvalSpec],
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> Tuple[Dict[str, EvaluationResult], PipelineReport]:
    """Execute eval stages as one DAG; returns results by eval hash + report."""
    experiment = ExperimentSpec(name=name, evals=tuple(eval_specs))
    runner = PipelineRunner(
        store=resolve_store(),
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    outcome = runner.run(experiment)
    return {spec.spec_hash: outcome.value(spec) for spec in eval_specs}, outcome.report


# ---------------------------------------------------------------------- #
# Tables 1-4 and 11: accuracy comparisons
# ---------------------------------------------------------------------- #
_SETTING_TABLE_IDS = {
    "fasttext-cos": "Table 1",
    "fasttext-l2": "Table 2",
    "face-cos": "Table 3",
    "youtube-cos": "Table 4",
}


def run_accuracy_table(
    setting: str = "fasttext-cos",
    scale: ExperimentScale = SMALL,
    models: Optional[Sequence[str]] = None,
    threshold_distribution: str = "geometric",
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> TableResult:
    """Tables 1-4 (geometric thresholds) and Table 11 (beta thresholds).

    Compares every model of the paper on one dataset / distance setting and
    reports MSE / MAE / MAPE on the validation and test splits.
    """
    if models is None:
        models = PAPER_MODEL_ORDER
    evaluation = run_setting(
        setting,
        scale,
        models=models,
        threshold_distribution=threshold_distribution,
        split=split,
        seed=seed,
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    if threshold_distribution == "beta":
        table_id = "Table 11"
        description = f"Accuracy on {setting} with Beta(3, 2.5) thresholds"
    else:
        table_id = _SETTING_TABLE_IDS.get(setting, "Table 1")
        description = f"Accuracy on {setting}"
    text = format_accuracy_table(evaluation, title=f"{table_id}: {description} [{scale.name} scale]")
    return TableResult(
        table_id=table_id,
        description=description,
        text=text,
        rows=[result.as_row() for result in evaluation.results],
        evaluation=evaluation,
        pipeline_report=evaluation.pipeline_report,
    )


# ---------------------------------------------------------------------- #
# Table 5: empirical monotonicity
# ---------------------------------------------------------------------- #
def run_monotonicity_table(
    setting: str = "face-cos",
    scale: ExperimentScale = SMALL,
    models: Optional[Sequence[str]] = None,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> TableResult:
    """Table 5: empirical monotonicity (%) of every model on face-cos."""
    if models is None:
        models = PAPER_MODEL_ORDER
    evaluation = run_setting(
        setting,
        scale,
        models=models,
        measure_monotonicity=True,
        split=split,
        seed=seed,
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    text = format_monotonicity_table(
        evaluation, title=f"Table 5: empirical monotonicity on {setting} [{scale.name} scale]"
    )
    return TableResult(
        table_id="Table 5",
        description=f"Empirical monotonicity on {setting}",
        text=text,
        rows=[result.as_row() for result in evaluation.results],
        evaluation=evaluation,
        pipeline_report=evaluation.pipeline_report,
    )


# ---------------------------------------------------------------------- #
# Table 6: ablation study
# ---------------------------------------------------------------------- #
def run_ablation_table(
    settings: Sequence[str] = PAPER_SETTINGS,
    scale: ExperimentScale = SMALL,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> TableResult:
    """Table 6: SelNet vs SelNet-ct vs SelNet-ad-ct on every setting.

    All ``settings x variants`` stages form one DAG, so the per-setting
    branches (and the three variant fits within each) are independent
    pipeline stages sharing one labeled workload per setting.
    """
    keyed: List[Tuple[str, str, EvalSpec]] = []
    for setting in settings:
        workload = WorkloadSpec.for_setting(setting, scale, seed=seed)
        for variant in ABLATION_MODEL_ORDER:
            train = selnet_train_spec(workload, scale, variant, seed=seed)
            keyed.append((setting, variant, EvalSpec(train=train, seed=seed)))

    results, report = _run_eval_specs(
        f"table6-ablation-{scale.name}",
        [spec for _, _, spec in keyed],
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )

    rows: List[Dict[str, float]] = []
    lines: List[str] = [f"Table 6: ablation study [{scale.name} scale]"]
    header = f"{'Setting':<14} {'Model':<14} {'MSE':>12} {'MAE':>12} {'MAPE':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for setting, variant, spec in keyed:
        result = results[spec.spec_hash]
        row = result.as_row()
        row["setting"] = setting
        rows.append(row)
        lines.append(
            f"{setting:<14} {variant:<14} "
            f"{result.test_metrics.mse:>12.2f} {result.test_metrics.mae:>12.2f} "
            f"{result.test_metrics.mape:>12.3f}"
        )
    return TableResult(
        table_id="Table 6",
        description="Ablation study (partitioning, query-dependent control points)",
        text="\n".join(lines),
        rows=rows,
        pipeline_report=report,
    )


# ---------------------------------------------------------------------- #
# Table 7: estimation time
# ---------------------------------------------------------------------- #
def run_timing_table(
    settings: Sequence[str] = PAPER_SETTINGS,
    scale: ExperimentScale = SMALL,
    models: Optional[Sequence[str]] = None,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> TableResult:
    """Table 7: average estimation time (ms per query) per model and setting.

    Like Table 6, all ``settings x models`` stages form **one** DAG: on a
    cold run the training branches of different settings overlap on the
    pool, while the timing-sensitive evaluations still run exclusively.
    """
    if models is None:
        models = tuple(PAPER_MODEL_ORDER) + ("SelNet-ct", "SelNet-ad-ct")
    keyed: List[Tuple[str, List[EvalSpec]]] = []
    for setting in settings:
        workload = WorkloadSpec.for_setting(setting, scale, seed=seed)
        train_specs = train_specs_for_models(scale, workload, include=models, seed=seed)
        keyed.append(
            (setting, [EvalSpec(train=spec, seed=seed) for spec in train_specs.values()])
        )

    results, report = _run_eval_specs(
        f"table7-timing-{scale.name}",
        [spec for _, setting_specs in keyed for spec in setting_specs],
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    evaluations: Dict[str, SettingEvaluation] = {
        setting: SettingEvaluation(
            setting=setting,
            results=[results[spec.spec_hash] for spec in setting_specs],
        )
        for setting, setting_specs in keyed
    }
    text = format_timing_table(
        evaluations, title=f"Table 7: average estimation time (ms) [{scale.name} scale]"
    )
    rows: List[Dict[str, float]] = []
    for setting, evaluation in evaluations.items():
        for result in evaluation.results:
            row = result.as_row()
            row["setting"] = setting
            rows.append(row)
    return TableResult(
        table_id="Table 7",
        description="Average estimation time (milliseconds per query)",
        text=text,
        rows=rows,
        pipeline_report=report,
    )


# ---------------------------------------------------------------------- #
# Tables 8-10: SelNet hyper-parameter sweeps (shared machinery)
# ---------------------------------------------------------------------- #
def _run_selnet_sweep(
    name: str,
    setting: str,
    scale: ExperimentScale,
    arms: Sequence[Tuple[str, Dict]],
    split: Optional[WorkloadSplit],
    seed: int,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> Tuple[List[EvaluationResult], Optional[PipelineReport]]:
    """Evaluate SelNet variants (``(display_name, config_overrides)`` arms)
    on one setting's workload; spec-driven unless a split is supplied."""
    if split is not None:
        results = []
        for display_name, overrides in arms:
            estimator = SelNetEstimator(
                scale.selnet_config(seed=seed, **overrides), name=display_name
            )
            results.append(evaluate_estimator(estimator, split, seed=seed))
        return results, None

    workload = WorkloadSpec.for_setting(setting, scale, seed=seed)
    eval_specs = []
    for display_name, overrides in arms:
        # Same param-assembly as every other SelNet stage (the registry's
        # single source) so sweep arms and Tables 6/7 can never drift apart.
        train = selnet_train_spec(
            workload, scale, "SelNet", seed=seed, display_name=display_name, **overrides
        )
        eval_specs.append(EvalSpec(train=train, seed=seed))
    results_by_hash, report = _run_eval_specs(
        name,
        eval_specs,
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    return [results_by_hash[spec.spec_hash] for spec in eval_specs], report


# ---------------------------------------------------------------------- #
# Table 8: number of control points
# ---------------------------------------------------------------------- #
def run_control_point_sweep(
    setting: str = "fasttext-l2",
    control_points: Sequence[int] = (4, 8, 16, 32),
    scale: ExperimentScale = SMALL,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> TableResult:
    """Table 8: validation errors as the number of control points L varies.

    The paper sweeps L in {10, 50, 90, 130} at its scale; the values here are
    scaled to the smaller synthetic workload but keep the too-few /
    about-right / too-many progression.
    """
    arms = [
        (
            f"SelNet-ct(L={num_points})",
            dict(num_control_points=num_points, num_partitions=1),
        )
        for num_points in control_points
    ]
    results, report = _run_selnet_sweep(
        f"table8-control-points-{setting}-{scale.name}",
        setting,
        scale,
        arms,
        split,
        seed,
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    rows: List[Dict[str, float]] = [
        {
            "control_points": num_points,
            "mse": result.validation_metrics.mse,
            "mae": result.validation_metrics.mae,
            "mape": result.validation_metrics.mape,
        }
        for num_points, result in zip(control_points, results)
    ]
    text = format_sweep_table(
        rows,
        parameter_name="control_points",
        title=f"Table 8: errors vs number of control points on {setting} [{scale.name} scale]",
    )
    return TableResult(
        table_id="Table 8",
        description=f"Errors vs number of control points on {setting}",
        text=text,
        rows=rows,
        pipeline_report=report,
    )


# ---------------------------------------------------------------------- #
# Table 9: partition size
# ---------------------------------------------------------------------- #
def run_partition_size_sweep(
    setting: str = "fasttext-l2",
    partition_sizes: Sequence[int] = (1, 3, 6),
    scale: ExperimentScale = SMALL,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> TableResult:
    """Table 9: errors and estimation time as the partition count K varies."""
    arms = [
        (f"SelNet(K={num_partitions})", dict(num_partitions=num_partitions))
        for num_partitions in partition_sizes
    ]
    results, report = _run_selnet_sweep(
        f"table9-partition-size-{setting}-{scale.name}",
        setting,
        scale,
        arms,
        split,
        seed,
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    rows: List[Dict[str, float]] = [
        {
            "partitions": num_partitions,
            "mse": result.validation_metrics.mse,
            "mae": result.validation_metrics.mae,
            "mape": result.validation_metrics.mape,
            "estimation_ms": result.estimation_milliseconds,
        }
        for num_partitions, result in zip(partition_sizes, results)
    ]
    text = format_sweep_table(
        rows,
        parameter_name="partitions",
        metric_names=("mse", "mae", "mape", "estimation_ms"),
        title=f"Table 9: errors vs partition size on {setting} [{scale.name} scale]",
    )
    return TableResult(
        table_id="Table 9",
        description=f"Errors vs partition size on {setting}",
        text=text,
        rows=rows,
        pipeline_report=report,
    )


# ---------------------------------------------------------------------- #
# Table 10: partitioning methods
# ---------------------------------------------------------------------- #
def run_partition_method_table(
    setting: str = "fasttext-l2",
    methods: Sequence[str] = ("ct", "rp", "km"),
    num_partitions: int = 3,
    scale: ExperimentScale = SMALL,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> TableResult:
    """Table 10: cover-tree vs random vs k-means partitioning."""
    arms = [
        (
            f"SelNet({method.upper()}, K={num_partitions})",
            dict(num_partitions=num_partitions, partition_method=method),
        )
        for method in methods
    ]
    results, report = _run_selnet_sweep(
        f"table10-partition-methods-{setting}-{scale.name}",
        setting,
        scale,
        arms,
        split,
        seed,
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    rows: List[Dict[str, float]] = [
        {
            "method": method.upper(),
            "mse": result.test_metrics.mse,
            "mae": result.test_metrics.mae,
            "mape": result.test_metrics.mape,
        }
        for method, result in zip(methods, results)
    ]
    text = format_sweep_table(
        rows,
        parameter_name="method",
        title=f"Table 10: errors vs partitioning method on {setting} [{scale.name} scale]",
    )
    return TableResult(
        table_id="Table 10",
        description=f"Errors vs partitioning method on {setting}",
        text=text,
        rows=rows,
        pipeline_report=report,
    )

"""Per-table / per-figure experiment reproductions.

The table / figure drivers depend on :mod:`repro.eval`, which itself uses the
scale profiles defined here; to keep the import graph acyclic the drivers are
loaded lazily via module ``__getattr__`` (PEP 562) while the scale profiles
are imported eagerly.
"""

from .scale import (
    MEDIUM,
    PAPER_SETTINGS,
    SMALL,
    TINY,
    ExperimentScale,
    get_scale,
    make_scaled_dataset,
    setting_distance,
)

__all__ = [
    "ExperimentScale",
    "TINY",
    "SMALL",
    "MEDIUM",
    "get_scale",
    "make_scaled_dataset",
    "setting_distance",
    "PAPER_SETTINGS",
    "TableResult",
    "run_accuracy_table",
    "run_monotonicity_table",
    "run_ablation_table",
    "run_timing_table",
    "run_control_point_sweep",
    "run_partition_size_sweep",
    "run_partition_method_table",
    "FigureResult",
    "figure3_dln_vs_selnet",
    "figure4_control_points",
    "figure5_updates",
    "SweepResult",
    "run_scale_sweep",
    "run_seed_variance",
    "scaled_replica",
]

_TABLE_EXPORTS = {
    "TableResult",
    "run_accuracy_table",
    "run_monotonicity_table",
    "run_ablation_table",
    "run_timing_table",
    "run_control_point_sweep",
    "run_partition_size_sweep",
    "run_partition_method_table",
}
_FIGURE_EXPORTS = {
    "FigureResult",
    "figure3_dln_vs_selnet",
    "figure4_control_points",
    "figure5_updates",
}
_SWEEP_EXPORTS = {
    "SweepResult",
    "run_scale_sweep",
    "run_seed_variance",
    "scaled_replica",
}


def __getattr__(name: str):
    if name in _TABLE_EXPORTS:
        from . import tables

        return getattr(tables, name)
    if name in _FIGURE_EXPORTS:
        from . import figures

        return getattr(figures, name)
    if name in _SWEEP_EXPORTS:
        from . import sweeps

        return getattr(sweeps, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Experiment scaling profiles.

The paper's experiments run on 0.35M–2M vectors with 0.25M training queries
and 1500 training epochs on a GPU-class server.  The reproduction runs on
pure numpy, so every experiment accepts an :class:`ExperimentScale` that
shrinks the dataset, the workload and the training budget while keeping the
workload *shape* (geometric selectivity targets up to |D|/100, 80/10/10
query split, same model families) intact.

Three profiles are provided:

* ``tiny``  — seconds per experiment; used by the integration tests.
* ``small`` — the default for the benchmark suite; a full table reproduces
  in a few minutes.
* ``medium`` — closer model capacity and training budget; for overnight runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..core import SelNetConfig
from ..data import Dataset, make_dataset


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes and budgets shared by all experiments at one scale."""

    name: str
    num_vectors: int
    dim_fasttext: int
    dim_face: int
    dim_youtube: int
    num_queries: int
    thresholds_per_query: int
    #: upper end of the geometric selectivity targets as a fraction of |D|;
    #: larger than the paper's 1/100 so the small synthetic datasets keep a
    #: multi-order-of-magnitude selectivity range (see DESIGN.md)
    max_selectivity_fraction: float
    selnet_epochs: int
    selnet_pretrain_epochs: int
    baseline_epochs: int
    num_control_points: int
    num_partitions: int
    gbdt_trees: int
    sample_fraction: float  # KDE / LSH sampling budget as a fraction of |D|
    monotonicity_queries: int
    monotonicity_thresholds: int

    def selnet_config(self, **overrides) -> SelNetConfig:
        """SelNet configuration matching this scale (overridable per test)."""
        base = SelNetConfig(
            num_control_points=self.num_control_points,
            epochs=self.selnet_epochs,
            pretrain_epochs=self.selnet_pretrain_epochs,
            ae_pretrain_epochs=max(self.selnet_pretrain_epochs // 2, 3),
            num_partitions=self.num_partitions,
        )
        return replace(base, **overrides) if overrides else base

    def sample_budget(self, num_vectors: int) -> int:
        """KDE / LSH sampling budget for a dataset of ``num_vectors`` rows."""
        return max(int(self.sample_fraction * num_vectors), 64)


TINY = ExperimentScale(
    name="tiny",
    num_vectors=900,
    dim_fasttext=16,
    dim_face=12,
    dim_youtube=20,
    num_queries=36,
    thresholds_per_query=12,
    max_selectivity_fraction=0.2,
    selnet_epochs=12,
    selnet_pretrain_epochs=4,
    baseline_epochs=10,
    num_control_points=8,
    num_partitions=3,
    gbdt_trees=25,
    sample_fraction=0.08,
    monotonicity_queries=10,
    monotonicity_thresholds=25,
)

SMALL = ExperimentScale(
    name="small",
    num_vectors=2500,
    dim_fasttext=32,
    dim_face=20,
    dim_youtube=40,
    num_queries=400,
    thresholds_per_query=24,
    max_selectivity_fraction=0.25,
    selnet_epochs=60,
    selnet_pretrain_epochs=10,
    baseline_epochs=50,
    num_control_points=16,
    num_partitions=3,
    gbdt_trees=60,
    sample_fraction=0.05,
    monotonicity_queries=40,
    monotonicity_thresholds=50,
)

MEDIUM = ExperimentScale(
    name="medium",
    num_vectors=6000,
    dim_fasttext=50,
    dim_face=32,
    dim_youtube=64,
    num_queries=800,
    thresholds_per_query=32,
    max_selectivity_fraction=0.25,
    selnet_epochs=120,
    selnet_pretrain_epochs=20,
    baseline_epochs=100,
    num_control_points=24,
    num_partitions=3,
    gbdt_trees=100,
    sample_fraction=0.03,
    monotonicity_queries=100,
    monotonicity_thresholds=100,
)

_SCALES: Dict[str, ExperimentScale] = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale profile by name (``tiny`` / ``small`` / ``medium``)."""
    key = name.lower()
    if key not in _SCALES:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}")
    return _SCALES[key]


def dataset_args_for_setting(setting: str, scale: ExperimentScale, seed_offset: int = 0) -> Dict:
    """Generator arguments of one paper setting's dataset at a scale.

    The single source of truth shared by :func:`make_scaled_dataset` and
    :meth:`repro.pipeline.DatasetSpec.for_setting`, so the declarative
    pipeline and the direct path construct byte-identical datasets.
    """
    key = setting.lower()
    if key.startswith("fasttext"):
        return dict(
            name="fasttext_like",
            num_vectors=scale.num_vectors,
            dim=scale.dim_fasttext,
            seed=7 + seed_offset,
        )
    if key.startswith("face"):
        return dict(
            name="face_like",
            num_vectors=scale.num_vectors,
            dim=scale.dim_face,
            seed=11 + seed_offset,
        )
    if key.startswith("youtube"):
        return dict(
            name="youtube_like",
            num_vectors=max(scale.num_vectors * 3 // 4, 500),
            dim=scale.dim_youtube,
            seed=13 + seed_offset,
        )
    raise KeyError(f"unknown setting {setting!r}")


def make_scaled_dataset(setting: str, scale: ExperimentScale, seed_offset: int = 0) -> Dataset:
    """Build the synthetic dataset for one paper setting at the given scale.

    ``setting`` is one of the paper's four evaluation settings:
    ``fasttext-cos``, ``fasttext-l2``, ``face-cos``, ``youtube-cos``.  When
    an artifact store is active (``repro.pipeline.use_store``) the dataset
    is served from / persisted to the store under its spec hash — the
    returned object is then the store's shared cached instance; treat it as
    immutable (the update pipeline copies vectors before applying streams).
    """
    from ..pipeline import DatasetSpec, get_active_store

    spec = DatasetSpec.for_setting(setting, scale, seed_offset)
    store = get_active_store()
    if store is not None:
        return store.get_or_build(spec)
    return make_dataset(spec.name, num_vectors=spec.num_vectors, dim=spec.dim, seed=spec.seed)


def setting_distance(setting: str) -> str:
    """Distance name used by one paper setting."""
    return "euclidean" if setting.lower().endswith("l2") else "cosine"


#: the four dataset / distance settings of Tables 1-4
PAPER_SETTINGS = ("fasttext-cos", "fasttext-l2", "face-cos", "youtube-cos")

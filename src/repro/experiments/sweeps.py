"""Scale sweeps and cross-seed variance runs over the experiment pipeline.

These are the generator experiments the distributed pipeline backend exists
for: families of :class:`~repro.pipeline.ExperimentSpec` stages spanning
either the **database size axis** (accuracy-vs-scale curves up to n ≈ 10^6
vectors, the paper's operating range) or the **seed axis** (mean ± std per
table cell instead of a point estimate).

Both sweeps are pure spec generators over :class:`ExperimentScale` knobs:

* :func:`run_scale_sweep` replicates a base scale profile at a series of
  ``num_vectors`` points (``dataclasses.replace`` — everything else,
  training budgets included, stays fixed so the curve isolates the data
  axis).  All points execute as **one DAG**: each point's models share that
  point's workload stage, and any point already materialized by a previous
  (e.g. lower-ceiling) sweep replays from the store instead of relabeling —
  the "shared lower-scale stages" dedup that makes growing a curve
  incremental.
* :func:`run_seed_variance` re-runs one accuracy-table cell set across
  workload/training seeds.  The dataset generator seeds are per-setting
  constants (see :func:`~repro.experiments.scale.dataset_args_for_setting`),
  so every seed's branch shares the **same dataset stage** — only the
  query workload and model fits vary — and the reported mean ± std
  measures estimator variance, not dataset-resampling variance.

Million-vector datasets make driver memory the binding constraint: with a
persistent store, both sweeps run their :class:`~repro.pipeline.PipelineRunner`
over an :class:`~repro.pipeline.ArtifactStore` opened with
``pin_values=False`` semantics in mind — pass such a store (or use the
process executor, whose workers hold at most their own stage's inputs) and
call ``store.release(spec)`` / ``store.clear_memory()`` between points when
driving manually.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.registry import train_specs_for_models
from ..pipeline import (
    EvalSpec,
    ExperimentSpec,
    PipelineReport,
    PipelineRunner,
    WorkloadSpec,
    resolve_store,
)
from .scale import SMALL, ExperimentScale

#: default database sizes of the accuracy-vs-scale curve (log-spaced toward
#: the paper's 10^6 operating point; trim with ``--max-vectors`` on the CLI)
DEFAULT_SCALE_POINTS = (1_000, 10_000, 100_000, 1_000_000)

#: default seeds of a cross-seed variance run
DEFAULT_VARIANCE_SEEDS = (0, 1, 2)

#: default model subset (cheap, deterministic models — a scale sweep multiplies
#: every training cost by the number of points)
DEFAULT_SWEEP_MODELS = ("KDE", "LightGBM-m")


@dataclass
class SweepResult:
    """A sweep reproduction: structured rows plus the formatted rendering."""

    sweep_id: str
    description: str
    text: str
    rows: List[Dict] = field(default_factory=list)
    #: per-stage wall-clock / cache stats of the single DAG run
    pipeline_report: Optional[PipelineReport] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def scaled_replica(base: ExperimentScale, num_vectors: int) -> ExperimentScale:
    """``base`` with only the database size changed.

    The derived profile's name carries the size (``small-n100000``) so spec
    descriptions and store listings stay self-explaining; every other knob —
    query counts, epochs, model capacities — is inherited, which is what
    makes the resulting curve an accuracy-vs-*data* curve.
    """
    if num_vectors <= 0:
        raise ValueError(f"num_vectors must be positive, got {num_vectors}")
    return dataclasses.replace(
        base, name=f"{base.name}-n{num_vectors}", num_vectors=int(num_vectors)
    )


def scale_sweep_experiment(
    setting: str,
    num_vectors: Sequence[int] = DEFAULT_SCALE_POINTS,
    base_scale: ExperimentScale = SMALL,
    models: Sequence[str] = DEFAULT_SWEEP_MODELS,
    seed: int = 0,
) -> Tuple[ExperimentSpec, List[Tuple[int, str, EvalSpec]]]:
    """The scale sweep as one ``ExperimentSpec`` plus ``(n, model, eval)`` keys."""
    keyed: List[Tuple[int, str, EvalSpec]] = []
    for point in num_vectors:
        scale_at = scaled_replica(base_scale, point)
        workload = WorkloadSpec.for_setting(setting, scale_at, seed=seed)
        for model, train in train_specs_for_models(
            scale_at, workload, include=models, seed=seed
        ).items():
            keyed.append((point, model, EvalSpec(train=train, seed=seed)))
    experiment = ExperimentSpec(
        name=f"scale-sweep-{setting}-{base_scale.name}-"
        f"n{min(num_vectors)}-{max(num_vectors)}",
        evals=tuple(spec for _, _, spec in keyed),
    )
    return experiment, keyed


def run_scale_sweep(
    setting: str = "face-cos",
    num_vectors: Sequence[int] = DEFAULT_SCALE_POINTS,
    scale: ExperimentScale = SMALL,
    models: Sequence[str] = DEFAULT_SWEEP_MODELS,
    seed: int = 0,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """Accuracy-vs-scale curve: one setting, growing database sizes.

    Every ``(num_vectors, model)`` cell reports test-split errors plus the
    per-stage CPU seconds its training branch cost; the whole sweep is one
    DAG, so independent points overlap on the runner's pool (the process
    executor turns that into real multi-core overlap).
    """
    if not num_vectors:
        raise ValueError("num_vectors must name at least one database size")
    experiment, keyed = scale_sweep_experiment(
        setting, num_vectors=num_vectors, base_scale=scale, models=models, seed=seed
    )
    runner = PipelineRunner(
        store=resolve_store(),
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    outcome = runner.run(experiment)
    cpu_by_hash = {stage.spec_hash: stage.cpu_seconds for stage in outcome.report.stages}

    rows: List[Dict] = []
    lines = [
        f"Accuracy vs scale on {setting} [{scale.name} base, seed {seed}, "
        f"{outcome.report.executor} executor]",
    ]
    header = (
        f"{'n':>9} {'model':<14} {'MSE':>12} {'MAE':>12} {'MAPE':>12} {'cpu s':>9}"
    )
    lines += [header, "-" * len(header)]
    for point, model, spec in keyed:
        result = outcome.value(spec)
        train_cpu = cpu_by_hash.get(spec.train.spec_hash, 0.0)
        rows.append(
            {
                "num_vectors": point,
                "model": result.model_name,
                "mse": result.test_metrics.mse,
                "mae": result.test_metrics.mae,
                "mape": result.test_metrics.mape,
                "train_cpu_seconds": train_cpu,
            }
        )
        lines.append(
            f"{point:>9} {result.model_name:<14} "
            f"{result.test_metrics.mse:>12.2f} {result.test_metrics.mae:>12.2f} "
            f"{result.test_metrics.mape:>12.3f} {train_cpu:>9.2f}"
        )
    return SweepResult(
        sweep_id=f"scale-sweep-{setting}",
        description=f"Accuracy vs database size on {setting}",
        text="\n".join(lines),
        rows=rows,
        pipeline_report=outcome.report,
    )


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and population std (ddof=0 keeps single-seed runs at 0)."""
    mean = sum(values) / len(values)
    return mean, math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def run_seed_variance(
    setting: str = "face-cos",
    scale: ExperimentScale = SMALL,
    models: Sequence[str] = DEFAULT_SWEEP_MODELS,
    seeds: Sequence[int] = DEFAULT_VARIANCE_SEEDS,
    seed: int = 0,  # accepted for CLI uniformity; `seeds` is the axis
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> SweepResult:
    """Cross-seed variance of one accuracy table: mean ± std per cell.

    All ``seeds x models`` branches form one DAG sharing the per-setting
    dataset stage; each seed gets its own workload (query draw) and model
    fits, so the spread is the estimator's, not the dataset's.
    """
    del seed  # the sweep runs every seed in `seeds`
    if not seeds:
        raise ValueError("seeds must name at least one seed")
    keyed: List[Tuple[int, str, EvalSpec]] = []
    for run_seed in seeds:
        workload = WorkloadSpec.for_setting(setting, scale, seed=run_seed)
        for model, train in train_specs_for_models(
            scale, workload, include=models, seed=run_seed
        ).items():
            keyed.append((run_seed, model, EvalSpec(train=train, seed=run_seed)))
    experiment = ExperimentSpec(
        name=f"seed-variance-{setting}-{scale.name}-x{len(seeds)}",
        evals=tuple(spec for _, _, spec in keyed),
    )
    runner = PipelineRunner(
        store=resolve_store(),
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    outcome = runner.run(experiment)

    per_model: Dict[str, Dict[str, List[float]]] = {}
    display: Dict[str, str] = {}
    for run_seed, model, spec in keyed:
        result = outcome.value(spec)
        cell = per_model.setdefault(model, {"mse": [], "mae": [], "mape": []})
        cell["mse"].append(result.test_metrics.mse)
        cell["mae"].append(result.test_metrics.mae)
        cell["mape"].append(result.test_metrics.mape)
        display[model] = result.model_name

    rows: List[Dict] = []
    lines = [
        f"Cross-seed variance on {setting} [{scale.name} scale, "
        f"seeds {tuple(seeds)}, {outcome.report.executor} executor]",
    ]
    header = (
        f"{'model':<14} {'MSE':>22} {'MAE':>22} {'MAPE':>22}"
    )
    lines += [header, "-" * len(header)]
    for model, cell in per_model.items():
        stats = {metric: _mean_std(values) for metric, values in cell.items()}
        rows.append(
            {
                "model": display[model],
                "seeds": list(seeds),
                **{
                    f"{metric}_{suffix}": value
                    for metric, pair in stats.items()
                    for suffix, value in zip(("mean", "std"), pair)
                },
            }
        )
        lines.append(
            f"{display[model]:<14} "
            f"{stats['mse'][0]:>12.2f} ±{stats['mse'][1]:>8.2f} "
            f"{stats['mae'][0]:>12.2f} ±{stats['mae'][1]:>8.2f} "
            f"{stats['mape'][0]:>12.3f} ±{stats['mape'][1]:>8.3f}"
        )
    return SweepResult(
        sweep_id=f"seed-variance-{setting}",
        description=f"Cross-seed mean ± std on {setting}",
        text="\n".join(lines),
        rows=rows,
        pipeline_report=outcome.report,
    )


__all__ = [
    "DEFAULT_SCALE_POINTS",
    "DEFAULT_SWEEP_MODELS",
    "DEFAULT_VARIANCE_SEEDS",
    "SweepResult",
    "run_scale_sweep",
    "run_seed_variance",
    "scale_sweep_experiment",
    "scaled_replica",
]

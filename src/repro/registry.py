"""Public estimator registry: named construction with capability metadata.

Every estimator in the library registers itself (via the
:func:`register_estimator` decorator or a direct call with a ``factory``)
under a lowercase key, carrying an :class:`EstimatorSpec` that records the
capabilities the rest of the system introspects:

* consistency guarantee (the ``*`` of the paper's tables),
* supported distances (LSH is cosine-only),
* data-update support (the incremental SelNet of Section 5.4),
* default hyper-parameters, both static and keyed by experiment scale.

Typical use::

    from repro import available_estimators, create_estimator

    print(available_estimators())           # ('lsh', 'kde', ..., 'selnet', ...)
    estimator = create_estimator("selnet", epochs=30, num_partitions=3)
    estimator.fit(split)

The paper-experiment registry (:mod:`repro.eval.registry`), the CLI and the
serving layer (:mod:`repro.serving`) are all thin consumers of this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .estimator import SelectivityEstimator
    from .experiments.scale import ExperimentScale

#: signature of a spec's scale hook: (scale, num_vectors) -> constructor kwargs
ScaleParamsFn = Callable[["ExperimentScale", int], Dict[str, Any]]


@dataclass(frozen=True)
class EstimatorSpec:
    """Everything the system knows about one registered estimator."""

    #: registry key, lowercase (e.g. ``"selnet"``, ``"lightgbm-m"``)
    name: str
    #: display name used in the paper's tables (e.g. ``"SelNet"``)
    display_name: str
    #: one-line description for ``repro models`` and documentation
    description: str
    #: the estimator class (for isinstance checks and docs); may be shared by
    #: several entries (e.g. the SelNet variants)
    cls: Optional[type]
    #: builds an estimator instance from flat keyword parameters
    factory: Callable[..., "SelectivityEstimator"]
    #: consistency guarantee (monotone in the threshold by construction)
    guarantees_consistency: bool = False
    #: implements the ``update(inserts, deletes)`` protocol
    supports_updates: bool = False
    #: distance names the estimator can be fitted on
    supported_distances: Tuple[str, ...] = ("cosine", "euclidean")
    #: static default constructor parameters (overridable per call)
    default_params: Mapping[str, Any] = field(default_factory=dict)
    #: optional hook computing scale-appropriate hyper-parameters
    scale_params: Optional[ScaleParamsFn] = None

    # ------------------------------------------------------------------ #
    def build(self, **params: Any) -> "SelectivityEstimator":
        """Construct an estimator; ``params`` override the spec defaults."""
        merged = dict(self.default_params)
        merged.update(params)
        return self.factory(**merged)

    def supports_distance(self, distance_name: str) -> bool:
        return distance_name.lower() in self.supported_distances

    def params_for_scale(self, scale, num_vectors: Optional[int] = None) -> Dict[str, Any]:
        """Default hyper-parameters for an experiment scale.

        ``scale`` is an :class:`~repro.experiments.scale.ExperimentScale` or
        its name (``"tiny"`` / ``"small"`` / ``"medium"``); ``num_vectors``
        defaults to the scale's dataset size (it drives sampling budgets).
        """
        if isinstance(scale, str):
            from .experiments.scale import get_scale

            scale = get_scale(scale)
        if self.scale_params is None:
            return dict(self.default_params)
        if num_vectors is None:
            num_vectors = scale.num_vectors
        params = dict(self.default_params)
        params.update(self.scale_params(scale, num_vectors))
        return params

    def describe(self) -> Dict[str, Any]:
        """JSON-able capability summary (used by ``repro models``)."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "description": self.description,
            "class": None if self.cls is None else f"{self.cls.__module__}.{self.cls.__qualname__}",
            "guarantees_consistency": self.guarantees_consistency,
            "supports_updates": self.supports_updates,
            "supported_distances": list(self.supported_distances),
            "default_params": {key: _plain(value) for key, value in self.default_params.items()},
        }


def _plain(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value


_SPECS: Dict[str, EstimatorSpec] = {}


def register_estimator(
    name: str,
    *,
    display_name: Optional[str] = None,
    description: str = "",
    consistent: bool = False,
    supports_updates: bool = False,
    distances: Tuple[str, ...] = ("cosine", "euclidean"),
    default_params: Optional[Mapping[str, Any]] = None,
    scale_params: Optional[ScaleParamsFn] = None,
    factory: Optional[Callable[..., "SelectivityEstimator"]] = None,
    cls: Optional[type] = None,
    override: bool = False,
):
    """Register an estimator under ``name``.

    Two forms:

    * decorator on an estimator class — the class itself is the factory::

          @register_estimator("kde", display_name="KDE", consistent=True)
          class KDEEstimator(SelectivityEstimator): ...

    * direct call with ``factory`` for parameterised variants::

          register_estimator("selnet-ct", factory=..., cls=SelNetEstimator, ...)
    """
    key = name.lower()

    def _register(target: Callable[..., "SelectivityEstimator"]):
        if key in _SPECS and not override:
            raise KeyError(f"estimator {key!r} is already registered")
        target_cls = cls if cls is not None else (target if isinstance(target, type) else None)
        _SPECS[key] = EstimatorSpec(
            name=key,
            display_name=display_name or getattr(target, "name", None) or key,
            description=description,
            cls=target_cls,
            factory=target,
            guarantees_consistency=consistent,
            supports_updates=supports_updates,
            supported_distances=tuple(d.lower() for d in distances),
            default_params=dict(default_params or {}),
            scale_params=scale_params,
        )
        return target

    if factory is not None:
        return _register(factory)
    return _register


def _ensure_builtins_loaded() -> None:
    """Import the modules whose import side-effect registers the built-ins."""
    from . import baselines  # noqa: F401  (registers the nine baselines)
    from .core import trainer  # noqa: F401  (registers the SelNet variants)
    from .core import incremental  # noqa: F401  (registers selnet-inc)


def available_estimators() -> Tuple[str, ...]:
    """Names of every registered estimator, in registration order."""
    _ensure_builtins_loaded()
    return tuple(_SPECS)


def iter_estimator_specs() -> Tuple[EstimatorSpec, ...]:
    """All registered specs, in registration order."""
    _ensure_builtins_loaded()
    return tuple(_SPECS.values())


def get_estimator_spec(name: str) -> EstimatorSpec:
    """Look up a spec by registry key (raises ``KeyError`` with suggestions)."""
    _ensure_builtins_loaded()
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(
            f"unknown estimator {name!r}; choose from {sorted(_SPECS)}"
        )
    return _SPECS[key]


def create_estimator(name: str, **params: Any) -> "SelectivityEstimator":
    """Construct a registered estimator by name.

    ``params`` override the spec's static defaults and are forwarded to the
    estimator constructor (for SelNet variants they are
    :class:`~repro.core.config.SelNetConfig` fields)::

        create_estimator("kde", num_samples=500)
        create_estimator("selnet", epochs=30, num_partitions=3, seed=1)
    """
    return get_estimator_spec(name).build(**params)


def find_registration(estimator: "SelectivityEstimator") -> Optional[str]:
    """Registry key of an estimator instance, or None when unregistered.

    Matches by display name first (distinguishing the SelNet variants, which
    share a class), then by class.
    """
    _ensure_builtins_loaded()
    display = getattr(estimator, "name", None)
    for spec in _SPECS.values():
        if display is not None and spec.display_name == display:
            return spec.name
    for spec in _SPECS.values():
        if spec.cls is type(estimator):
            return spec.name
    return None

"""Update-stream generation for the data-update experiments (Section 7.6).

The paper evaluates robustness to database updates with a stream of 100
operations, each inserting or deleting 5 records.  This module generates
such streams, applies them to a database, and replays them through the
incremental :class:`~repro.exact.DeltaOracle` so a workload can be
relabelled after every operation at ``O(changed rows)`` cost instead of a
full rebuild-and-rescan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np


@dataclass
class UpdateOperation:
    """One insert-or-delete batch applied to the database."""

    kind: str  # "insert" or "delete"
    vectors: Optional[np.ndarray] = None  # rows to insert (for "insert")
    indices: Optional[np.ndarray] = None  # row indices to delete (for "delete")

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete"):
            raise ValueError("kind must be 'insert' or 'delete'")
        if self.kind == "insert" and self.vectors is None:
            raise ValueError("insert operations need vectors")
        if self.kind == "delete" and self.indices is None:
            raise ValueError("delete operations need indices")


def generate_update_stream(
    data: np.ndarray,
    num_operations: int = 100,
    records_per_operation: int = 5,
    insert_probability: float = 0.5,
    noise_scale: float = 0.05,
    seed: int = 0,
) -> List[UpdateOperation]:
    """Generate a stream of insert / delete operations.

    Inserted vectors are perturbed copies of existing rows (new objects drawn
    from the same distribution); deletions pick uniformly random current rows.
    The stream is resolved lazily: delete indices refer to the database state
    at the time the operation is applied, so :func:`apply_update` must be used
    to interpret them.
    """
    rng = np.random.default_rng(seed)
    data = np.asarray(data, dtype=np.float64)
    operations: List[UpdateOperation] = []
    current_size = len(data)
    for _ in range(num_operations):
        is_insert = rng.random() < insert_probability or current_size <= records_per_operation
        if is_insert:
            base_index = rng.integers(0, len(data), size=records_per_operation)
            base = data[base_index]
            noise = rng.normal(0.0, noise_scale, size=base.shape)
            operations.append(UpdateOperation(kind="insert", vectors=base + noise))
            current_size += records_per_operation
        else:
            indices = rng.choice(current_size, size=records_per_operation, replace=False)
            operations.append(UpdateOperation(kind="delete", indices=np.sort(indices)))
            current_size -= records_per_operation
    return operations


def apply_update(data: np.ndarray, operation: UpdateOperation) -> np.ndarray:
    """Return a new database array with ``operation`` applied."""
    data = np.asarray(data, dtype=np.float64)
    if operation.kind == "insert":
        return np.concatenate([data, operation.vectors], axis=0)
    keep = np.ones(len(data), dtype=bool)
    valid = operation.indices[operation.indices < len(data)]
    keep[valid] = False
    return data[keep]


def apply_stream(
    data: np.ndarray, operations: List[UpdateOperation]
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Apply a full stream, returning the final database and all intermediate states."""
    states = []
    current = np.asarray(data, dtype=np.float64)
    for operation in operations:
        current = apply_update(current, operation)
        states.append(current)
    return current, states


def replay_stream_labels(
    data: np.ndarray,
    operations: List[UpdateOperation],
    queries: np.ndarray,
    thresholds: np.ndarray,
    distance,
    block_bytes: Optional[int] = None,
    num_workers: Optional[int] = None,
) -> Iterator[Tuple[UpdateOperation, "DeltaOracle", np.ndarray]]:
    """Replay a stream, yielding exact labels after every operation.

    Yields ``(operation, delta_oracle, labels)`` triples where ``labels``
    are the exact selectivities of the aligned ``(queries, thresholds)``
    batch (``thresholds`` may also be a ``(len(queries), w)`` grid)
    against the database state *after* the operation.  The shared
    :class:`~repro.exact.DeltaOracle` computes the base counts once and
    each step only scans the rows the stream has touched — integer-exact
    against a from-scratch oracle rebuild per state.
    """
    from ..exact import DeltaOracle

    delta = DeltaOracle(data, distance, block_bytes=block_bytes, num_workers=num_workers)
    for operation in operations:
        delta.apply(operation)
        yield operation, delta, delta.selectivities_batch(queries, thresholds)

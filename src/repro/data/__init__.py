"""Data substrate: synthetic datasets, ground truth, workloads, updates."""

from .ground_truth import SelectivityOracle
from .synthetic import (
    Dataset,
    dataset_names,
    make_dataset,
    make_face_like,
    make_fasttext_like,
    make_youtube_like,
)
from .updates import (
    UpdateOperation,
    apply_stream,
    apply_update,
    generate_update_stream,
    replay_stream_labels,
)
from .workload import (
    Workload,
    WorkloadSplit,
    build_workload_split,
    generate_workload,
    geometric_selectivity_targets,
    relabel_workload,
    split_workload,
)

__all__ = [
    "Dataset",
    "make_dataset",
    "make_fasttext_like",
    "make_face_like",
    "make_youtube_like",
    "dataset_names",
    "SelectivityOracle",
    "Workload",
    "WorkloadSplit",
    "generate_workload",
    "geometric_selectivity_targets",
    "split_workload",
    "build_workload_split",
    "relabel_workload",
    "UpdateOperation",
    "generate_update_stream",
    "apply_update",
    "apply_stream",
    "replay_stream_labels",
]

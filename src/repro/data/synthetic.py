"""Synthetic high-dimensional embedding datasets.

The paper evaluates on three public embedding collections (fasttext word
vectors, FaceNet face embeddings, YouTube Faces descriptors).  Those corpora
are not available offline, so this module generates synthetic substitutes
that preserve the workload characteristics that matter for selectivity
estimation:

* **fasttext_like** — unnormalised Gaussian-mixture embeddings (evaluated
  under both cosine and Euclidean distance, like fasttext in the paper).
* **face_like** — unit-norm clustered embeddings on the hypersphere
  (face embeddings are normalised and strongly clustered by identity).
* **youtube_like** — unit-norm, higher-dimensional embeddings with more
  diffuse cluster structure (the YouTube set has the highest dimensionality
  and the fewest rows of the three).

Each generator is deterministic given its seed.  The mixture structure makes
the selectivity curve of a query rise steeply once the threshold reaches the
query's own cluster and flatten between clusters — exactly the
query-dependent "interesting areas" SelNet's adaptive control points target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..distances import normalize_rows


@dataclass
class Dataset:
    """A named collection of vectors plus the distances it should be queried with."""

    name: str
    vectors: np.ndarray
    #: distance settings the paper evaluates on this dataset ("cosine", "euclidean")
    distances: tuple = ("cosine",)
    metadata: dict = field(default_factory=dict)

    @property
    def num_vectors(self) -> int:
        return int(self.vectors.shape[0])

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, n={self.num_vectors}, dim={self.dim})"


def _gaussian_mixture(
    num_vectors: int,
    dim: int,
    num_clusters: int,
    cluster_spread: float,
    center_scale: float,
    rng: np.random.Generator,
    cluster_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample from a Gaussian mixture with per-cluster anisotropic spread."""
    centers = rng.normal(0.0, center_scale, size=(num_clusters, dim))
    if cluster_weights is None:
        # Zipf-ish weights: a few large clusters and a long tail, mimicking the
        # frequency skew of word / identity embeddings.
        raw = 1.0 / np.arange(1, num_clusters + 1)
        cluster_weights = raw / raw.sum()
    assignments = rng.choice(num_clusters, size=num_vectors, p=cluster_weights)
    spreads = rng.uniform(0.5 * cluster_spread, 1.5 * cluster_spread, size=num_clusters)
    noise = rng.normal(0.0, 1.0, size=(num_vectors, dim)) * spreads[assignments][:, None]
    return centers[assignments] + noise


def make_fasttext_like(
    num_vectors: int = 8000,
    dim: int = 50,
    num_clusters: int = 25,
    seed: int = 7,
) -> Dataset:
    """Unnormalised word-embedding-like vectors (substitute for fasttext).

    Vector norms vary across clusters, so cosine and Euclidean neighbourhoods
    differ — the property that makes the paper evaluate both distances on
    fasttext.
    """
    rng = np.random.default_rng(seed)
    vectors = _gaussian_mixture(
        num_vectors, dim, num_clusters, cluster_spread=0.6, center_scale=2.0, rng=rng
    )
    # Scale clusters differently so norms are heterogeneous (word frequency effect).
    scales = rng.uniform(0.5, 2.0, size=num_vectors)
    vectors = vectors * scales[:, None]
    return Dataset(
        name="fasttext_like",
        vectors=vectors,
        distances=("cosine", "euclidean"),
        metadata={"num_clusters": num_clusters, "seed": seed, "normalized": False},
    )


def make_face_like(
    num_vectors: int = 8000,
    dim: int = 32,
    num_clusters: int = 60,
    seed: int = 11,
) -> Dataset:
    """Unit-norm, tightly clustered vectors (substitute for FaceNet embeddings).

    Many small, tight clusters mirror per-identity groups of face embeddings;
    vectors are normalised so only cosine distance is evaluated.
    """
    rng = np.random.default_rng(seed)
    vectors = _gaussian_mixture(
        num_vectors, dim, num_clusters, cluster_spread=0.15, center_scale=1.0, rng=rng
    )
    vectors = normalize_rows(vectors)
    return Dataset(
        name="face_like",
        vectors=vectors,
        distances=("cosine",),
        metadata={"num_clusters": num_clusters, "seed": seed, "normalized": True},
    )


def make_youtube_like(
    num_vectors: int = 6000,
    dim: int = 64,
    num_clusters: int = 40,
    seed: int = 13,
) -> Dataset:
    """Unit-norm, high-dimensional vectors (substitute for YouTube Faces).

    Highest dimensionality and fewest rows of the three settings, with a more
    diffuse cluster structure.
    """
    rng = np.random.default_rng(seed)
    vectors = _gaussian_mixture(
        num_vectors, dim, num_clusters, cluster_spread=0.35, center_scale=1.0, rng=rng
    )
    vectors = normalize_rows(vectors)
    return Dataset(
        name="youtube_like",
        vectors=vectors,
        distances=("cosine",),
        metadata={"num_clusters": num_clusters, "seed": seed, "normalized": True},
    )


_DATASET_FACTORIES = {
    "fasttext_like": make_fasttext_like,
    "face_like": make_face_like,
    "youtube_like": make_youtube_like,
}


def make_dataset(name: str, **kwargs) -> Dataset:
    """Build one of the named synthetic datasets.

    Parameters are forwarded to the specific factory so callers (e.g. the
    experiment scale configuration) can shrink ``num_vectors`` or ``dim``.
    """
    key = name.lower()
    if key not in _DATASET_FACTORIES:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(_DATASET_FACTORIES)}")
    return _DATASET_FACTORIES[key](**kwargs)


def dataset_names() -> tuple:
    """Names of all available synthetic datasets."""
    return tuple(sorted(_DATASET_FACTORIES))

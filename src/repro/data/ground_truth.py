"""Exact selectivity computation (the value function ``f(x, t, D)``).

This is the oracle the estimators are trained against and evaluated with.
Single-query methods keep the original one-scan kernels (bit-for-bit), but
all batch work — workload labeling, relabeling under updates, threshold
derivation — is fronted by the blocked multi-core engine in
:mod:`repro.exact`: query-block x data-block GEMM with norms precomputed
once per oracle, a thread-pool scatter over query blocks, and counting /
``np.partition`` instead of a full sort per query.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..distances import DistanceFunction, get_distance
from ..distances.metrics import cosine_distance_with_norms
from ..exact.blocked import BlockedOracle


class SelectivityOracle:
    """Computes exact selectivities ``|{o in D : d(x, o) <= t}|``.

    Parameters
    ----------
    data:
        Database vectors, shape ``(n, dim)``; cached once as C-contiguous
        float64 (row norms are precomputed for cosine so no per-query norm
        pass remains).
    distance:
        A :class:`~repro.distances.DistanceFunction` or its name.
    block_bytes:
        Memory budget per distance tile of the batch engine.
    num_workers:
        Thread-pool width of the batch engine (``None`` = auto, see
        :func:`repro.exact.get_default_num_workers`).
    """

    def __init__(
        self,
        data: np.ndarray,
        distance,
        block_bytes: Optional[int] = None,
        num_workers: Optional[int] = None,
    ) -> None:
        self.distance: DistanceFunction = (
            distance if isinstance(distance, DistanceFunction) else get_distance(distance)
        )
        self.engine = BlockedOracle(
            data, self.distance, block_bytes=block_bytes, num_workers=num_workers
        )
        self.data = self.engine.data
        # Precomputed once: cosine row norms (the per-query kernel used to
        # recompute these on every call) and the query-side norm helper.
        self._data_norms = (
            np.linalg.norm(self.data, axis=1) if self.distance.name == "cosine" else None
        )

    @property
    def num_objects(self) -> int:
        return int(self.data.shape[0])

    # ------------------------------------------------------------------ #
    # Distances (single query; original kernels, no redundant passes)
    # ------------------------------------------------------------------ #
    def distances_to(self, query: np.ndarray) -> np.ndarray:
        """All distances from ``query`` to the database, unsorted."""
        query = np.asarray(query, dtype=np.float64)
        if self._data_norms is not None:
            return cosine_distance_with_norms(query, self.data, self._data_norms)
        return self.distance(query, self.data)

    def sorted_distances_to(self, query: np.ndarray) -> np.ndarray:
        """All distances from ``query`` to the database, ascending."""
        return np.sort(self.distances_to(query))

    # ------------------------------------------------------------------ #
    # Selectivity
    # ------------------------------------------------------------------ #
    def selectivity(self, query: np.ndarray, threshold: float) -> int:
        """Exact selectivity of one ``(query, threshold)`` pair."""
        return int(np.count_nonzero(self.distances_to(query) <= threshold))

    def selectivities(self, query: np.ndarray, thresholds: Sequence[float]) -> np.ndarray:
        """Exact selectivities of one query at several thresholds.

        One unsorted distance scan and a vectorised count — no sort.
        """
        distances = self.distances_to(query)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        return np.count_nonzero(distances[None, :] <= thresholds[:, None], axis=1).astype(
            np.int64
        )

    def batch_selectivity(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Exact selectivity for aligned arrays of queries and thresholds.

        Runs on the blocked engine: blocked GEMM tiles, threaded over
        query blocks, counting ``d <= t`` per data block (no sorts).
        """
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if len(queries) != len(thresholds):
            raise ValueError("queries and thresholds must be aligned")
        return self.engine.selectivities_batch(queries, thresholds)

    #: alias matching the engine vocabulary (supports 2-D threshold grids)
    def selectivities_batch(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        return self.engine.selectivities_batch(queries, thresholds)

    def kth_distances(self, queries: np.ndarray, ks: Sequence[int]) -> np.ndarray:
        """Per-query 0-based order statistics via the engine's ``np.partition``."""
        return self.engine.kth_distances(queries, ks)

    # ------------------------------------------------------------------ #
    # Threshold construction
    # ------------------------------------------------------------------ #
    def thresholds_for_selectivities(
        self, query: np.ndarray, target_selectivities: Sequence[float]
    ) -> np.ndarray:
        """Thresholds whose exact selectivity is (at least) each target value.

        Used by the workload generator: the paper picks a geometric sequence
        of selectivity values and derives the matching thresholds from the
        sorted distance profile of each query.
        """
        sorted_distances = self.sorted_distances_to(query)
        n = len(sorted_distances)
        targets = list(target_selectivities)
        ranks = np.clip(np.round(np.asarray(targets, dtype=np.float64)).astype(np.int64), 1, n)
        return sorted_distances[ranks - 1].astype(np.float64)

    def max_threshold(self, queries: Optional[Iterable[np.ndarray]] = None) -> float:
        """An upper bound ``t_max`` on thresholds for this dataset.

        When ``queries`` is given, uses the maximum distance from those
        queries; otherwise estimates from a sample of database objects.
        """
        if queries is None:
            sample_size = min(32, self.num_objects)
            rng = np.random.default_rng(0)
            index = rng.choice(self.num_objects, size=sample_size, replace=False)
            queries = self.data[index]
        query_array = np.asarray(list(queries) if not isinstance(queries, np.ndarray) else queries)
        return float(self.engine.max_distances(query_array).max())

"""Exact selectivity computation (the value function ``f(x, t, D)``).

This is the oracle the estimators are trained against and evaluated with.
It is a brute-force scan vectorised with numpy; for the laptop-scale
synthetic datasets used here that is entirely adequate, and it doubles as a
reference implementation for correctness tests of every estimator.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..distances import DistanceFunction, get_distance


class SelectivityOracle:
    """Computes exact selectivities ``|{o in D : d(x, o) <= t}|``.

    Parameters
    ----------
    data:
        Database vectors, shape ``(n, dim)``.
    distance:
        A :class:`~repro.distances.DistanceFunction` or its name.
    """

    def __init__(self, data: np.ndarray, distance) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.distance: DistanceFunction = (
            distance if isinstance(distance, DistanceFunction) else get_distance(distance)
        )

    @property
    def num_objects(self) -> int:
        return int(self.data.shape[0])

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def distances_to(self, query: np.ndarray) -> np.ndarray:
        """All distances from ``query`` to the database, unsorted."""
        return self.distance(np.asarray(query, dtype=np.float64), self.data)

    def sorted_distances_to(self, query: np.ndarray) -> np.ndarray:
        """All distances from ``query`` to the database, ascending."""
        return np.sort(self.distances_to(query))

    # ------------------------------------------------------------------ #
    # Selectivity
    # ------------------------------------------------------------------ #
    def selectivity(self, query: np.ndarray, threshold: float) -> int:
        """Exact selectivity of one ``(query, threshold)`` pair."""
        return int(np.count_nonzero(self.distances_to(query) <= threshold))

    def selectivities(self, query: np.ndarray, thresholds: Sequence[float]) -> np.ndarray:
        """Exact selectivities of one query at several thresholds.

        Computed with a single distance scan plus a ``searchsorted`` so that
        generating ``w`` thresholds per query (Appendix B.1) costs one scan.
        """
        sorted_distances = self.sorted_distances_to(query)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        return np.searchsorted(sorted_distances, thresholds, side="right").astype(np.int64)

    def batch_selectivity(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Exact selectivity for aligned arrays of queries and thresholds."""
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if len(queries) != len(thresholds):
            raise ValueError("queries and thresholds must be aligned")
        out = np.empty(len(queries), dtype=np.int64)
        for i, (query, threshold) in enumerate(zip(queries, thresholds)):
            out[i] = self.selectivity(query, threshold)
        return out

    # ------------------------------------------------------------------ #
    # Threshold construction
    # ------------------------------------------------------------------ #
    def thresholds_for_selectivities(
        self, query: np.ndarray, target_selectivities: Sequence[float]
    ) -> np.ndarray:
        """Thresholds whose exact selectivity is (at least) each target value.

        Used by the workload generator: the paper picks a geometric sequence
        of selectivity values and derives the matching thresholds from the
        sorted distance profile of each query.
        """
        sorted_distances = self.sorted_distances_to(query)
        n = len(sorted_distances)
        out = np.empty(len(list(target_selectivities)), dtype=np.float64)
        for i, target in enumerate(target_selectivities):
            rank = int(np.clip(round(target), 1, n))
            out[i] = sorted_distances[rank - 1]
        return out

    def max_threshold(self, queries: Optional[Iterable[np.ndarray]] = None) -> float:
        """An upper bound ``t_max`` on thresholds for this dataset.

        When ``queries`` is given, uses the maximum distance from those
        queries; otherwise estimates from a sample of database objects.
        """
        if queries is None:
            sample_size = min(32, self.num_objects)
            rng = np.random.default_rng(0)
            index = rng.choice(self.num_objects, size=sample_size, replace=False)
            queries = self.data[index]
        maxima = [float(self.distances_to(query).max()) for query in queries]
        return float(max(maxima))

"""Query workload generation (paper Appendix B.1 and Section 7.9).

A workload is a set of ``(query vector, threshold, exact selectivity)``
triples.  The default generator follows the paper / Mattig et al.: queries
are sampled from the database, and for each query a geometric sequence of
``w`` selectivity values in ``[1, |D| / 100]`` is converted to thresholds via
the query's sorted distance profile.  The alternative generator of
Section 7.9 samples thresholds from a Beta distribution over ``[0, t_max]``.

The resulting triples are split 80/10/10 into train / validation / test **by
query**, so no test query has been seen during training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..distances import DistanceFunction, get_distance
from .ground_truth import SelectivityOracle
from .synthetic import Dataset


@dataclass
class Workload:
    """Aligned arrays of queries, thresholds and exact selectivities.

    ``query_ids`` maps every row back to the query vector it came from, which
    the splitter uses to keep all thresholds of one query in the same fold
    and the monotonicity test uses to group rows by query.
    """

    queries: np.ndarray
    thresholds: np.ndarray
    selectivities: np.ndarray
    query_ids: np.ndarray
    t_max: float
    distance_name: str
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.thresholds)

    @property
    def features(self) -> np.ndarray:
        """Concatenation ``[x, t]`` used by the ordinary-regression baselines."""
        return np.concatenate([self.queries, self.thresholds[:, None]], axis=1)

    def subset(self, index: np.ndarray) -> "Workload":
        """Return a new workload restricted to ``index`` rows."""
        return Workload(
            queries=self.queries[index],
            thresholds=self.thresholds[index],
            selectivities=self.selectivities[index],
            query_ids=self.query_ids[index],
            t_max=self.t_max,
            distance_name=self.distance_name,
            metadata=dict(self.metadata),
        )

    def unique_query_count(self) -> int:
        return int(len(np.unique(self.query_ids)))


@dataclass
class WorkloadSplit:
    """Train / validation / test workloads plus the generating context."""

    train: Workload
    validation: Workload
    test: Workload
    oracle: SelectivityOracle
    dataset: Dataset
    distance: DistanceFunction

    @property
    def t_max(self) -> float:
        return self.train.t_max


def geometric_selectivity_targets(
    num_objects: int, num_thresholds: int, max_selectivity_fraction: float = 0.01
) -> np.ndarray:
    """Geometric sequence of ``w`` selectivity values in ``[1, n * fraction]``.

    The paper uses ``fraction = 1/100`` on million-row datasets, which yields
    selectivities spanning four orders of magnitude.  On the laptop-scale
    synthetic datasets of this reproduction the same fraction would cap
    selectivity at a few dozen, flattening the very dynamic range the
    estimators are supposed to cope with — so experiment scales may raise the
    fraction to preserve the multi-order-of-magnitude span (documented in
    DESIGN.md as a scale substitution).
    """
    upper = max(num_objects * max_selectivity_fraction, 2.0)
    return np.geomspace(1.0, upper, num=num_thresholds)


def generate_workload(
    dataset: Dataset,
    distance,
    num_queries: int = 200,
    thresholds_per_query: int = 40,
    threshold_distribution: str = "geometric",
    beta_params: Tuple[float, float] = (3.0, 2.5),
    max_selectivity_fraction: float = 0.01,
    seed: int = 0,
) -> Tuple[Workload, SelectivityOracle]:
    """Generate a labelled workload for one dataset / distance setting.

    Parameters
    ----------
    dataset:
        The database (a :class:`~repro.data.synthetic.Dataset`).
    distance:
        Distance function or its name.
    num_queries:
        Number of distinct query vectors, sampled from the database
        (the paper samples queries from D).
    thresholds_per_query:
        ``w`` in the paper (default 40).
    threshold_distribution:
        ``"geometric"`` (default, Appendix B.1) derives thresholds from a
        geometric selectivity sequence; ``"beta"`` samples thresholds from
        ``Beta(alpha, beta) * t_max`` (Section 7.9).
    beta_params:
        ``(alpha, beta)`` of the Beta distribution, default ``(3, 2.5)``.
    max_selectivity_fraction:
        Upper end of the geometric selectivity targets as a fraction of |D|
        (see :func:`geometric_selectivity_targets`).
    seed:
        Random seed.
    """
    distance_fn: DistanceFunction = (
        distance if isinstance(distance, DistanceFunction) else get_distance(distance)
    )
    oracle = SelectivityOracle(dataset.vectors, distance_fn)
    rng = np.random.default_rng(seed)

    num_queries = min(num_queries, dataset.num_vectors)
    query_index = rng.choice(dataset.num_vectors, size=num_queries, replace=False)
    query_vectors = dataset.vectors[query_index]

    # t_max: cover the largest threshold the geometric workload can produce.
    targets = geometric_selectivity_targets(
        dataset.num_vectors, thresholds_per_query, max_selectivity_fraction
    )

    all_queries = []
    all_thresholds = []
    all_selectivities = []
    all_ids = []

    if threshold_distribution not in ("geometric", "beta"):
        raise ValueError("threshold_distribution must be 'geometric' or 'beta'")

    # First pass for beta mode: establish t_max from the geometric targets so
    # the Beta support matches the realistic threshold range.
    per_query_max = np.empty(num_queries, dtype=np.float64)
    sorted_profiles = []
    for i, query in enumerate(query_vectors):
        profile = oracle.sorted_distances_to(query)
        sorted_profiles.append(profile)
        rank = int(np.clip(round(targets[-1]), 1, len(profile)))
        per_query_max[i] = profile[rank - 1]
    t_max = float(per_query_max.max() * 1.05)

    for i, query in enumerate(query_vectors):
        profile = sorted_profiles[i]
        if threshold_distribution == "geometric":
            ranks = np.clip(np.round(targets).astype(int), 1, len(profile))
            thresholds = profile[ranks - 1]
        else:
            alpha, beta = beta_params
            thresholds = rng.beta(alpha, beta, size=thresholds_per_query) * t_max
        selectivities = np.searchsorted(profile, thresholds, side="right")
        all_queries.append(np.repeat(query[None, :], len(thresholds), axis=0))
        all_thresholds.append(thresholds)
        all_selectivities.append(selectivities)
        all_ids.append(np.full(len(thresholds), i, dtype=np.int64))

    workload = Workload(
        queries=np.concatenate(all_queries, axis=0),
        thresholds=np.concatenate(all_thresholds, axis=0).astype(np.float64),
        selectivities=np.concatenate(all_selectivities, axis=0).astype(np.float64),
        query_ids=np.concatenate(all_ids, axis=0),
        t_max=t_max,
        distance_name=distance_fn.name,
        metadata={
            "dataset": dataset.name,
            "num_queries": num_queries,
            "thresholds_per_query": thresholds_per_query,
            "threshold_distribution": threshold_distribution,
            "max_selectivity_fraction": max_selectivity_fraction,
            "seed": seed,
        },
    )
    return workload, oracle


def split_workload(
    workload: Workload,
    train_fraction: float = 0.8,
    validation_fraction: float = 0.1,
    seed: int = 0,
) -> Tuple[Workload, Workload, Workload]:
    """Split a workload 80/10/10 **by query** (paper Appendix B.1)."""
    if not 0.0 < train_fraction < 1.0 or not 0.0 < validation_fraction < 1.0:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + validation_fraction >= 1.0:
        raise ValueError("train + validation fractions must leave room for test data")
    rng = np.random.default_rng(seed)
    unique_ids = np.unique(workload.query_ids)
    order = rng.permutation(unique_ids)
    num_train = int(round(len(order) * train_fraction))
    num_valid = int(round(len(order) * validation_fraction))
    num_valid = max(num_valid, 1)
    num_train = max(min(num_train, len(order) - num_valid - 1), 1)
    train_ids = set(order[:num_train].tolist())
    valid_ids = set(order[num_train : num_train + num_valid].tolist())

    membership = np.empty(len(workload), dtype=np.int8)
    for row, query_id in enumerate(workload.query_ids):
        if query_id in train_ids:
            membership[row] = 0
        elif query_id in valid_ids:
            membership[row] = 1
        else:
            membership[row] = 2
    train = workload.subset(np.where(membership == 0)[0])
    validation = workload.subset(np.where(membership == 1)[0])
    test = workload.subset(np.where(membership == 2)[0])
    return train, validation, test


def build_workload_split(
    dataset: Dataset,
    distance,
    num_queries: int = 200,
    thresholds_per_query: int = 40,
    threshold_distribution: str = "geometric",
    max_selectivity_fraction: float = 0.01,
    seed: int = 0,
) -> WorkloadSplit:
    """Generate a workload and split it into train / validation / test."""
    distance_fn = distance if isinstance(distance, DistanceFunction) else get_distance(distance)
    workload, oracle = generate_workload(
        dataset,
        distance_fn,
        num_queries=num_queries,
        thresholds_per_query=thresholds_per_query,
        threshold_distribution=threshold_distribution,
        max_selectivity_fraction=max_selectivity_fraction,
        seed=seed,
    )
    train, validation, test = split_workload(workload, seed=seed)
    return WorkloadSplit(
        train=train,
        validation=validation,
        test=test,
        oracle=oracle,
        dataset=dataset,
        distance=distance_fn,
    )


def relabel_workload(workload: Workload, oracle: SelectivityOracle) -> Workload:
    """Recompute exact selectivities against a (possibly updated) oracle.

    Used by the incremental-learning path (Section 5.4): after database
    insertions or deletions, the labels of the training and validation data
    are refreshed before fine-tuning.
    """
    new_labels = oracle.batch_selectivity(workload.queries, workload.thresholds).astype(np.float64)
    return Workload(
        queries=workload.queries,
        thresholds=workload.thresholds,
        selectivities=new_labels,
        query_ids=workload.query_ids,
        t_max=workload.t_max,
        distance_name=workload.distance_name,
        metadata=dict(workload.metadata),
    )

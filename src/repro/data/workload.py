"""Query workload generation (paper Appendix B.1 and Section 7.9).

A workload is a set of ``(query vector, threshold, exact selectivity)``
triples.  The default generator follows the paper / Mattig et al.: queries
are sampled from the database, and for each query a geometric sequence of
``w`` selectivity values in ``[1, |D| / 100]`` is converted to thresholds via
the query's sorted distance profile.  The alternative generator of
Section 7.9 samples thresholds from a Beta distribution over ``[0, t_max]``.

The resulting triples are split 80/10/10 into train / validation / test **by
query**, so no test query has been seen during training.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from ..distances import DistanceFunction, get_distance
from .ground_truth import SelectivityOracle
from .synthetic import Dataset

#: progress reporting: ``True`` logs to stderr, a callable receives
#: ``(labelled_queries, total_queries)`` after every engine block
ProgressSpec = Union[bool, Callable[[int, int], None], None]


def _progress_callback(progress: ProgressSpec, label: str) -> Optional[Callable[[int, int], None]]:
    """Resolve a ``progress`` argument into an engine callback (or None)."""
    if progress is None or progress is False:
        return None
    if callable(progress):
        return progress
    start = time.perf_counter()

    def log(done: int, total: int) -> None:
        elapsed = time.perf_counter() - start
        rate = done / elapsed if elapsed > 0 else float("inf")
        print(
            f"[{label}] labelled {done}/{total} queries "
            f"({elapsed:.1f} s, {rate:.1f} queries/s)",
            file=sys.stderr,
            flush=True,
        )

    return log


@dataclass
class Workload:
    """Aligned arrays of queries, thresholds and exact selectivities.

    ``query_ids`` maps every row back to the query vector it came from, which
    the splitter uses to keep all thresholds of one query in the same fold
    and the monotonicity test uses to group rows by query.
    """

    queries: np.ndarray
    thresholds: np.ndarray
    selectivities: np.ndarray
    query_ids: np.ndarray
    t_max: float
    distance_name: str
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.thresholds)

    @property
    def features(self) -> np.ndarray:
        """Concatenation ``[x, t]`` used by the ordinary-regression baselines."""
        return np.concatenate([self.queries, self.thresholds[:, None]], axis=1)

    def subset(self, index: np.ndarray) -> "Workload":
        """Return a new workload restricted to ``index`` rows."""
        return Workload(
            queries=self.queries[index],
            thresholds=self.thresholds[index],
            selectivities=self.selectivities[index],
            query_ids=self.query_ids[index],
            t_max=self.t_max,
            distance_name=self.distance_name,
            metadata=dict(self.metadata),
        )

    def unique_query_count(self) -> int:
        return int(len(np.unique(self.query_ids)))


@dataclass
class WorkloadSplit:
    """Train / validation / test workloads plus the generating context."""

    train: Workload
    validation: Workload
    test: Workload
    oracle: SelectivityOracle
    dataset: Dataset
    distance: DistanceFunction

    @property
    def t_max(self) -> float:
        return self.train.t_max


def geometric_selectivity_targets(
    num_objects: int, num_thresholds: int, max_selectivity_fraction: float = 0.01
) -> np.ndarray:
    """Geometric sequence of ``w`` selectivity values in ``[1, n * fraction]``.

    The paper uses ``fraction = 1/100`` on million-row datasets, which yields
    selectivities spanning four orders of magnitude.  On the laptop-scale
    synthetic datasets of this reproduction the same fraction would cap
    selectivity at a few dozen, flattening the very dynamic range the
    estimators are supposed to cope with — so experiment scales may raise the
    fraction to preserve the multi-order-of-magnitude span (documented in
    DESIGN.md as a scale substitution).
    """
    upper = max(num_objects * max_selectivity_fraction, 2.0)
    return np.geomspace(1.0, upper, num=num_thresholds)


def generate_workload(
    dataset: Dataset,
    distance,
    num_queries: int = 200,
    thresholds_per_query: int = 40,
    threshold_distribution: str = "geometric",
    beta_params: Tuple[float, float] = (3.0, 2.5),
    max_selectivity_fraction: float = 0.01,
    seed: int = 0,
    num_workers: Optional[int] = None,
    block_bytes: Optional[int] = None,
    progress: ProgressSpec = None,
) -> Tuple[Workload, SelectivityOracle]:
    """Generate a labelled workload for one dataset / distance setting.

    Parameters
    ----------
    dataset:
        The database (a :class:`~repro.data.synthetic.Dataset`).
    distance:
        Distance function or its name.
    num_queries:
        Number of distinct query vectors, sampled from the database
        (the paper samples queries from D).
    thresholds_per_query:
        ``w`` in the paper (default 40).
    threshold_distribution:
        ``"geometric"`` (default, Appendix B.1) derives thresholds from a
        geometric selectivity sequence; ``"beta"`` samples thresholds from
        ``Beta(alpha, beta) * t_max`` (Section 7.9).
    beta_params:
        ``(alpha, beta)`` of the Beta distribution, default ``(3, 2.5)``.
    max_selectivity_fraction:
        Upper end of the geometric selectivity targets as a fraction of |D|
        (see :func:`geometric_selectivity_targets`).
    seed:
        Random seed.
    num_workers:
        Thread-pool width of the labeling engine (``None`` = auto).
    block_bytes:
        Memory budget per distance tile of the labeling engine.
    progress:
        ``True`` logs labeling progress to stderr; a callable receives
        ``(labelled_queries, total_queries)`` after every engine block.
    """
    if threshold_distribution not in ("geometric", "beta"):
        raise ValueError("threshold_distribution must be 'geometric' or 'beta'")
    distance_fn: DistanceFunction = (
        distance if isinstance(distance, DistanceFunction) else get_distance(distance)
    )
    oracle = SelectivityOracle(
        dataset.vectors, distance_fn, block_bytes=block_bytes, num_workers=num_workers
    )
    engine = oracle.engine
    rng = np.random.default_rng(seed)

    num_queries = min(num_queries, dataset.num_vectors)
    query_index = rng.choice(dataset.num_vectors, size=num_queries, replace=False)
    query_vectors = dataset.vectors[query_index]

    # t_max: cover the largest threshold the geometric workload can produce.
    targets = geometric_selectivity_targets(
        dataset.num_vectors, thresholds_per_query, max_selectivity_fraction
    )
    ranks = np.clip(np.round(targets).astype(np.int64), 1, dataset.num_vectors)
    callback = _progress_callback(progress, f"workload {dataset.name}/{distance_fn.name}")

    if threshold_distribution == "geometric":
        # One fused engine sweep: per query block the distance tile is
        # partitioned once at the largest rank (never fully sorted) and the
        # exact counts at the derived thresholds come from the same tile.
        thresholds, selectivities = engine.threshold_profile(
            query_vectors, ranks, progress=callback
        )
        t_max = float(thresholds[:, -1].max() * 1.05)
    else:
        # Beta mode: t_max from the largest geometric rank, then random
        # thresholds labelled by blocked counting.
        per_query_max = engine.kth_distances(query_vectors, [int(ranks[-1]) - 1])
        t_max = float(per_query_max.max() * 1.05)
        alpha, beta = beta_params
        thresholds = rng.beta(alpha, beta, size=(num_queries, thresholds_per_query)) * t_max
        selectivities = engine.selectivities_batch(
            query_vectors, thresholds, progress=callback
        )

    workload = Workload(
        queries=np.repeat(query_vectors, thresholds_per_query, axis=0),
        thresholds=thresholds.reshape(-1).astype(np.float64),
        selectivities=selectivities.reshape(-1).astype(np.float64),
        query_ids=np.repeat(np.arange(num_queries, dtype=np.int64), thresholds_per_query),
        t_max=t_max,
        distance_name=distance_fn.name,
        metadata={
            "dataset": dataset.name,
            "num_queries": num_queries,
            "thresholds_per_query": thresholds_per_query,
            "threshold_distribution": threshold_distribution,
            "max_selectivity_fraction": max_selectivity_fraction,
            "seed": seed,
        },
    )
    return workload, oracle


def split_workload(
    workload: Workload,
    train_fraction: float = 0.8,
    validation_fraction: float = 0.1,
    seed: int = 0,
) -> Tuple[Workload, Workload, Workload]:
    """Split a workload 80/10/10 **by query** (paper Appendix B.1)."""
    if not 0.0 < train_fraction < 1.0 or not 0.0 < validation_fraction < 1.0:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + validation_fraction >= 1.0:
        raise ValueError("train + validation fractions must leave room for test data")
    rng = np.random.default_rng(seed)
    unique_ids = np.unique(workload.query_ids)
    order = rng.permutation(unique_ids)
    num_train = int(round(len(order) * train_fraction))
    num_valid = int(round(len(order) * validation_fraction))
    num_valid = max(num_valid, 1)
    num_train = max(min(num_train, len(order) - num_valid - 1), 1)
    train_ids = set(order[:num_train].tolist())
    valid_ids = set(order[num_train : num_train + num_valid].tolist())

    membership = np.empty(len(workload), dtype=np.int8)
    for row, query_id in enumerate(workload.query_ids):
        if query_id in train_ids:
            membership[row] = 0
        elif query_id in valid_ids:
            membership[row] = 1
        else:
            membership[row] = 2
    train = workload.subset(np.where(membership == 0)[0])
    validation = workload.subset(np.where(membership == 1)[0])
    test = workload.subset(np.where(membership == 2)[0])
    return train, validation, test


def build_workload_split(
    dataset: Dataset,
    distance,
    num_queries: int = 200,
    thresholds_per_query: int = 40,
    threshold_distribution: str = "geometric",
    max_selectivity_fraction: float = 0.01,
    seed: int = 0,
    num_workers: Optional[int] = None,
    block_bytes: Optional[int] = None,
    progress: ProgressSpec = None,
) -> WorkloadSplit:
    """Generate a workload and split it into train / validation / test."""
    distance_fn = distance if isinstance(distance, DistanceFunction) else get_distance(distance)
    workload, oracle = generate_workload(
        dataset,
        distance_fn,
        num_queries=num_queries,
        thresholds_per_query=thresholds_per_query,
        threshold_distribution=threshold_distribution,
        max_selectivity_fraction=max_selectivity_fraction,
        seed=seed,
        num_workers=num_workers,
        block_bytes=block_bytes,
        progress=progress,
    )
    train, validation, test = split_workload(workload, seed=seed)
    return WorkloadSplit(
        train=train,
        validation=validation,
        test=test,
        oracle=oracle,
        dataset=dataset,
        distance=distance_fn,
    )


def _relabel_deduplicated(workload: Workload, oracle) -> Optional[np.ndarray]:
    """Relabel via one engine row per *distinct* query, when possible.

    Workload rows repeat each query once per threshold; grouping them by
    ``query_ids`` turns ``Q * w`` distance rows into ``Q`` rows with a
    ``(Q, w)`` threshold grid.  Per-element GEMM results are invariant
    under row deduplication, so the labels are identical to the flat path.
    Returns ``None`` when the oracle lacks a grid API or the groups are
    ragged (callers fall back to the aligned batch).
    """
    grid_fn = getattr(oracle, "selectivities_batch", None)
    if grid_fn is None or len(workload) == 0:
        return None
    unique_ids, inverse, group_sizes = np.unique(
        workload.query_ids, return_inverse=True, return_counts=True
    )
    width = int(group_sizes[0])
    if len(unique_ids) < 2 or width < 2 or not np.all(group_sizes == width):
        return None
    order = np.argsort(inverse, kind="stable")
    grid_labels = grid_fn(
        workload.queries[order[::width]],
        workload.thresholds[order].reshape(len(unique_ids), width),
    )
    labels = np.empty(len(workload), dtype=np.float64)
    labels[order] = grid_labels.reshape(-1)
    return labels


def relabel_workload(workload: Workload, oracle) -> Workload:
    """Recompute exact selectivities against a (possibly updated) oracle.

    Used by the incremental-learning path (Section 5.4): after database
    insertions or deletions, the labels of the training and validation data
    are refreshed before fine-tuning.  ``oracle`` is anything with a
    ``batch_selectivity`` protocol — a :class:`SelectivityOracle` or a
    :class:`repro.exact.DeltaOracle` (whose base-count cache makes repeated
    relabeling after each update operation cost only the changed rows).
    """
    new_labels = _relabel_deduplicated(workload, oracle)
    if new_labels is None:
        new_labels = oracle.batch_selectivity(
            workload.queries, workload.thresholds
        ).astype(np.float64)
    return Workload(
        queries=workload.queries,
        thresholds=workload.thresholds,
        selectivities=new_labels,
        query_ids=workload.query_ids,
        t_max=workload.t_max,
        distance_name=workload.distance_name,
        metadata=dict(workload.metadata),
    )

"""Experiment harness: fit and evaluate estimators on workload splits.

This module ties the data substrate, the estimator registry and the metrics
together; the table / figure reproductions in :mod:`repro.experiments` and
the benchmark suite are thin wrappers around it.

Since the pipeline refactor the harness is **spec-driven**: workload splits
are described by :class:`repro.pipeline.WorkloadSpec`, model runs by
:class:`repro.pipeline.TrainSpec` / :class:`repro.pipeline.EvalSpec`, and
:func:`run_setting` executes them as a DAG through a
:class:`repro.pipeline.PipelineRunner`.  With no artifact store active the
pipeline degenerates to a per-call memo table (pure compute, identical
numbers to the pre-pipeline code); with a store active
(:func:`repro.pipeline.use_store`, or ``repro run`` / ``table`` / ``figure``
on the CLI) every dataset, labeled workload, trained model and evaluation is
memoized under its spec hash and reruns become cache hits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..data.workload import Workload, WorkloadSplit
from ..estimator import SelectivityEstimator
from ..experiments.scale import ExperimentScale
from ..pipeline import (
    ArtifactStore,
    EvalSpec,
    ExperimentSpec,
    PipelineReport,
    PipelineRunner,
    WorkloadSpec,
    resolve_store,
)
from .metrics import ErrorMetrics, compute_error_metrics, empirical_monotonicity
from .registry import EstimatorFactory, default_estimators, train_specs_for_models


@dataclass
class EvaluationResult:
    """Everything measured for one estimator on one workload split."""

    model_name: str
    guarantees_consistency: bool
    validation_metrics: ErrorMetrics
    test_metrics: ErrorMetrics
    fit_seconds: float
    estimation_milliseconds: float
    monotonicity_percent: Optional[float] = None

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for table formatting / CSV export."""
        row = {
            "model": self.model_name,
            "consistent": self.guarantees_consistency,
            "mse_valid": self.validation_metrics.mse,
            "mse_test": self.test_metrics.mse,
            "mae_valid": self.validation_metrics.mae,
            "mae_test": self.test_metrics.mae,
            "mape_valid": self.validation_metrics.mape,
            "mape_test": self.test_metrics.mape,
            "fit_seconds": self.fit_seconds,
            "estimation_ms": self.estimation_milliseconds,
        }
        if self.monotonicity_percent is not None:
            row["monotonicity_percent"] = self.monotonicity_percent
        return row


@dataclass
class SettingEvaluation:
    """All model results for one dataset / distance setting."""

    setting: str
    results: List[EvaluationResult] = field(default_factory=list)
    #: per-stage wall-clock / cache stats when the pipeline path ran
    pipeline_report: Optional[PipelineReport] = None

    def by_model(self) -> Dict[str, EvaluationResult]:
        return {result.model_name: result for result in self.results}

    def best_model(self, metric: str = "mse_test") -> str:
        rows = [result.as_row() for result in self.results]
        best = min(rows, key=lambda row: row[metric])
        return str(best["model"])


def _timed_estimate(
    estimator: SelectivityEstimator, workload: Workload
) -> tuple:
    """Run estimation over a workload and return (estimates, ms per query)."""
    start = time.perf_counter()
    estimates = estimator.estimate(workload.queries, workload.thresholds)
    elapsed = time.perf_counter() - start
    per_query_ms = 1000.0 * elapsed / max(len(workload), 1)
    return np.asarray(estimates, dtype=np.float64), per_query_ms


def evaluate_fitted(
    estimator: SelectivityEstimator,
    split: WorkloadSplit,
    fit_seconds: float = 0.0,
    measure_monotonicity: bool = False,
    monotonicity_queries: int = 40,
    monotonicity_thresholds: int = 50,
    seed: int = 0,
) -> EvaluationResult:
    """Measure an **already fitted** estimator (the EvalSpec stage body).

    ``fit_seconds`` is carried into the result so a model served from the
    artifact store reports the wall-clock of the fit that actually produced
    it, not zero.  Note it is plain wall-clock: under the pipeline runner
    other training branches may have been running concurrently, so treat it
    as indicative (comparable across runs only at ``num_workers=1``); the
    per-query estimation latency, by contrast, is always measured with the
    pool drained (exclusive eval stages).
    """
    validation_estimates, _ = _timed_estimate(estimator, split.validation)
    test_estimates, estimation_ms = _timed_estimate(estimator, split.test)

    monotonicity = None
    if measure_monotonicity:
        monotonicity = empirical_monotonicity(
            estimator,
            split.test.queries,
            split.t_max,
            num_queries=monotonicity_queries,
            thresholds_per_query=monotonicity_thresholds,
            seed=seed,
        )

    return EvaluationResult(
        model_name=estimator.name,
        guarantees_consistency=estimator.guarantees_consistency,
        validation_metrics=compute_error_metrics(
            validation_estimates, split.validation.selectivities
        ),
        test_metrics=compute_error_metrics(test_estimates, split.test.selectivities),
        fit_seconds=fit_seconds,
        estimation_milliseconds=estimation_ms,
        monotonicity_percent=monotonicity,
    )


def evaluate_estimator(
    estimator: SelectivityEstimator,
    split: WorkloadSplit,
    measure_monotonicity: bool = False,
    monotonicity_queries: int = 40,
    monotonicity_thresholds: int = 50,
    seed: int = 0,
) -> EvaluationResult:
    """Fit one estimator and measure accuracy, speed and (optionally) consistency."""
    start = time.perf_counter()
    estimator.fit(split)
    fit_seconds = time.perf_counter() - start
    return evaluate_fitted(
        estimator,
        split,
        fit_seconds=fit_seconds,
        measure_monotonicity=measure_monotonicity,
        monotonicity_queries=monotonicity_queries,
        monotonicity_thresholds=monotonicity_thresholds,
        seed=seed,
    )


def build_setting_split(
    setting: str,
    scale: ExperimentScale,
    threshold_distribution: str = "geometric",
    seed: int = 0,
    num_workers: Optional[int] = None,
    block_bytes: Optional[int] = None,
    progress=None,
    store: Optional[ArtifactStore] = None,
) -> WorkloadSplit:
    """Dataset + workload split for one of the paper's settings at a scale.

    The split is described by a :class:`repro.pipeline.WorkloadSpec`; with an
    artifact store active (or passed explicitly) it is served from / saved
    to the store under its content hash, so the expensive exact labeling
    runs at most once per distinct spec.  ``num_workers``, ``block_bytes``
    and ``progress`` tune / observe the labeling engine only — they never
    affect the artifact's identity.

    With an active store the returned split is the store's **shared cached
    object** (every caller of the same spec gets the same instance): treat
    it as immutable.  Code that refreshes labels already does —
    :func:`~repro.data.workload.relabel_workload` returns new ``Workload``
    objects rather than mutating in place.
    """
    spec = WorkloadSpec.for_setting(
        setting, scale, threshold_distribution=threshold_distribution, seed=seed
    )
    # No active store -> a throwaway memory store: the same WorkloadSpec.build
    # code path runs either way (one copy of the parity-critical stage logic),
    # just without persistence.
    active = resolve_store(store) or ArtifactStore.memory()
    return active.get_or_build(
        spec, num_workers=num_workers, block_bytes=block_bytes, progress=progress
    )


def run_setting(
    setting: str,
    scale: ExperimentScale,
    models: Optional[Iterable[str]] = None,
    threshold_distribution: str = "geometric",
    measure_monotonicity: bool = False,
    factories: Optional[Dict[str, EstimatorFactory]] = None,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
    store: Optional[ArtifactStore] = None,
    num_workers: Optional[int] = None,
    engine_options: Optional[Dict] = None,
    executor: Optional[str] = None,
) -> SettingEvaluation:
    """Evaluate a set of models on one dataset / distance setting.

    The default path is **spec-driven**: the models become
    ``TrainSpec``/``EvalSpec`` stages sharing one ``WorkloadSpec``, executed
    as a DAG by a :class:`~repro.pipeline.PipelineRunner` (independent model
    branches run on a worker pool; with a store, finished stages are reused
    across runs).  Passing a pre-built ``split`` or custom ``factories``
    falls back to the direct path — those objects have no canonical spec to
    hash.

    Parameters
    ----------
    setting:
        One of ``fasttext-cos``, ``fasttext-l2``, ``face-cos``,
        ``youtube-cos``.
    scale:
        Experiment scale profile.
    models:
        Optional subset of model names (paper order preserved); all models by
        default.
    threshold_distribution:
        ``"geometric"`` (Tables 1-4) or ``"beta"`` (Table 11).
    measure_monotonicity:
        Also compute the empirical monotonicity measure (Table 5).
    factories:
        Pre-built estimator factories; forces the direct (non-pipeline) path.
    split:
        Pre-built workload split; forces the direct (non-pipeline) path.
    seed:
        Seed shared by the workload and every estimator.
    store:
        Artifact store override (defaults to the active store, if any).
    num_workers:
        Stage-level worker-pool width of the pipeline runner.
    engine_options:
        Labeling-engine tuning for the workload stage (``num_workers`` /
        ``block_bytes`` / ``progress``).
    executor:
        Pipeline execution backend (``"thread"`` / ``"process"`` /
        ``"cluster"``); the process-backed executors need a persistent
        store.  See :mod:`repro.pipeline.runner`.
    """
    if split is not None or factories is not None:
        return _run_setting_direct(
            setting,
            scale,
            models=models,
            threshold_distribution=threshold_distribution,
            measure_monotonicity=measure_monotonicity,
            factories=factories,
            split=split,
            seed=seed,
        )

    workload_spec = WorkloadSpec.for_setting(
        setting, scale, threshold_distribution=threshold_distribution, seed=seed
    )
    train_specs = train_specs_for_models(scale, workload_spec, include=models, seed=seed)
    eval_specs = [
        EvalSpec(
            train=train_spec,
            measure_monotonicity=measure_monotonicity,
            monotonicity_queries=scale.monotonicity_queries,
            monotonicity_thresholds=scale.monotonicity_thresholds,
            seed=seed,
        )
        for train_spec in train_specs.values()
    ]
    experiment = ExperimentSpec(
        name=f"setting-{setting}-{scale.name}-{threshold_distribution}"
        + ("-mono" if measure_monotonicity else ""),
        evals=tuple(eval_specs),
    )
    runner = PipelineRunner(
        store=resolve_store(store),
        num_workers=num_workers,
        engine_options=engine_options,
        executor=executor,
    )
    outcome = runner.run(experiment)
    return SettingEvaluation(
        setting=setting,
        results=[outcome.value(spec) for spec in eval_specs],
        pipeline_report=outcome.report,
    )


def _run_setting_direct(
    setting: str,
    scale: ExperimentScale,
    models: Optional[Iterable[str]] = None,
    threshold_distribution: str = "geometric",
    measure_monotonicity: bool = False,
    factories: Optional[Dict[str, EstimatorFactory]] = None,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
) -> SettingEvaluation:
    """The pre-pipeline path for caller-supplied splits / factories."""
    if split is None:
        split = build_setting_split(
            setting, scale, threshold_distribution=threshold_distribution, seed=seed
        )
    if factories is None:
        factories = default_estimators(
            scale,
            num_vectors=split.dataset.num_vectors,
            distance_name=split.distance.name,
            include=models,
            seed=seed,
        )
    evaluation = SettingEvaluation(setting=setting)
    for name, factory in factories.items():
        estimator = factory()
        result = evaluate_estimator(
            estimator,
            split,
            measure_monotonicity=measure_monotonicity,
            monotonicity_queries=scale.monotonicity_queries,
            monotonicity_thresholds=scale.monotonicity_thresholds,
            seed=seed,
        )
        evaluation.results.append(result)
    return evaluation

"""Experiment harness: fit and evaluate estimators on workload splits.

This module ties the data substrate, the estimator registry and the metrics
together; the table / figure reproductions in :mod:`repro.experiments` and the
benchmark suite are thin wrappers around it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..data.workload import Workload, WorkloadSplit, build_workload_split
from ..estimator import SelectivityEstimator
from ..experiments.scale import ExperimentScale, make_scaled_dataset, setting_distance
from .metrics import ErrorMetrics, compute_error_metrics, empirical_monotonicity
from .registry import EstimatorFactory, default_estimators


@dataclass
class EvaluationResult:
    """Everything measured for one estimator on one workload split."""

    model_name: str
    guarantees_consistency: bool
    validation_metrics: ErrorMetrics
    test_metrics: ErrorMetrics
    fit_seconds: float
    estimation_milliseconds: float
    monotonicity_percent: Optional[float] = None

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for table formatting / CSV export."""
        row = {
            "model": self.model_name,
            "consistent": self.guarantees_consistency,
            "mse_valid": self.validation_metrics.mse,
            "mse_test": self.test_metrics.mse,
            "mae_valid": self.validation_metrics.mae,
            "mae_test": self.test_metrics.mae,
            "mape_valid": self.validation_metrics.mape,
            "mape_test": self.test_metrics.mape,
            "fit_seconds": self.fit_seconds,
            "estimation_ms": self.estimation_milliseconds,
        }
        if self.monotonicity_percent is not None:
            row["monotonicity_percent"] = self.monotonicity_percent
        return row


@dataclass
class SettingEvaluation:
    """All model results for one dataset / distance setting."""

    setting: str
    results: List[EvaluationResult] = field(default_factory=list)

    def by_model(self) -> Dict[str, EvaluationResult]:
        return {result.model_name: result for result in self.results}

    def best_model(self, metric: str = "mse_test") -> str:
        rows = [result.as_row() for result in self.results]
        best = min(rows, key=lambda row: row[metric])
        return str(best["model"])


def _timed_estimate(
    estimator: SelectivityEstimator, workload: Workload
) -> tuple:
    """Run estimation over a workload and return (estimates, ms per query)."""
    start = time.perf_counter()
    estimates = estimator.estimate(workload.queries, workload.thresholds)
    elapsed = time.perf_counter() - start
    per_query_ms = 1000.0 * elapsed / max(len(workload), 1)
    return np.asarray(estimates, dtype=np.float64), per_query_ms


def evaluate_estimator(
    estimator: SelectivityEstimator,
    split: WorkloadSplit,
    measure_monotonicity: bool = False,
    monotonicity_queries: int = 40,
    monotonicity_thresholds: int = 50,
    seed: int = 0,
) -> EvaluationResult:
    """Fit one estimator and measure accuracy, speed and (optionally) consistency."""
    start = time.perf_counter()
    estimator.fit(split)
    fit_seconds = time.perf_counter() - start

    validation_estimates, _ = _timed_estimate(estimator, split.validation)
    test_estimates, estimation_ms = _timed_estimate(estimator, split.test)

    monotonicity = None
    if measure_monotonicity:
        monotonicity = empirical_monotonicity(
            estimator,
            split.test.queries,
            split.t_max,
            num_queries=monotonicity_queries,
            thresholds_per_query=monotonicity_thresholds,
            seed=seed,
        )

    return EvaluationResult(
        model_name=estimator.name,
        guarantees_consistency=estimator.guarantees_consistency,
        validation_metrics=compute_error_metrics(
            validation_estimates, split.validation.selectivities
        ),
        test_metrics=compute_error_metrics(test_estimates, split.test.selectivities),
        fit_seconds=fit_seconds,
        estimation_milliseconds=estimation_ms,
        monotonicity_percent=monotonicity,
    )


def build_setting_split(
    setting: str,
    scale: ExperimentScale,
    threshold_distribution: str = "geometric",
    seed: int = 0,
    num_workers: Optional[int] = None,
    progress=None,
) -> WorkloadSplit:
    """Dataset + workload split for one of the paper's settings at a scale.

    ``num_workers`` and ``progress`` tune / observe the exact-selectivity
    labeling engine (see :func:`repro.data.workload.generate_workload`).
    """
    dataset = make_scaled_dataset(setting, scale)
    distance = setting_distance(setting)
    return build_workload_split(
        dataset,
        distance,
        num_queries=scale.num_queries,
        thresholds_per_query=scale.thresholds_per_query,
        threshold_distribution=threshold_distribution,
        max_selectivity_fraction=scale.max_selectivity_fraction,
        seed=seed,
        num_workers=num_workers,
        progress=progress,
    )


def run_setting(
    setting: str,
    scale: ExperimentScale,
    models: Optional[Iterable[str]] = None,
    threshold_distribution: str = "geometric",
    measure_monotonicity: bool = False,
    factories: Optional[Dict[str, EstimatorFactory]] = None,
    split: Optional[WorkloadSplit] = None,
    seed: int = 0,
) -> SettingEvaluation:
    """Evaluate a set of models on one dataset / distance setting.

    Parameters
    ----------
    setting:
        One of ``fasttext-cos``, ``fasttext-l2``, ``face-cos``,
        ``youtube-cos``.
    scale:
        Experiment scale profile.
    models:
        Optional subset of model names (paper order preserved); all models by
        default.
    threshold_distribution:
        ``"geometric"`` (Tables 1-4) or ``"beta"`` (Table 11).
    measure_monotonicity:
        Also compute the empirical monotonicity measure (Table 5).
    factories:
        Pre-built estimator factories; built from the registry when omitted.
    split:
        Pre-built workload split (to share across calls); built when omitted.
    """
    if split is None:
        split = build_setting_split(
            setting, scale, threshold_distribution=threshold_distribution, seed=seed
        )
    if factories is None:
        factories = default_estimators(
            scale,
            num_vectors=split.dataset.num_vectors,
            distance_name=split.distance.name,
            include=models,
            seed=seed,
        )
    evaluation = SettingEvaluation(setting=setting)
    for name, factory in factories.items():
        estimator = factory()
        result = evaluate_estimator(
            estimator,
            split,
            measure_monotonicity=measure_monotonicity,
            monotonicity_queries=scale.monotonicity_queries,
            monotonicity_thresholds=scale.monotonicity_thresholds,
            seed=seed,
        )
        evaluation.results.append(result)
    return evaluation

"""Evaluation harness: metrics, model registry, experiment runner, reporting."""

from .harness import (
    EvaluationResult,
    SettingEvaluation,
    build_setting_split,
    evaluate_estimator,
    evaluate_fitted,
    run_setting,
)
from .metrics import (
    ErrorMetrics,
    compute_error_metrics,
    empirical_monotonicity,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
)
from .registry import (
    ABLATION_MODEL_ORDER,
    CONSISTENT_MODELS,
    PAPER_MODEL_ORDER,
    default_estimators,
    selnet_factory,
    selnet_train_spec,
    train_specs_for_models,
)
from .reporting import (
    format_accuracy_table,
    format_monotonicity_table,
    format_sweep_table,
    format_timing_table,
    results_to_csv,
)

__all__ = [
    "ErrorMetrics",
    "mean_squared_error",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "compute_error_metrics",
    "empirical_monotonicity",
    "EvaluationResult",
    "SettingEvaluation",
    "evaluate_estimator",
    "evaluate_fitted",
    "build_setting_split",
    "run_setting",
    "default_estimators",
    "selnet_factory",
    "selnet_train_spec",
    "train_specs_for_models",
    "PAPER_MODEL_ORDER",
    "ABLATION_MODEL_ORDER",
    "CONSISTENT_MODELS",
    "format_accuracy_table",
    "format_timing_table",
    "format_monotonicity_table",
    "format_sweep_table",
    "results_to_csv",
]

"""Plain-text table formatting for experiment results.

The benchmark harness prints the same rows the paper reports; these helpers
render them as fixed-width text tables (and CSV lines) so the output of a
benchmark run can be compared side by side with the paper's tables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .harness import EvaluationResult, SettingEvaluation


def format_accuracy_table(evaluation: SettingEvaluation, title: Optional[str] = None) -> str:
    """Render one accuracy table (the layout of Tables 1-4 / 11).

    Columns: MSE / MAE / MAPE, each for the validation and the test split.
    Models that guarantee consistency are marked with ``*`` as in the paper.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (
        f"{'Model':<14} {'MSE(valid)':>12} {'MSE(test)':>12} "
        f"{'MAE(valid)':>12} {'MAE(test)':>12} {'MAPE(valid)':>12} {'MAPE(test)':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for result in evaluation.results:
        marker = " *" if result.guarantees_consistency else "  "
        lines.append(
            f"{result.model_name + marker:<14} "
            f"{result.validation_metrics.mse:>12.2f} {result.test_metrics.mse:>12.2f} "
            f"{result.validation_metrics.mae:>12.2f} {result.test_metrics.mae:>12.2f} "
            f"{result.validation_metrics.mape:>12.3f} {result.test_metrics.mape:>12.3f}"
        )
    return "\n".join(lines)


def format_timing_table(
    evaluations: Dict[str, SettingEvaluation], title: Optional[str] = None
) -> str:
    """Render the estimation-time table (layout of Table 7).

    Rows are models, columns are settings, entries are milliseconds per query.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    settings = list(evaluations)
    header = f"{'Model':<14} " + " ".join(f"{setting:>14}" for setting in settings)
    lines.append(header)
    lines.append("-" * len(header))
    model_names: List[str] = []
    for evaluation in evaluations.values():
        for result in evaluation.results:
            if result.model_name not in model_names:
                model_names.append(result.model_name)
    for model in model_names:
        cells = []
        for setting in settings:
            by_model = evaluations[setting].by_model()
            if model in by_model:
                cells.append(f"{by_model[model].estimation_milliseconds:>14.3f}")
            else:
                cells.append(f"{'-':>14}")
        lines.append(f"{model:<14} " + " ".join(cells))
    return "\n".join(lines)


def format_monotonicity_table(evaluation: SettingEvaluation, title: Optional[str] = None) -> str:
    """Render the empirical-monotonicity table (layout of Table 5)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'Model':<14} {'Monotonicity (%)':>18}"
    lines.append(header)
    lines.append("-" * len(header))
    for result in evaluation.results:
        marker = " *" if result.guarantees_consistency else "  "
        value = result.monotonicity_percent
        rendered = f"{value:.2f}" if value is not None else "-"
        lines.append(f"{result.model_name + marker:<14} {rendered:>18}")
    return "\n".join(lines)


def format_sweep_table(
    rows: Sequence[Dict[str, float]],
    parameter_name: str,
    metric_names: Sequence[str] = ("mse", "mae", "mape"),
    title: Optional[str] = None,
) -> str:
    """Render a hyper-parameter sweep (layout of Tables 8-10).

    ``rows`` are dictionaries with the parameter value and metric values.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{parameter_name:<18} " + " ".join(f"{name.upper():>12}" for name in metric_names)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = " ".join(f"{float(row[name]):>12.3f}" for name in metric_names)
        lines.append(f"{str(row[parameter_name]):<18} {cells}")
    return "\n".join(lines)


def results_to_csv(results: Iterable[EvaluationResult]) -> str:
    """Serialise evaluation results as CSV text (header + one row per model)."""
    rows = [result.as_row() for result in results]
    if not rows:
        return ""
    columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines)

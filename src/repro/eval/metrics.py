"""Error metrics used in the paper's evaluation (Appendix B.3, Section 7.3).

* MSE, MAE, MAPE over a set of (estimate, ground truth) pairs.
* Empirical monotonicity (Daniels & Velikova): the percentage of threshold
  pairs whose estimates do not violate monotonicity, averaged over queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..estimator import SelectivityEstimator


@dataclass(frozen=True)
class ErrorMetrics:
    """MSE / MAE / MAPE bundle for one estimator on one workload."""

    mse: float
    mae: float
    mape: float

    def as_dict(self) -> Dict[str, float]:
        return {"mse": self.mse, "mae": self.mae, "mape": self.mape}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"MSE={self.mse:.2f} MAE={self.mae:.2f} MAPE={self.mape:.3f}"


def mean_squared_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """MSE = mean((yhat - y)^2)."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    return float(np.mean((prediction - target) ** 2))


def mean_absolute_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """MAE = mean(|yhat - y|)."""
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    return float(np.mean(np.abs(prediction - target)))


def mean_absolute_percentage_error(
    prediction: np.ndarray, target: np.ndarray, minimum_target: float = 1.0
) -> float:
    """MAPE = mean(|yhat - y| / y) with targets floored at ``minimum_target``.

    The floor avoids division by zero for empty-result queries; the paper's
    workloads always have selectivity >= 1 so the floor is inactive there.
    """
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    denominator = np.maximum(np.abs(target), minimum_target)
    return float(np.mean(np.abs(prediction - target) / denominator))


def compute_error_metrics(prediction: np.ndarray, target: np.ndarray) -> ErrorMetrics:
    """All three paper metrics at once."""
    return ErrorMetrics(
        mse=mean_squared_error(prediction, target),
        mae=mean_absolute_error(prediction, target),
        mape=mean_absolute_percentage_error(prediction, target),
    )


def empirical_monotonicity(
    estimator: SelectivityEstimator,
    queries: np.ndarray,
    t_max: float,
    num_queries: int = 200,
    thresholds_per_query: int = 100,
    tolerance: float = 1e-9,
    seed: int = 0,
) -> float:
    """Empirical monotonicity measure of Section 7.3 (as a percentage).

    For each of ``num_queries`` queries, ``thresholds_per_query`` thresholds
    are sampled in ``[0, t_max]``; all ordered threshold pairs are checked and
    the fraction of pairs that respect monotonicity (estimate at the larger
    threshold is not smaller) is averaged over queries.
    """
    queries = np.asarray(queries, dtype=np.float64)
    rng = np.random.default_rng(seed)
    num_queries = min(num_queries, len(queries))
    chosen = rng.choice(len(queries), size=num_queries, replace=False)
    scores = []
    for index in chosen:
        thresholds = np.sort(rng.uniform(0.0, t_max, size=thresholds_per_query))
        estimates = estimator.selectivity_curve(queries[index], thresholds)
        differences = estimates[None, :] - estimates[:, None]  # [i, j] = est_j - est_i
        upper = np.triu_indices(thresholds_per_query, k=1)  # pairs with t_j > t_i
        violations = np.count_nonzero(differences[upper] < -tolerance)
        total_pairs = len(upper[0])
        scores.append(1.0 - violations / total_pairs)
    return float(100.0 * np.mean(scores))

"""Estimator factories keyed by the model names used in the paper's tables.

The registry builds every estimator with hyper-parameters appropriate to the
chosen :class:`~repro.experiments.scale.ExperimentScale`, so the accuracy,
timing and monotonicity experiments all evaluate the same model zoo.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..baselines import (
    DLNEstimator,
    DNNEstimator,
    KDEEstimator,
    LightGBMEstimator,
    LSHEstimator,
    MoEEstimator,
    RMIEstimator,
    UMNNEstimator,
)
from ..core import SelNetConfig, SelNetEstimator
from ..estimator import SelectivityEstimator
from ..experiments.scale import ExperimentScale

EstimatorFactory = Callable[[], SelectivityEstimator]

#: every model of Tables 1-4, in the paper's row order
PAPER_MODEL_ORDER = (
    "LSH",
    "KDE",
    "LightGBM",
    "LightGBM-m",
    "DNN",
    "MoE",
    "RMI",
    "DLN",
    "UMNN",
    "SelNet",
)

#: the ablation rows of Table 6
ABLATION_MODEL_ORDER = ("SelNet", "SelNet-ct", "SelNet-ad-ct")


def selnet_factory(
    scale: ExperimentScale,
    variant: str = "SelNet",
    seed: int = 0,
    **config_overrides,
) -> EstimatorFactory:
    """Factory for a SelNet variant (``SelNet`` / ``SelNet-ct`` / ``SelNet-ad-ct``)."""
    if variant == "SelNet":
        overrides = dict(num_partitions=scale.num_partitions, seed=seed)
    elif variant == "SelNet-ct":
        overrides = dict(num_partitions=1, seed=seed)
    elif variant == "SelNet-ad-ct":
        overrides = dict(num_partitions=1, query_dependent_tau=False, seed=seed)
    else:
        raise KeyError(f"unknown SelNet variant {variant!r}")
    overrides.update(config_overrides)

    def build() -> SelectivityEstimator:
        return SelNetEstimator(scale.selnet_config(**overrides), name=variant)

    return build


def default_estimators(
    scale: ExperimentScale,
    num_vectors: int,
    distance_name: str,
    include: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> Dict[str, EstimatorFactory]:
    """The full model zoo for one dataset setting.

    Parameters
    ----------
    scale:
        Experiment scale controlling epochs / sizes / budgets.
    num_vectors:
        Database size (used for the KDE / LSH sampling budgets).
    distance_name:
        ``"cosine"`` or ``"euclidean"``; LSH is omitted for Euclidean
        distance, exactly as in the paper's Table 2.
    include:
        Optional subset of model names to build (paper order is preserved).
    seed:
        Seed forwarded to every estimator.
    """
    samples = scale.sample_budget(num_vectors)
    epochs = scale.baseline_epochs

    factories: Dict[str, EstimatorFactory] = {
        "KDE": lambda: KDEEstimator(num_samples=samples, seed=seed),
        "LightGBM": lambda: LightGBMEstimator(
            monotone=False, num_trees=scale.gbdt_trees, seed=seed
        ),
        "LightGBM-m": lambda: LightGBMEstimator(
            monotone=True, num_trees=scale.gbdt_trees, seed=seed
        ),
        "DNN": lambda: DNNEstimator(epochs=epochs, seed=seed),
        "MoE": lambda: MoEEstimator(epochs=epochs, num_experts=6, top_k=2, seed=seed),
        "RMI": lambda: RMIEstimator(epochs=epochs, num_leaf_models=6, seed=seed),
        "DLN": lambda: DLNEstimator(epochs=epochs, num_lattices=6, seed=seed),
        "UMNN": lambda: UMNNEstimator(epochs=epochs, seed=seed),
        "SelNet": selnet_factory(scale, "SelNet", seed=seed),
        "SelNet-ct": selnet_factory(scale, "SelNet-ct", seed=seed),
        "SelNet-ad-ct": selnet_factory(scale, "SelNet-ad-ct", seed=seed),
    }
    if distance_name == "cosine":
        factories["LSH"] = lambda: LSHEstimator(num_samples=samples, seed=seed)

    if include is None:
        names: List[str] = [name for name in PAPER_MODEL_ORDER if name in factories]
    else:
        names = [name for name in include if name in factories]
    return {name: factories[name] for name in names}


#: models whose estimates are consistent by construction (the * in the tables)
CONSISTENT_MODELS = frozenset(
    {"LSH", "KDE", "LightGBM-m", "DLN", "UMNN", "SelNet", "SelNet-ct", "SelNet-ad-ct"}
)

"""Paper-experiment estimator factories, on top of the public registry.

This module is a thin consumer of :mod:`repro.registry`: it maps the model
names used in the paper's tables (``"SelNet"``, ``"LightGBM-m"``...) to
registry keys and builds every estimator with the hyper-parameters its
:class:`~repro.registry.EstimatorSpec` declares for the chosen
:class:`~repro.experiments.scale.ExperimentScale`, so the accuracy, timing
and monotonicity experiments all evaluate the same model zoo.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..estimator import SelectivityEstimator
from ..experiments.scale import ExperimentScale
from ..pipeline import TrainSpec, WorkloadSpec
from ..registry import create_estimator, get_estimator_spec, iter_estimator_specs

EstimatorFactory = Callable[[], SelectivityEstimator]

#: every model of Tables 1-4, in the paper's row order
PAPER_MODEL_ORDER = (
    "LSH",
    "KDE",
    "LightGBM",
    "LightGBM-m",
    "DNN",
    "MoE",
    "RMI",
    "DLN",
    "UMNN",
    "SelNet",
)

#: the ablation rows of Table 6
ABLATION_MODEL_ORDER = ("SelNet", "SelNet-ct", "SelNet-ad-ct")


def _display_to_key() -> Dict[str, str]:
    """Map paper display names to registry keys (computed from the specs)."""
    return {spec.display_name: spec.name for spec in iter_estimator_specs()}


#: models whose estimates are consistent by construction (the * in the tables)
CONSISTENT_MODELS = frozenset(
    spec.display_name for spec in iter_estimator_specs() if spec.guarantees_consistency
)


def _selnet_key_params(
    scale: ExperimentScale, variant: str, seed: int, **config_overrides
):
    """(registry key, constructor params) for a SelNet variant.

    The single param-assembly shared by :func:`selnet_factory` (direct path)
    and :func:`selnet_train_spec` (pipeline path): both must always build
    byte-identical estimators or the spec-driven/direct parity breaks.
    """
    if variant not in ABLATION_MODEL_ORDER:
        raise KeyError(f"unknown SelNet variant {variant!r}")
    key = _display_to_key()[variant]
    params = get_estimator_spec(key).params_for_scale(scale)
    params["seed"] = seed
    params.update(config_overrides)
    return key, params


def selnet_factory(
    scale: ExperimentScale,
    variant: str = "SelNet",
    seed: int = 0,
    **config_overrides,
) -> EstimatorFactory:
    """Factory for a SelNet variant (``SelNet`` / ``SelNet-ct`` / ``SelNet-ad-ct``)."""
    key, params = _selnet_key_params(scale, variant, seed, **config_overrides)

    def build() -> SelectivityEstimator:
        return create_estimator(key, **params)

    return build


def selnet_train_spec(
    workload: WorkloadSpec,
    scale: ExperimentScale,
    variant: str = "SelNet",
    seed: int = 0,
    display_name: Optional[str] = None,
    **config_overrides,
) -> TrainSpec:
    """Hashable training spec for a SelNet variant (pipeline counterpart of
    :func:`selnet_factory`); ``config_overrides`` are SelNetConfig fields."""
    key, params = _selnet_key_params(scale, variant, seed, **config_overrides)
    return TrainSpec.create(workload, key, params, display_name=display_name)


def _zoo_key_params(
    scale: ExperimentScale,
    num_vectors: int,
    distance_name: str,
    include: Optional[Iterable[str]],
    seed: int,
):
    """Yield ``(display, key, params)`` for the supported model zoo, in order.

    The single source for :func:`default_estimators` (direct path) and
    :func:`train_specs_for_models` (pipeline path): same display names, same
    registry keys, same scale-derived hyper-parameters, same
    distance-support filtering.
    """
    display_map = _display_to_key()
    names: List[str] = list(include) if include is not None else list(PAPER_MODEL_ORDER)
    for display in names:
        key = display_map.get(display)
        if key is None:
            continue
        spec = get_estimator_spec(key)
        if not spec.supports_distance(distance_name):
            continue
        params = spec.params_for_scale(scale, num_vectors)
        params["seed"] = seed
        yield display, key, params


def train_specs_for_models(
    scale: ExperimentScale,
    workload: WorkloadSpec,
    include: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> Dict[str, TrainSpec]:
    """Hashable training specs for the model zoo on one workload.

    The pipeline counterpart of :func:`default_estimators` — built from the
    same :func:`_zoo_key_params` assembly, as content-addressed
    :class:`~repro.pipeline.TrainSpec` stages instead of opaque closures
    (``num_vectors`` and the distance come from the workload's dataset spec).
    """
    return {
        display: TrainSpec.create(workload, key, params)
        for display, key, params in _zoo_key_params(
            scale, workload.dataset.num_vectors, workload.distance, include, seed
        )
    }


def default_estimators(
    scale: ExperimentScale,
    num_vectors: int,
    distance_name: str,
    include: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> Dict[str, EstimatorFactory]:
    """The full model zoo for one dataset setting.

    Parameters
    ----------
    scale:
        Experiment scale controlling epochs / sizes / budgets.
    num_vectors:
        Database size (used for the KDE / LSH sampling budgets).
    distance_name:
        ``"cosine"`` or ``"euclidean"``; estimators whose spec does not
        support the distance are omitted (LSH on Euclidean, exactly as in
        the paper's Table 2).
    include:
        Optional subset of model names to build (paper order is preserved
        when omitted; the given order is preserved otherwise).
    seed:
        Seed forwarded to every estimator.
    """
    factories: Dict[str, EstimatorFactory] = {}
    for display, key, params in _zoo_key_params(
        scale, num_vectors, distance_name, include, seed
    ):

        def build(key: str = key, params: Dict = params) -> SelectivityEstimator:
            return create_estimator(key, **dict(params))

        factories[display] = build
    return factories

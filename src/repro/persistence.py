"""Saving and loading fitted estimators across processes.

A saved estimator is a directory:

``estimator.json``
    JSON sidecar: format version, registry key (when the estimator is
    registered), fully-qualified class, constructor parameters, capability
    flags and any caller-supplied metadata (the CLI records the training
    setting / scale / seed here).  Everything a service needs to list and
    route models without unpickling them.

``weights.npz``
    The parameters of every network the estimator owns, saved through
    :mod:`repro.nn.serialization` (one array per parameter, keyed
    ``"<attribute>::<dotted parameter name>"``).  Written only when the
    estimator has network parameters; authoritative on load.

``state.pkl``
    The remaining fitted state (samples, trees, partitionings, workloads...)
    as a pickle of the instance ``__dict__``.

The round-trip is bit-exact: ``load_estimator(save_estimator(e, p))`` makes
identical estimates to ``e`` for every query / threshold.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .estimator import SelectivityEstimator
from .nn import Module
from .nn.serialization import load_state, save_state

PathLike = Union[str, "os.PathLike[str]"]

FORMAT_NAME = "repro-estimator"
FORMAT_VERSION = 1

SIDECAR_FILE = "estimator.json"
WEIGHTS_FILE = "weights.npz"
STATE_FILE = "state.pkl"

#: separates the owning attribute from the parameter name in weights.npz keys
_WEIGHT_KEY_SEPARATOR = "::"


def _jsonify(value: Any) -> Any:
    """Best-effort conversion to JSON-able data for the sidecar."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


def estimator_metadata(estimator: SelectivityEstimator) -> Dict[str, Any]:
    """The sidecar dictionary for an estimator (without caller metadata)."""
    from . import __version__
    from .registry import find_registration

    cls = type(estimator)
    return {
        "format": FORMAT_NAME,
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "registry_name": find_registration(estimator),
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "name": estimator.name,
        "guarantees_consistency": bool(estimator.guarantees_consistency),
        "supports_updates": bool(estimator.supports_updates),
        "input_dim": estimator.expected_input_dim,
        "params": _jsonify(estimator.get_params()),
    }


def _module_attributes(estimator: SelectivityEstimator) -> Dict[str, Module]:
    return {
        attribute: value
        for attribute, value in vars(estimator).items()
        if isinstance(value, Module)
    }


def save_estimator(
    estimator: SelectivityEstimator,
    path: PathLike,
    extra_metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``estimator`` to the directory ``path`` (created if missing)."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)

    metadata = estimator_metadata(estimator)
    if extra_metadata:
        metadata["metadata"] = _jsonify(extra_metadata)

    weights: Dict[str, np.ndarray] = {}
    for attribute, module in _module_attributes(estimator).items():
        for parameter_name, array in module.state_dict().items():
            weights[f"{attribute}{_WEIGHT_KEY_SEPARATOR}{parameter_name}"] = array
    if weights:
        save_state(directory / WEIGHTS_FILE, weights)
        metadata["num_weight_arrays"] = len(weights)

    state = dict(vars(estimator))
    # The compiled inference kernel is derived state (frozen weight copies);
    # it is rebuilt on load rather than shipped in the pickle.
    state.pop("_compiled_kernel", None)
    with open(directory / STATE_FILE, "wb") as handle:
        pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
    with open(directory / SIDECAR_FILE, "w") as handle:
        json.dump(metadata, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return directory


def read_metadata(path: PathLike) -> Dict[str, Any]:
    """Read the JSON sidecar of a saved estimator (no unpickling)."""
    sidecar = Path(path) / SIDECAR_FILE
    if not sidecar.is_file():
        raise FileNotFoundError(
            f"{path!r} is not a saved estimator (missing {SIDECAR_FILE})"
        )
    with open(sidecar) as handle:
        metadata = json.load(handle)
    if metadata.get("format") != FORMAT_NAME:
        raise ValueError(f"{sidecar} is not a {FORMAT_NAME} sidecar")
    return metadata


def _resolve_class(dotted: str) -> type:
    module_name, _, qualname = dotted.rpartition(".")
    module = importlib.import_module(module_name)
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part)
    if not isinstance(target, type):
        raise TypeError(f"{dotted} is not a class")
    return target


def load_estimator(path: PathLike, mmap: bool = False) -> SelectivityEstimator:
    """Load an estimator saved by :func:`save_estimator`.

    Restores the pickled fitted state, then overwrites every network
    parameter from ``weights.npz`` (so the ``.npz`` checkpoint — the format
    shared with :func:`repro.nn.serialization.save_module` — is
    authoritative for weights).  ``mmap=True`` maps the checkpoint instead
    of reading it eagerly: weight pages stream in on first touch and are
    shared via the page cache when many processes load one artifact (the
    parameters themselves still end up as private copies inside each
    module — see :meth:`repro.nn.Module.load_state_dict`).
    """
    directory = Path(path)
    metadata = read_metadata(directory)
    version = metadata.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported estimator format version {version!r} (expected {FORMAT_VERSION})"
        )

    cls = _resolve_class(metadata["class"])
    if not issubclass(cls, SelectivityEstimator):
        raise TypeError(f"{metadata['class']} is not a SelectivityEstimator")

    with open(directory / STATE_FILE, "rb") as handle:
        state: Dict[str, Any] = pickle.load(handle)
    estimator = cls.__new__(cls)
    estimator.__dict__.update(state)

    weights_path = directory / WEIGHTS_FILE
    if weights_path.is_file():
        grouped: Dict[str, Dict[str, np.ndarray]] = {}
        for key, array in load_state(weights_path, mmap=mmap).items():
            attribute, _, parameter_name = key.partition(_WEIGHT_KEY_SEPARATOR)
            grouped.setdefault(attribute, {})[parameter_name] = array
        for attribute, module_state in grouped.items():
            module = getattr(estimator, attribute, None)
            if not isinstance(module, Module):
                raise ValueError(
                    f"checkpoint has weights for attribute {attribute!r} but the "
                    f"restored {cls.__name__} has no such module"
                )
            module.load_state_dict(module_state)
    # Recompile the inference kernel from the freshly restored weights so a
    # loaded estimator serves through the compiled path immediately (never
    # fails: estimators without a fused kernel get the generic fallback).
    estimator.compiled(refresh=True)
    return estimator

"""Metric-space indexing: cover tree and database partitioning."""

from .cover_tree import BallRegion, CoverTree, CoverTreeNode
from .partitioner import (
    Partition,
    Partitioning,
    build_partitioning,
    cover_tree_partitioning,
    kmeans_partitioning,
    merge_regions_balanced,
    random_partitioning,
)

__all__ = [
    "CoverTree",
    "CoverTreeNode",
    "BallRegion",
    "Partition",
    "Partitioning",
    "merge_regions_balanced",
    "cover_tree_partitioning",
    "random_partitioning",
    "kmeans_partitioning",
    "build_partitioning",
]

"""Cover tree for metric-space partitioning (Section 5.3 of the paper).

The paper uses a cover tree (Izbicki & Shelton style) to carve the database
into ball-shaped regions: node expansion stops once a node holds fewer than
``partition_ratio * |D|`` points, and the resulting leaf balls are later
merged into ``K`` size-balanced clusters.

This implementation follows the simplified (nearest-ancestor) cover tree:
every node has a level ``l`` and covers points within radius ``2^l`` of its
centre; children live at level ``l - 1`` and are separated by more than
``2^(l-1)``.  Points are stored at the node that first covers them during
construction.  For the partitioning use case we mainly need:

* balanced-ish ball regions (leaf nodes with their member points), and
* per-region centre + covering radius, so the query-time indicator
  ``f_c(x, t)`` can test ball/query-ball intersection via the triangle
  inequality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..distances import DistanceFunction, get_distance


@dataclass
class CoverTreeNode:
    """One node of the cover tree."""

    center_index: int
    level: int
    #: database row indices stored directly at this node
    point_indices: List[int] = field(default_factory=list)
    children: List["CoverTreeNode"] = field(default_factory=list)

    def subtree_indices(self) -> List[int]:
        """All database row indices stored in this subtree."""
        indices = list(self.point_indices)
        for child in self.children:
            indices.extend(child.subtree_indices())
        return indices

    def subtree_size(self) -> int:
        return len(self.point_indices) + sum(child.subtree_size() for child in self.children)

    def max_depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.max_depth() for child in self.children)


@dataclass
class BallRegion:
    """A ball-shaped region of the database produced by the cover tree."""

    center: np.ndarray
    radius: float
    point_indices: np.ndarray

    @property
    def size(self) -> int:
        return int(len(self.point_indices))

    def intersects_query(self, query_center_distance: float, threshold: float) -> bool:
        """Whether the query ball ``B(x, t)`` intersects this region.

        By the triangle inequality the two balls intersect iff the distance
        between their centres is at most the sum of their radii.
        """
        return query_center_distance <= self.radius + threshold


class CoverTree:
    """Simplified cover tree over a set of vectors under a metric distance.

    Parameters
    ----------
    data:
        Database vectors, shape ``(n, dim)``.
    distance:
        A metric :class:`~repro.distances.DistanceFunction` or its name.
    min_region_size:
        Stop expanding a node once its subtree holds at most this many points
        (the paper's ``r |D|`` constraint, with ``r`` the partition ratio).
    max_levels:
        Safety bound on tree depth.
    """

    def __init__(
        self,
        data: np.ndarray,
        distance="euclidean",
        min_region_size: int = 64,
        max_levels: int = 32,
        seed: int = 0,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        if self.data.ndim != 2 or len(self.data) == 0:
            raise ValueError("data must be a non-empty 2-D array")
        self.distance: DistanceFunction = (
            distance if isinstance(distance, DistanceFunction) else get_distance(distance)
        )
        if not self.distance.is_metric:
            raise ValueError("cover trees require a metric distance")
        self.min_region_size = max(int(min_region_size), 1)
        self.max_levels = max_levels
        self._rng = np.random.default_rng(seed)
        self.root = self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _distances_from(self, center_index: int, candidate_indices: np.ndarray) -> np.ndarray:
        return self.distance(self.data[center_index], self.data[candidate_indices])

    def _build(self) -> CoverTreeNode:
        all_indices = np.arange(len(self.data))
        root_index = int(self._rng.integers(0, len(self.data)))
        distances = self._distances_from(root_index, all_indices)
        max_distance = float(distances.max()) if len(distances) else 1.0
        root_level = int(np.ceil(np.log2(max(max_distance, 1e-9)))) + 1
        root = CoverTreeNode(center_index=root_index, level=root_level)
        members = all_indices[all_indices != root_index]
        root.point_indices.append(root_index)
        self._expand(root, members, depth=0)
        return root

    def _expand(self, node: CoverTreeNode, candidate_indices: np.ndarray, depth: int) -> None:
        """Recursively assign ``candidate_indices`` to ``node``'s subtree."""
        if len(candidate_indices) == 0:
            return
        if len(candidate_indices) + len(node.point_indices) <= self.min_region_size or depth >= self.max_levels:
            # Region is small enough: stop expanding (paper's partition-ratio rule).
            node.point_indices.extend(int(i) for i in candidate_indices)
            return

        child_level = node.level - 1
        separation = 2.0 ** child_level
        remaining = candidate_indices.copy()
        children: List[CoverTreeNode] = []
        child_assignments: List[List[int]] = []

        # Greedy cover: repeatedly pick a far-away point as a new child centre
        # and claim everything within the child's covering radius.
        while len(remaining) > 0:
            center = int(remaining[0])
            child = CoverTreeNode(center_index=center, level=child_level)
            child.point_indices.append(center)
            remaining = remaining[1:]
            if len(remaining) == 0:
                children.append(child)
                child_assignments.append([])
                break
            distances = self._distances_from(center, remaining)
            within = distances <= separation
            claimed = remaining[within]
            remaining = remaining[~within]
            children.append(child)
            child_assignments.append([int(i) for i in claimed])

        node.children = children
        for child, claimed in zip(children, child_assignments):
            self._expand(child, np.asarray(claimed, dtype=np.int64), depth + 1)

    # ------------------------------------------------------------------ #
    # Region extraction
    # ------------------------------------------------------------------ #
    def leaf_regions(self) -> List[BallRegion]:
        """Return the ball regions covering the database (the paper's K' regions).

        Leaf nodes contribute one region each.  Internal nodes store their own
        centre point (and nothing else); those points are emitted as
        zero-radius singleton regions so every database row belongs to exactly
        one region.
        """
        regions: List[BallRegion] = []

        def make_region(center_index: int, indices: np.ndarray) -> BallRegion:
            center = self.data[center_index]
            if len(indices) > 0:
                distances = self.distance(center, self.data[indices])
                radius = float(distances.max())
            else:
                radius = 0.0
            return BallRegion(center=center.copy(), radius=radius, point_indices=indices)

        def visit(node: CoverTreeNode) -> None:
            if not node.children:
                indices = np.asarray(node.subtree_indices(), dtype=np.int64)
                regions.append(make_region(node.center_index, indices))
                return
            if node.point_indices:
                own = np.asarray(node.point_indices, dtype=np.int64)
                regions.append(make_region(node.center_index, own))
            for child in node.children:
                visit(child)

        visit(self.root)
        return regions

    def num_points(self) -> int:
        """Total number of points stored in the tree (should equal ``len(data)``)."""
        return self.root.subtree_size()

    def depth(self) -> int:
        """Depth of the tree."""
        return self.root.max_depth()

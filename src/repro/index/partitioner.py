"""Database partitioning strategies (Section 5.3).

SelNet splits the database into ``K`` disjoint partitions of approximately
equal size and trains a local model on each.  Three strategies are
implemented, matching the paper's Table 10 comparison:

* **Cover-tree partitioning (CT)** — the default: a cover tree produces
  ``K'`` ball regions, which are greedily merged into ``K`` size-balanced
  clusters; the query-time indicator ``f_c(x, t)`` activates only the
  clusters whose balls intersect the query ball.
* **Random partitioning (RP)** — uniform random assignment; the indicator is
  always all-ones (also the fallback for non-metric distances).
* **K-means partitioning (KM)** — Lloyd's algorithm; partitions can be very
  imbalanced, which the paper identifies as the reason KM performs worst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..distances import DistanceFunction, get_distance
from ..distances.metrics import cosine_distance_with_norms
from .cover_tree import BallRegion, CoverTree


@dataclass
class Partition:
    """One partition: its member rows plus the balls that describe it."""

    index: int
    point_indices: np.ndarray
    #: ball regions merged into this partition (empty for RP / KM means one
    #: synthetic ball covering all members)
    regions: List[BallRegion] = field(default_factory=list)

    @property
    def size(self) -> int:
        return int(len(self.point_indices))


class Partitioning:
    """The result of partitioning a database: K disjoint partitions + indicator.

    Parameters
    ----------
    data:
        The database the partitioning was computed over.
    partitions:
        Disjoint partitions covering every row of ``data``.
    distance:
        Distance used for the intersection indicator.
    always_active:
        When True, ``indicator`` returns all-ones (used for random
        partitioning and non-metric distances, as in the paper).
    """

    def __init__(
        self,
        data: np.ndarray,
        partitions: List[Partition],
        distance: DistanceFunction,
        always_active: bool = False,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.partitions = partitions
        self.distance = distance
        self.always_active = always_active
        self._validate()

    def _validate(self) -> None:
        counts = np.zeros(len(self.data), dtype=np.int64)
        for partition in self.partitions:
            counts[partition.point_indices] += 1
        if not np.all(counts == 1):
            raise ValueError("partitions must be disjoint and cover every database row")

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def sizes(self) -> np.ndarray:
        return np.asarray([p.size for p in self.partitions], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Query-time indicator f_c(x, t)
    # ------------------------------------------------------------------ #
    def indicator(self, query: np.ndarray, threshold: float) -> np.ndarray:
        """The paper's ``f_c(x, t) -> {0, 1}^K`` partition-activation vector.

        A partition is active when any of its ball regions intersects the
        query ball ``B(x, t)``.  For always-active partitionings the vector is
        all ones.
        """
        if self.always_active:
            return np.ones(self.num_partitions, dtype=np.float64)
        query = np.asarray(query, dtype=np.float64)
        out = np.zeros(self.num_partitions, dtype=np.float64)
        for k, partition in enumerate(self.partitions):
            if not partition.regions:
                out[k] = 1.0
                continue
            centers = np.stack([region.center for region in partition.regions])
            center_distances = self.distance(query, centers)
            radii = np.asarray([region.radius for region in partition.regions])
            if np.any(center_distances <= radii + threshold):
                out[k] = 1.0
        return out

    def indicator_batch(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Vector of indicators for aligned query / threshold arrays.

        Vectorised over the batch: instead of one :meth:`indicator` call per
        row (O(rows x regions) Python iterations), the loop runs over the
        ball regions — a handful per partition — and each region tests all
        queries in one distance kernel call.  Both distances are symmetric,
        so ``distance(center, queries)`` matches the per-row
        ``distance(query, centers)`` values.
        """
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if self.always_active:
            return np.ones((len(queries), self.num_partitions), dtype=np.float64)
        out = np.zeros((len(queries), self.num_partitions), dtype=np.float64)
        for k, partition in enumerate(self.partitions):
            if not partition.regions:
                out[:, k] = 1.0
                continue
            active = np.zeros(len(queries), dtype=bool)
            for region in partition.regions:
                distances = self.distance(region.center, queries)
                active |= distances <= region.radius + thresholds
            out[:, k] = active
        return out

    def _partition_ids(self) -> np.ndarray:
        """Partition index of every database row (cached)."""
        ids = getattr(self, "_partition_id_cache", None)
        if ids is None:
            ids = np.empty(len(self.data), dtype=np.int64)
            for k, partition in enumerate(self.partitions):
                ids[partition.point_indices] = k
            self._partition_id_cache = ids
        return ids

    def local_selectivity_labels(
        self, queries: np.ndarray, thresholds: np.ndarray
    ) -> np.ndarray:
        """Exact per-partition selectivities, shape ``(rows, K)``.

        Used as local training labels: the paper's Observation 1 says the
        global selectivity is the sum of the per-partition selectivities.

        Vectorised like :meth:`indicator_batch`: instead of one distance
        call per ``(row, partition)`` pair, each row is scanned against the
        whole database once and the counts are segment-summed by partition.
        Per-row distance kernels are bit-stable under row subsetting, so
        the counts are bit-identical to the former per-partition loop.
        """
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        num_rows = len(queries)
        out = np.zeros((num_rows, self.num_partitions), dtype=np.float64)
        if num_rows == 0 or len(self.data) == 0:
            return out
        partition_ids = self._partition_ids()

        if self.distance.name == "euclidean":
            # Fully vectorised: chunked (rows, n, dim) difference tensor —
            # the einsum reduction per (row, object) pair matches the
            # per-row kernel bit for bit — then one GEMM against the
            # partition one-hot matrix (0/1 sums in float64 are exact).
            onehot = np.zeros((len(self.data), self.num_partitions), dtype=np.float64)
            onehot[np.arange(len(self.data)), partition_ids] = 1.0
            budget = 32 * 1024 * 1024
            chunk = int(max(budget // (8 * self.data.shape[0] * self.data.shape[1]), 1))
            for start in range(0, num_rows, chunk):
                stop = min(start + chunk, num_rows)
                diff = self.data[None, :, :] - queries[start:stop, None, :]
                distances = np.sqrt(
                    np.maximum(np.einsum("qnd,qnd->qn", diff, diff), 0.0)
                )
                mask = (distances <= thresholds[start:stop, None]).astype(np.float64)
                out[start:stop] = mask @ onehot
            return out

        # Cosine (and any other kernel): one full-database scan per row with
        # the norm pass hoisted out of the loop, segment-summed by partition.
        data_norms = None
        if self.distance.name == "cosine":
            data_norms = np.linalg.norm(self.data, axis=1)
        for i in range(num_rows):
            if data_norms is not None:
                distances = cosine_distance_with_norms(queries[i], self.data, data_norms)
            else:
                distances = self.distance(queries[i], self.data)
            mask = (distances <= thresholds[i]).astype(np.float64)
            out[i] = np.bincount(
                partition_ids, weights=mask, minlength=self.num_partitions
            )
        return out


# ---------------------------------------------------------------------- #
# Region merging (greedy size-balancing, Section 5.3)
# ---------------------------------------------------------------------- #
def merge_regions_balanced(regions: Sequence[BallRegion], num_partitions: int) -> List[List[BallRegion]]:
    """Greedy merge of K' ball regions into K size-balanced clusters.

    Regions are sorted by decreasing size and each is assigned to the cluster
    with the fewest points so far — exactly the strategy described in the
    paper.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    clusters: List[List[BallRegion]] = [[] for _ in range(num_partitions)]
    cluster_sizes = np.zeros(num_partitions, dtype=np.int64)
    for region in sorted(regions, key=lambda r: r.size, reverse=True):
        target = int(np.argmin(cluster_sizes))
        clusters[target].append(region)
        cluster_sizes[target] += region.size
    return clusters


# ---------------------------------------------------------------------- #
# Partitioner front-ends
# ---------------------------------------------------------------------- #
def cover_tree_partitioning(
    data: np.ndarray,
    num_partitions: int = 3,
    distance="euclidean",
    partition_ratio: float = 0.05,
    seed: int = 0,
) -> Partitioning:
    """Cover-tree partitioning (the paper's default, "CT").

    ``partition_ratio`` is the paper's ``r``: cover-tree nodes stop expanding
    once they hold fewer than ``r |D|`` points.
    """
    data = np.asarray(data, dtype=np.float64)
    distance_fn = distance if isinstance(distance, DistanceFunction) else get_distance(distance)
    if not distance_fn.is_metric:
        # The paper falls back to random partitioning for non-metric distances.
        return random_partitioning(data, num_partitions, distance_fn, seed=seed)
    min_region_size = max(int(np.ceil(partition_ratio * len(data))), 1)
    tree = CoverTree(data, distance_fn, min_region_size=min_region_size, seed=seed)
    regions = tree.leaf_regions()
    clusters = merge_regions_balanced(regions, num_partitions)
    partitions = []
    for index, cluster in enumerate(clusters):
        if cluster:
            indices = np.concatenate([region.point_indices for region in cluster])
        else:
            indices = np.asarray([], dtype=np.int64)
        partitions.append(Partition(index=index, point_indices=indices, regions=list(cluster)))
    return Partitioning(data, partitions, distance_fn, always_active=False)


def random_partitioning(
    data: np.ndarray,
    num_partitions: int = 3,
    distance="euclidean",
    seed: int = 0,
) -> Partitioning:
    """Uniform random partitioning ("RP"); indicator is always all-ones."""
    data = np.asarray(data, dtype=np.float64)
    distance_fn = distance if isinstance(distance, DistanceFunction) else get_distance(distance)
    rng = np.random.default_rng(seed)
    assignment = rng.permutation(len(data)) % num_partitions
    partitions = []
    for index in range(num_partitions):
        indices = np.where(assignment == index)[0]
        partitions.append(Partition(index=index, point_indices=indices, regions=[]))
    return Partitioning(data, partitions, distance_fn, always_active=True)


def kmeans_partitioning(
    data: np.ndarray,
    num_partitions: int = 3,
    distance="euclidean",
    num_iterations: int = 25,
    seed: int = 0,
) -> Partitioning:
    """K-means (Lloyd's) partitioning ("KM").

    Clusters are described by one ball each (centroid + max member distance)
    so the intersection indicator still applies, but sizes can be very
    imbalanced — the behaviour the paper's Table 10 highlights.
    """
    data = np.asarray(data, dtype=np.float64)
    distance_fn = distance if isinstance(distance, DistanceFunction) else get_distance(distance)
    rng = np.random.default_rng(seed)
    num_partitions = min(num_partitions, len(data))
    centroid_index = rng.choice(len(data), size=num_partitions, replace=False)
    centroids = data[centroid_index].copy()

    assignment = np.zeros(len(data), dtype=np.int64)
    for _ in range(num_iterations):
        distances = distance_fn.pairwise(data, centroids)
        new_assignment = np.argmin(distances, axis=1)
        if np.array_equal(new_assignment, assignment):
            assignment = new_assignment
            break
        assignment = new_assignment
        for k in range(num_partitions):
            members = data[assignment == k]
            if len(members) > 0:
                centroids[k] = members.mean(axis=0)

    partitions = []
    for index in range(num_partitions):
        indices = np.where(assignment == index)[0]
        if len(indices) > 0:
            member_distances = distance_fn(centroids[index], data[indices])
            radius = float(member_distances.max())
        else:
            radius = 0.0
        region = BallRegion(center=centroids[index].copy(), radius=radius, point_indices=indices)
        partitions.append(Partition(index=index, point_indices=indices, regions=[region]))
    return Partitioning(data, partitions, distance_fn, always_active=False)


_PARTITIONERS = {
    "cover_tree": cover_tree_partitioning,
    "ct": cover_tree_partitioning,
    "random": random_partitioning,
    "rp": random_partitioning,
    "kmeans": kmeans_partitioning,
    "km": kmeans_partitioning,
}


def build_partitioning(
    method: str,
    data: np.ndarray,
    num_partitions: int = 3,
    distance="euclidean",
    seed: int = 0,
    **kwargs,
) -> Partitioning:
    """Build a partitioning by method name (``ct`` / ``rp`` / ``km``)."""
    key = method.lower()
    if key not in _PARTITIONERS:
        raise KeyError(f"unknown partitioning method {method!r}; choose from {sorted(set(_PARTITIONERS))}")
    return _PARTITIONERS[key](data, num_partitions=num_partitions, distance=distance, seed=seed, **kwargs)

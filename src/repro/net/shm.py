"""Shared-memory slot ring: the zero-copy batch data plane.

The ``network`` shard backend splits every backend call into a *control
message* (a tiny pickled dict over a :mod:`multiprocessing` pipe — operation,
model name, slot index, row count) and a *data payload* (the query matrix,
thresholds and results) that crosses the process boundary through a
:class:`multiprocessing.shared_memory.SharedMemory` segment instead of the
pipe.  Arrays are written once into a ring slot by the router and mapped as
NumPy views by the shard worker — no pickling, no copies through kernel
buffers — and the worker writes its results back **into the same slot** (a
result row is never wider than its request row), so one segment serves both
directions.

The segment is divided into ``num_slots`` fixed-size slots.  Slot indices
travel in the control messages; the router allocates them from a
:class:`SlotPool` (blocking when every slot is in flight, which the
cluster's bounded admission queue makes rare) and releases each slot after
copying the results out.  A batch too large for one slot falls back to
pickling through the control pipe — counted, so the transport stats make the
fallback visible.

Layout of one slot holding an ``(n, dim)`` batch (``w`` = request dtype
width, 8 for float64 and 4 for float32; results are always float64, and for
any ``dim >= 1`` the request footprint ``n*(dim+1)*w`` covers the ``n*8``
result bytes even at ``w=4``)::

    [ queries: n*dim*w bytes | thresholds: n*w bytes ]   request
    [ results: n*8 bytes     | ...stale...           ]   response (in place)
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

#: default slot payload size — holds a 256-row batch of 512-dim float64
#: queries (the cluster's default ``max_batch_size`` at a generous width)
DEFAULT_SLOT_BYTES = 1 << 20

_FLOAT = np.float64
_ITEM = 8


def batch_nbytes(num_rows: int, dim: int, itemsize: int = _ITEM) -> int:
    """Bytes one ``(num_rows, dim)`` query batch plus thresholds occupies."""
    return num_rows * dim * itemsize + num_rows * itemsize


class ShmRing:
    """One shared-memory segment sliced into fixed-size transport slots."""

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        num_slots: int,
        slot_bytes: int,
        owner: bool,
    ) -> None:
        self._segment = segment
        self.num_slots = int(num_slots)
        self.slot_bytes = int(slot_bytes)
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, num_slots: int, slot_bytes: int = DEFAULT_SLOT_BYTES) -> "ShmRing":
        if num_slots < 1 or slot_bytes < 2 * _ITEM:
            raise ValueError("need at least one slot of at least 16 bytes")
        segment = shared_memory.SharedMemory(create=True, size=num_slots * slot_bytes)
        return cls(segment, num_slots, slot_bytes, owner=True)

    @classmethod
    def attach(cls, name: str, num_slots: int, slot_bytes: int) -> "ShmRing":
        """Map an existing ring (the shard-worker side).

        The attaching process must NOT let Python's resource tracker manage
        the segment: on 3.9–3.12 an attached ``SharedMemory`` registers
        itself (bpo-39959) and the tracker would either unlink the segment
        the router still uses when the worker exits (spawn: per-child
        tracker) or corrupt the creator's registration (fork: shared
        tracker).  Registration is suppressed for the attach call itself —
        the creating side alone owns unlinking.
        """
        try:  # pragma: no cover - interpreter-version dependent plumbing
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def _skip_shm(name_, rtype):  # noqa: ANN001
                if rtype != "shared_memory":
                    original_register(name_, rtype)

            resource_tracker.register = _skip_shm
            try:
                segment = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        except ImportError:
            segment = shared_memory.SharedMemory(name=name)
        return cls(segment, num_slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    # ------------------------------------------------------------------ #
    def fits(self, num_rows: int, dim: int, itemsize: int = _ITEM) -> bool:
        """Whether an ``(num_rows, dim)`` batch fits in one slot.

        The response (``num_rows`` float64 results, written in place) must
        fit too — narrower request dtypes only shrink the payload while
        ``dim >= 1``, which ``write_batch`` shapes guarantee.
        """
        request = batch_nbytes(num_rows, dim, itemsize)
        return max(request, num_rows * _ITEM) <= self.slot_bytes

    def _slot(self, index: int) -> memoryview:
        if not 0 <= index < self.num_slots:
            raise IndexError(f"slot {index} out of range [0, {self.num_slots})")
        start = index * self.slot_bytes
        return self._segment.buf[start : start + self.slot_bytes]

    def write_batch(
        self,
        index: int,
        queries: np.ndarray,
        thresholds: np.ndarray,
        dtype: np.dtype = _FLOAT,
    ) -> None:
        """Copy one request batch into a slot (the transport's only copy-in)."""
        dtype = np.dtype(dtype)
        n, dim = queries.shape
        if not self.fits(n, dim, dtype.itemsize):
            raise ValueError(
                f"batch of {batch_nbytes(n, dim, dtype.itemsize)} bytes exceeds "
                f"slot size {self.slot_bytes}"
            )
        view = self._slot(index)
        item = dtype.itemsize
        q_bytes = n * dim * item
        q_dst = np.ndarray((n, dim), dtype=dtype, buffer=view[:q_bytes])
        t_dst = np.ndarray((n,), dtype=dtype, buffer=view[q_bytes : q_bytes + n * item])
        np.copyto(q_dst, queries)
        np.copyto(t_dst, thresholds)

    def read_batch(
        self, index: int, num_rows: int, dim: int, dtype: np.dtype = _FLOAT
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy views of a slot's request batch (worker side).

        The views stay valid while the slot is in flight: the router never
        reuses a slot before the worker's reply for it arrives.  ``dtype``
        must match what the router's ``write_batch`` used for this slot.
        """
        dtype = np.dtype(dtype)
        view = self._slot(index)
        item = dtype.itemsize
        q_bytes = num_rows * dim * item
        queries = np.ndarray((num_rows, dim), dtype=dtype, buffer=view[:q_bytes])
        thresholds = np.ndarray(
            (num_rows,), dtype=dtype, buffer=view[q_bytes : q_bytes + num_rows * item]
        )
        return queries, thresholds

    def write_results(self, index: int, results: np.ndarray) -> None:
        """Write the response in place at the head of the slot (worker side)."""
        n = len(results)
        view = self._slot(index)
        dst = np.ndarray((n,), dtype=_FLOAT, buffer=view[: n * _ITEM])
        np.copyto(dst, results)

    def read_results(self, index: int, num_rows: int) -> np.ndarray:
        """Copy the response out of a slot (router side) so it can be freed."""
        view = self._slot(index)
        return np.array(
            np.ndarray((num_rows,), dtype=_FLOAT, buffer=view[: num_rows * _ITEM])
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release this mapping (and the segment itself on the owner side)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a view outlived the ring
            return
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class SlotPool:
    """Blocking free-list of ring-slot indices (router side, thread-safe)."""

    def __init__(self, num_slots: int) -> None:
        self._free: List[int] = list(range(num_slots))
        self._condition = threading.Condition()
        self._closed = False

    def acquire(self, timeout: Optional[float] = None) -> int:
        with self._condition:
            if not self._condition.wait_for(
                lambda: self._free or self._closed, timeout=timeout
            ):
                raise TimeoutError("no free shared-memory slot")
            if self._closed:
                raise RuntimeError("slot pool is closed")
            return self._free.pop()

    def release(self, index: int) -> None:
        with self._condition:
            self._free.append(index)
            self._condition.notify()

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()

"""The network serving tier: sockets, shared-memory shards, autoscaling.

This package turns the sharded :class:`~repro.cluster.EstimationCluster`
into a real service:

* :mod:`repro.net.shm` / :mod:`repro.net.worker` / :mod:`repro.net.backend`
  — the ``network`` shard backend: one worker process per shard, control
  messages over a pipe, batch data through a shared-memory slot ring
  (zero-copy NumPy views; importing this package registers the backend, so
  ``ClusterConfig(backend="network")`` just works);
* :mod:`repro.net.protocol` / :mod:`repro.net.server` /
  :mod:`repro.net.client` — length-prefixed binary frames and JSON/HTTP
  endpoints (``/estimate``, ``/update``, ``/models``, ``/models/reload``,
  ``/stats``, ``/healthz``) behind ``repro serve``;
* :mod:`repro.net.autoscaler` — queue-pressure elasticity with hysteresis
  between ``min_shards`` and ``max_shards``;
* :mod:`repro.net.saturate` — the ``repro saturate`` open-loop saturation
  benchmark (offered-vs-achieved load curves, knee detection).
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .backend import NetworkShardBackend, ShardCrashedError, ShardRequestError
from .client import BinaryClient, HttpClient
from .protocol import ProtocolError, RemoteError
from .saturate import (
    LoadPoint,
    SaturationReport,
    SaturationScenario,
    report_as_dict,
    run_saturation_benchmark,
    transport_roundtrip_compare,
)
from .server import (
    BinaryEstimationServer,
    HttpEstimationServer,
    NetServer,
    ServeApp,
    build_server,
)
from .shm import ShmRing, SlotPool

__all__ = [
    "NetworkShardBackend",
    "ShardCrashedError",
    "ShardRequestError",
    "ShmRing",
    "SlotPool",
    "Autoscaler",
    "AutoscalerConfig",
    "ProtocolError",
    "RemoteError",
    "ServeApp",
    "NetServer",
    "HttpEstimationServer",
    "BinaryEstimationServer",
    "build_server",
    "BinaryClient",
    "HttpClient",
    "SaturationScenario",
    "SaturationReport",
    "LoadPoint",
    "report_as_dict",
    "run_saturation_benchmark",
    "transport_roundtrip_compare",
]

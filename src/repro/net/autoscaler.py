"""Queue-pressure autoscaling for the serving tier.

The :class:`Autoscaler` watches an :class:`~repro.cluster.EstimationCluster`
and calls its :meth:`~repro.cluster.EstimationCluster.scale_to` between
``min_shards`` and ``max_shards``:

* **scale up** when mean queue fill (queue depth over ``queue_capacity``,
  averaged across shards) or recent p99 sub-batch latency stays above the
  high watermarks for ``patience_up`` consecutive observations;
* **scale down** (one shard at a time) when both signals stay below the low
  watermarks for ``patience_down`` consecutive observations.

Both directions are guarded by the same hysteresis machinery — patience
counters reset whenever the pressure signal flips, and every action starts a
``cooldown_seconds`` window during which no further action fires — so a
bursty workload ratchets up quickly but the cluster never flaps around a
threshold.  ``scale_to`` itself swaps the consistent-hash ring before
draining retired shards, so rebalancing drops no responses.

The scaler can run as a daemon thread (:meth:`start` / :meth:`stop`) polling
every ``interval_seconds``, or be driven tick-by-tick via :meth:`observe`
(what the tests and the saturation benchmark do — deterministic, no timing
dependence).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..obs import MetricsRegistry


@dataclass(frozen=True)
class AutoscalerConfig:
    """Watermarks and hysteresis for queue-pressure scaling."""

    min_shards: int = 1
    max_shards: int = 4
    #: scale up when mean queue fill (depth / capacity) exceeds this…
    high_queue_fill: float = 0.5
    #: …or recent p99 sub-batch latency (ms) exceeds this (0 disables)
    high_p99_ms: float = 0.0
    #: scale down when mean queue fill is at or below this
    low_queue_fill: float = 0.05
    #: consecutive pressured observations before growing
    patience_up: int = 2
    #: consecutive idle observations before shrinking (slower than up:
    #: draining a shard is cheap to delay, queueing is not)
    patience_down: int = 6
    #: seconds after any action during which no further action fires
    cooldown_seconds: float = 2.0
    #: polling period of the background thread
    interval_seconds: float = 0.25

    def __post_init__(self) -> None:
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if not 0.0 <= self.low_queue_fill < self.high_queue_fill:
            raise ValueError("need 0 <= low_queue_fill < high_queue_fill")
        if self.patience_up < 1 or self.patience_down < 1:
            raise ValueError("patience counters must be at least 1")


class Autoscaler:
    """Hysteresis-guarded elastic scaling driven by queue-depth pressure."""

    def __init__(
        self,
        cluster,
        config: Optional[AutoscalerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cluster = cluster
        self.config = config or AutoscalerConfig()
        self._clock = clock
        self._up_streak = 0
        self._down_streak = 0
        self._last_action_at: Optional[float] = None
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self.decisions: List[Dict[str, Any]] = []
        # Decision events land in the cluster's registry, so /metrics and
        # `repro top` explain shard-count moves without a separate scrape.
        self.metrics: MetricsRegistry = getattr(cluster, "metrics", None) or MetricsRegistry()
        self._decision_counter = self.metrics.counter(
            "repro_autoscaler_decisions_total",
            "Autoscaler ticks by outcome (up/down/hold/cooldown_skip)",
            ("outcome",),
        )
        self._reset_counter = self.metrics.counter(
            "repro_autoscaler_patience_resets_total",
            "Patience streaks reset by a flipped pressure signal",
            ("direction",),
        )
        self._fill_gauge = self.metrics.gauge(
            "repro_autoscaler_queue_fill", "Mean queue fill at the last tick"
        )
        self._streak_gauge = self.metrics.gauge(
            "repro_autoscaler_streak",
            "Current patience streaks",
            ("direction",),
        )

    # ------------------------------------------------------------------ #
    def _pressure(self) -> Dict[str, float]:
        depths = self.cluster.queue_depths()
        capacity = float(self.cluster.config.queue_capacity)
        mean_fill = (sum(depths) / len(depths) / capacity) if depths else 0.0
        p99_ms = 0.0
        if self.config.high_p99_ms > 0.0:
            percentiles = [
                shard.latency_percentiles()["p99_ms"] for shard in self.cluster._shards
            ]
            p99_ms = max(percentiles) if percentiles else 0.0
        return {"mean_queue_fill": mean_fill, "p99_ms": p99_ms}

    def observe(self) -> Dict[str, Any]:
        """One scaling tick: measure pressure, maybe act, record the decision.

        Returns the decision record (also appended to :attr:`decisions`):
        the observed pressure, both streaks and the action taken
        (``"up"`` / ``"down"`` / ``None``).
        """
        config = self.config
        with self._lock:
            pressure = self._pressure()
            num_shards = self.cluster.num_shards
            hot = pressure["mean_queue_fill"] > config.high_queue_fill or (
                config.high_p99_ms > 0.0 and pressure["p99_ms"] > config.high_p99_ms
            )
            cold = pressure["mean_queue_fill"] <= config.low_queue_fill and not hot
            if not hot and self._up_streak:
                self._reset_counter.labels(direction="up").inc()
            if not cold and self._down_streak:
                self._reset_counter.labels(direction="down").inc()
            self._up_streak = self._up_streak + 1 if hot else 0
            self._down_streak = self._down_streak + 1 if cold else 0

            now = self._clock()
            in_cooldown = (
                self._last_action_at is not None
                and now - self._last_action_at < config.cooldown_seconds
            )
            wants_up = self._up_streak >= config.patience_up and num_shards < config.max_shards
            wants_down = (
                self._down_streak >= config.patience_down and num_shards > config.min_shards
            )
            action: Optional[str] = None
            if not in_cooldown:
                if wants_up:
                    action = "up"
                elif wants_down:
                    action = "down"
            elif wants_up or wants_down:
                self._decision_counter.labels(outcome="cooldown_skip").inc()
            if action is not None:
                target = num_shards + (1 if action == "up" else -1)
                self.cluster.scale_to(target)
                self._last_action_at = now
                self._up_streak = 0
                self._down_streak = 0
                num_shards = target
            self._decision_counter.labels(outcome=action or "hold").inc()
            self._fill_gauge.set(pressure["mean_queue_fill"])
            self._streak_gauge.labels(direction="up").set(self._up_streak)
            self._streak_gauge.labels(direction="down").set(self._down_streak)
            decision = {
                **pressure,
                "num_shards": num_shards,
                "up_streak": self._up_streak,
                "down_streak": self._down_streak,
                "in_cooldown": in_cooldown,
                "action": action,
            }
            self.decisions.append(decision)
            return decision

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        with self._lock:
            actions = [d for d in self.decisions if d["action"] is not None]
            return {
                "min_shards": self.config.min_shards,
                "max_shards": self.config.max_shards,
                "num_shards": self.cluster.num_shards,
                "observations": len(self.decisions),
                "actions": actions[-32:],
                "running": self._thread is not None,
            }

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Poll in a daemon thread every ``interval_seconds`` until stopped."""
        if self._thread is not None:
            return
        self._stop_event.clear()

        def _loop() -> None:
            while not self._stop_event.wait(self.config.interval_seconds):
                try:
                    self.observe()
                except Exception:  # pragma: no cover - cluster shutting down
                    return

        self._thread = threading.Thread(target=_loop, name="repro-autoscaler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None

"""Clients for the two serving transports.

:class:`BinaryClient` speaks the length-prefixed frames of
:mod:`repro.net.protocol` over one persistent TCP connection (raw float64
batches, no JSON in the hot path) — estimation answers come back as NumPy
arrays bit-identical to an in-process cluster call.  :class:`HttpClient`
wraps the JSON endpoints with :mod:`urllib` — zero dependencies, handy for
scripts and the CI smoke test.

Server-side shed decisions survive the wire: a ``STATUS_ERROR`` frame (or
HTTP 503 body) naming :class:`~repro.cluster.ClusterOverloadedError` is
re-raised as that type, so a remote caller's backoff logic is identical to
a local caller's.

Both clients participate in request tracing: ``estimate(..., trace_id=...)``
ships the ID to the server (binary frame field / ``X-Repro-Trace-Id``
header), and constructing a client with ``trace=True`` mints a fresh ID per
request and wraps the round-trip in a ``client.request`` span.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..cluster import ClusterOverloadedError
from ..obs import trace as obstrace
from . import protocol


def _reraise_remote(error: protocol.RemoteError) -> BaseException:
    if error.kind == "ClusterOverloadedError":
        return ClusterOverloadedError(str(error))
    if error.kind == "KeyError":
        return KeyError(str(error))
    return error


class BinaryClient:
    """One persistent binary-protocol connection (thread-safe, serial)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        trace: bool = False,
        dtype: str = "float64",
    ) -> None:
        if dtype not in ("float64", "float32"):
            raise ValueError(f"wire dtype must be 'float64' or 'float32', got {dtype!r}")
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self.trace = trace
        #: wire dtype for outgoing estimate batches (``FLAG_DTYPE32`` when
        #: float32); results always come back float64
        self.dtype = dtype

    def _roundtrip(self, request: bytes) -> Any:
        with self._lock:
            protocol.write_frame(self._sock, request)
            payload = protocol.read_frame(self._sock)
        if payload is None:
            raise protocol.ProtocolError("server closed the connection")
        try:
            return protocol.parse_response(payload)
        except protocol.RemoteError as error:
            raise _reraise_remote(error) from None

    # ------------------------------------------------------------------ #
    def estimate(
        self,
        model: str,
        queries: np.ndarray,
        thresholds: np.ndarray,
        use_cache: bool = True,
        trace_id: Optional[str] = None,
    ) -> np.ndarray:
        if trace_id is None and self.trace:
            trace_id = obstrace.new_trace_id()
        with obstrace.span(
            "client.request", trace_id=trace_id, transport="binary", model=model
        ):
            return self._roundtrip(
                protocol.pack_estimate_request(
                    model,
                    queries,
                    thresholds,
                    use_cache,
                    trace_id=trace_id,
                    dtype=self.dtype,
                )
            )

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip(protocol.pack_control_request(protocol.OP_STATS))

    def models(self) -> Dict[str, Any]:
        return self._roundtrip(protocol.pack_control_request(protocol.OP_MODELS))

    def reload_models(self) -> Dict[str, Any]:
        return self._roundtrip(protocol.pack_control_request(protocol.OP_RELOAD))

    def ping(self) -> Dict[str, Any]:
        return self._roundtrip(protocol.pack_control_request(protocol.OP_PING))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "BinaryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class HttpClient:
    """JSON endpoints over :mod:`urllib` (no third-party HTTP stack)."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0, trace: bool = False
    ) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.trace = trace

    def _request(
        self,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> Any:
        url = self.base_url + path
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if trace_id:
            headers[obstrace.TRACE_HEADER] = trace_id
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8"))
            except Exception:
                raise error from None
            kind = detail.get("error", "")
            message = detail.get("message", "")
            if kind == "ClusterOverloadedError":
                raise ClusterOverloadedError(message) from None
            if kind == "KeyError":
                raise KeyError(message) from None
            raise RuntimeError(f"HTTP {error.code} {kind}: {message}") from None

    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, Any]:
        return self._request("/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._request("/stats")

    def models(self) -> Dict[str, Any]:
        return self._request("/models")

    def metrics_text(self) -> str:
        """The raw Prometheus text from ``GET /metrics``."""
        request = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    def reload_models(self) -> Dict[str, Any]:
        return self._request("/models/reload", body={})

    def estimate(
        self,
        model: str,
        queries: np.ndarray,
        thresholds: np.ndarray,
        use_cache: bool = True,
        trace_id: Optional[str] = None,
    ) -> np.ndarray:
        if trace_id is None and self.trace:
            trace_id = obstrace.new_trace_id()
        body = {
            "model": model,
            "queries": np.asarray(queries, dtype=np.float64).tolist(),
            "thresholds": np.asarray(thresholds, dtype=np.float64).tolist(),
            "use_cache": use_cache,
        }
        with obstrace.span(
            "client.request", trace_id=trace_id, transport="http", model=model
        ):
            response = self._request("/estimate", body=body, trace_id=trace_id)
        return np.asarray(response["results"], dtype=np.float64)

    def update(
        self,
        model: str,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"model": model}
        if inserts is not None:
            body["inserts"] = np.asarray(inserts, dtype=np.float64).tolist()
        if deletes is not None:
            body["deletes"] = list(deletes)
        return self._request("/update", body=body)

"""The ``network`` shard backend: process shards over shared-memory transport.

Registered with the cluster tier as ``backend="network"``.  Each shard is a
dedicated worker process (:mod:`repro.net.worker`) connected by

* a **control pipe** carrying small pickled dicts (operation, model name,
  slot index, counters) — the only thing that is ever pickled; and
* a **shared-memory slot ring** (:class:`repro.net.shm.ShmRing`) carrying
  the batch data: queries and thresholds are copied once into a slot,
  mapped zero-copy in the worker, and the results come back in place.

Replies arrive in submission order (the worker is serial), so the backend
keeps a FIFO of in-flight :class:`_NetFuture` handles and any thread
claiming a result pumps the pipe until its own future settles — fulfilling
earlier futures along the way.  A worker that dies mid-batch is detected by
the pump (pipe EOF / liveness probe) and every outstanding future fails with
:class:`ShardCrashedError` instead of blocking its caller forever.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Sequence, Type

import numpy as np

from ..cluster.backends import _service_config_kwargs, register_backend
from ..estimator import UpdateNotSupportedError
from ..obs import MetricsRegistry, MetricsSnapshot
from ..obs import trace as obstrace
from .shm import DEFAULT_SLOT_BYTES, ShmRing, SlotPool
from .worker import shard_main

#: seconds between liveness probes while waiting for a reply
_POLL_INTERVAL = 0.05
#: seconds to wait for the worker's ready handshake
_READY_TIMEOUT = 120.0


class ShardCrashedError(RuntimeError):
    """The shard worker process died with calls still in flight."""


class ShardRequestError(RuntimeError):
    """One shard call failed inside the worker (traceback included)."""


class _NetFuture:
    """Reply handle fulfilled by the backend's reply pump (thread-safe)."""

    def __init__(self, backend: "NetworkShardBackend", parse: Callable[[Dict[str, Any]], Any]) -> None:
        self._backend = backend
        self._parse = parse
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _complete(self, message: Dict[str, Any]) -> None:
        """Settle from a worker reply (called by the pump, exactly once)."""
        try:
            if message.get("ok"):
                self._value = self._parse(message)
            else:
                self._error = _error_from_reply(message)
        except BaseException as error:  # parse failure
            self._error = error
        self._event.set()

    def cancel(self, error: BaseException) -> bool:
        if self._event.is_set():
            return False
        self._error = error
        self._event.set()
        return True

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self) -> Any:
        if not self._event.is_set():
            self._backend._pump_until(self)
        if self._error is not None:
            raise self._error
        return self._value


#: worker exceptions re-raised as their own type (not ShardRequestError), so
#: cluster semantics — benchmark fallback on UpdateNotSupportedError, HTTP
#: 404 for unknown models, 400 for malformed batches — hold on every backend
_TYPED_ERRORS: Dict[str, Type[BaseException]] = {
    "UpdateNotSupportedError": UpdateNotSupportedError,
    "KeyError": KeyError,
    "ValueError": ValueError,
}


def _error_from_reply(message: Dict[str, Any]) -> BaseException:
    text = message.get("error", "shard call failed")
    kind, _, detail = text.partition(": ")
    if kind in _TYPED_ERRORS:
        return _TYPED_ERRORS[kind](detail or text)
    return ShardRequestError(f"{text}\n--- shard traceback ---\n{message.get('traceback', '')}")


class NetworkShardBackend:
    """A shard in its own process, reached through shared-memory transport."""

    name = "network"

    def __init__(self, config: "ClusterConfig") -> None:
        self._service_kwargs = dict(_service_config_kwargs(config))
        if self._service_kwargs["model_dir"] is not None:
            self._service_kwargs["model_dir"] = str(self._service_kwargs["model_dir"])
        self._shm_dtype = np.dtype(getattr(config, "shm_dtype", "float64"))
        slot_bytes = int(getattr(config, "shm_slot_bytes", DEFAULT_SLOT_BYTES))
        # Slots only carry estimate batches, whose concurrency the cluster
        # bounds at queue_capacity; the margin covers direct backend users.
        num_slots = max(int(config.queue_capacity) + 2, 4)
        self._ring = ShmRing.create(num_slots, slot_bytes)
        self._slots = SlotPool(num_slots)
        context = multiprocessing.get_context()
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=shard_main,
            args=(
                child_conn,
                self._ring.name,
                num_slots,
                slot_bytes,
                self._service_kwargs,
                bool(getattr(config, "warm_models", True)),
                # The frontend's trace sink config rides along at spawn, so
                # autoscaled shards created mid-run trace like the originals.
                obstrace.trace_config(),
            ),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._send_lock = threading.Lock()  # orders sends and the FIFO
        self._pump_lock = threading.Lock()  # one reader on the pipe at a time
        self._inflight: Deque[_NetFuture] = deque()
        self._closed = False
        self.metrics = MetricsRegistry()
        self._shm_batches = self.metrics.counter(
            "repro_net_shm_batches_total", "Batches moved through the shm slot ring"
        )
        self._fallback_batches = self.metrics.counter(
            "repro_net_fallback_batches_total",
            "Oversized batches that fell back to the pickled control pipe",
        )
        self._shm_bytes = self.metrics.counter(
            "repro_net_shm_bytes_total", "Batch bytes written into shm slots"
        )
        ready = self._handshake()
        self.warmed_models = list(ready.get("warmed", []))

    def _handshake(self) -> Dict[str, Any]:
        if not self._conn.poll(_READY_TIMEOUT):
            self.close()
            raise ShardCrashedError("shard worker never became ready")
        try:
            ready = self._conn.recv()
        except (EOFError, OSError) as error:
            self.close()
            raise ShardCrashedError("shard worker died during startup") from error
        if not ready.get("ok"):
            self.close()
            raise ShardCrashedError(f"shard worker failed to start: {ready}")
        return ready

    # ------------------------------------------------------------------ #
    # Submission and the reply pump
    # ------------------------------------------------------------------ #
    def _submit(self, message: Dict[str, Any], parse: Callable[[Dict[str, Any]], Any]) -> _NetFuture:
        future = _NetFuture(self, parse)
        with self._send_lock:
            if self._closed:
                raise RuntimeError("network shard backend is closed")
            try:
                self._conn.send(message)
            except (BrokenPipeError, OSError) as error:
                raise ShardCrashedError("shard worker pipe is broken") from error
            self._inflight.append(future)
        return future

    def _pump_until(self, future: _NetFuture) -> None:
        """Read replies (in FIFO order) until ``future`` settles."""
        while not future.done:
            with self._pump_lock:
                if future.done:
                    return
                if not self._conn.poll(_POLL_INTERVAL):
                    if not self._process.is_alive():
                        self._fail_inflight(
                            ShardCrashedError(
                                f"shard worker (pid {self._process.pid}) died with "
                                "calls in flight"
                            )
                        )
                        return
                    continue
                try:
                    message = self._conn.recv()
                except (EOFError, OSError):
                    self._fail_inflight(
                        ShardCrashedError("shard worker closed its control pipe mid-call")
                    )
                    return
                with self._send_lock:
                    oldest = self._inflight.popleft() if self._inflight else None
                if oldest is not None:
                    oldest._complete(message)

    def _fail_inflight(self, error: BaseException) -> None:
        with self._send_lock:
            pending = list(self._inflight)
            self._inflight.clear()
        for future in pending:
            future.cancel(error)

    # ------------------------------------------------------------------ #
    # Backend operations
    # ------------------------------------------------------------------ #
    @property
    def transport_stats(self) -> Dict[str, int]:
        """The historical transport counter dict (view over the registry)."""
        return {
            "shm_batches": int(self._shm_batches.labels().value),
            "fallback_batches": int(self._fallback_batches.labels().value),
            "shm_bytes": int(self._shm_bytes.labels().value),
        }

    def estimate(
        self, model: str, queries: np.ndarray, thresholds: np.ndarray, use_cache: bool
    ) -> _NetFuture:
        # The configured wire dtype shapes the slot payload; float32 halves
        # the bytes each batch moves through shared memory (the worker's
        # service recasts to float64, results always come back float64).
        wire = self._shm_dtype
        queries = np.ascontiguousarray(queries, dtype=wire)
        thresholds = np.ascontiguousarray(thresholds, dtype=wire)
        n, dim = queries.shape
        trace = obstrace.current_trace_id()
        if self._ring.fits(n, dim, wire.itemsize):
            slot = self._slots.acquire()
            with obstrace.span("transport.shm", rows=n):
                self._ring.write_batch(slot, queries, thresholds, dtype=wire)
            self._shm_batches.inc()
            self._shm_bytes.inc(queries.nbytes + thresholds.nbytes)

            def _parse(message: Dict[str, Any], slot: int = slot) -> np.ndarray:
                results = self._ring.read_results(slot, message["n"])
                self._slots.release(slot)
                return results

            message = {
                "op": "estimate",
                "model": model,
                "slot": slot,
                "n": n,
                "dim": dim,
                "dtype": wire.name,
                "use_cache": bool(use_cache),
                "trace": trace,
            }
            try:
                future = self._submit(message, _parse)
            except BaseException:
                self._slots.release(slot)
                raise
            return future
        # Oversized batch: control-pipe fallback (counted; still correct).
        self._fallback_batches.inc()
        with obstrace.span("transport.pipe", rows=n):
            return self._submit(
                {
                    "op": "estimate",
                    "model": model,
                    "slot": None,
                    "queries": queries,
                    "thresholds": thresholds,
                    "use_cache": bool(use_cache),
                    "trace": trace,
                },
                lambda message: message["results"],
            )

    def update(
        self, model: str, inserts: Optional[np.ndarray], deletes: Optional[Sequence[int]]
    ) -> _NetFuture:
        return self._submit(
            {"op": "update", "model": model, "inserts": inserts, "deletes": deletes},
            lambda message: message["value"],
        )

    def add_model(self, name: str, payload: bytes) -> _NetFuture:
        return self._submit(
            {"op": "add_model", "name": name, "payload": payload},
            lambda message: None,
        )

    def stats(self) -> _NetFuture:
        def _parse(message: Dict[str, Any]) -> Dict[str, Any]:
            value = dict(message["value"])
            value["transport"] = self.transport_stats
            # Fold the frontend-side transport counters into the worker's
            # snapshot, so a cluster-wide merge sees both under one shard.
            worker_metrics = value.get("metrics")
            if worker_metrics is not None:
                value["metrics"] = (
                    MetricsSnapshot.from_dict(worker_metrics)
                    .merge(self.metrics.snapshot())
                    .as_dict()
                )
            return value

        return self._submit({"op": "stats"}, _parse)

    def reload(self) -> _NetFuture:
        return self._submit({"op": "reload"}, lambda message: message["value"])

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        # Any reply still unread belongs to a call the cluster chose not to
        # drain; fail it with a clear error rather than losing it silently.
        self._fail_inflight(
            ShardCrashedError("network shard backend closed with calls in flight")
        )
        try:
            self._conn.send({"op": "shutdown"})
        except (BrokenPipeError, OSError):
            pass
        if self._process.is_alive():
            self._process.join(timeout=10.0)
            if self._process.is_alive():  # pragma: no cover - last resort
                self._process.terminate()
                self._process.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self._slots.close()
        self._ring.close()


register_backend(NetworkShardBackend.name, NetworkShardBackend)

"""The network serving tier: HTTP (JSON) and binary TCP front ends.

:class:`ServeApp` is the transport-agnostic application object — it owns the
:class:`~repro.cluster.EstimationCluster`, an optional
:class:`~repro.net.autoscaler.Autoscaler` and a model *catalog* (a
zero-capacity :class:`~repro.serving.EstimationService` used purely to list
and describe on-disk artifacts from their sidecars, never to load weights).
Two servers front it:

* :class:`HttpEstimationServer` — ``ThreadingHTTPServer`` speaking JSON:
  ``GET /healthz``, ``GET /stats``, ``GET /models``, ``POST /estimate``,
  ``POST /update``, ``POST /models/reload``;
* :class:`BinaryEstimationServer` — ``socketserver.ThreadingTCPServer``
  speaking the length-prefixed frames of :mod:`repro.net.protocol`
  (persistent connections, raw float64 batches — the low-latency path the
  saturation benchmark drives).

Both map failures to transport-appropriate errors: an overloaded cluster
(shed admission) becomes HTTP 503 / a typed ``STATUS_ERROR`` frame, an
unknown model 404, a malformed batch 400.  :class:`NetServer` bundles the
two servers plus the autoscaler thread behind one ``start`` / ``stop`` pair
— the object ``repro serve`` runs.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..cluster import ClusterConfig, ClusterOverloadedError, EstimationCluster
from ..obs import MetricsRegistry, MetricsSnapshot, aggregate_histogram, histogram_percentile
from ..obs import trace as obstrace
from ..serving import EstimationService
from .autoscaler import Autoscaler, AutoscalerConfig
from . import protocol

#: histogram families surfaced as the per-layer latency summary in /stats
_LAYER_HISTOGRAMS = {
    "server.request": "repro_app_request_latency_seconds",
    "cluster.sub_batch": "repro_cluster_sub_batch_latency_seconds",
    "service.estimate": "repro_service_estimate_latency_seconds",
}


class ServeApp:
    """Transport-agnostic serving application over one estimation cluster."""

    def __init__(
        self,
        cluster: EstimationCluster,
        autoscaler: Optional[Autoscaler] = None,
    ) -> None:
        self.cluster = cluster
        self.autoscaler = autoscaler
        model_dir = cluster.config.model_dir
        self.catalog = EstimationService(model_dir=model_dir, cache_capacity=0)
        self.started_at = time.time()
        self.metrics = MetricsRegistry()
        self._endpoint_counter = self.metrics.counter(
            "repro_app_requests_total", "Frontend requests by endpoint", ("endpoint",)
        )
        self._request_latency = self.metrics.histogram(
            "repro_app_request_latency_seconds",
            "Frontend handler latency by endpoint",
            ("endpoint",),
        )

    def _count(self, endpoint: str) -> None:
        self._endpoint_counter.labels(endpoint=endpoint).inc()

    @property
    def request_counts(self) -> Dict[str, int]:
        return {
            labels["endpoint"]: int(child.value)
            for labels, child in self._endpoint_counter.series()
        }

    # ------------------------------------------------------------------ #
    # Operations (shared by both transports)
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        model: str,
        queries: np.ndarray,
        thresholds: np.ndarray,
        use_cache: bool = True,
    ) -> np.ndarray:
        self._count("estimate")
        start = time.perf_counter()
        try:
            return self.cluster.estimate(model, queries, thresholds, use_cache=use_cache)
        finally:
            self._request_latency.labels(endpoint="estimate").observe(
                time.perf_counter() - start
            )

    def update(self, model: str, inserts, deletes) -> Any:
        self._count("update")
        start = time.perf_counter()
        try:
            return self.cluster.update(model, inserts=inserts, deletes=deletes)
        finally:
            self._request_latency.labels(endpoint="update").observe(
                time.perf_counter() - start
            )

    def reload_models(self) -> Dict[str, Any]:
        self._count("reload")
        return {"shards": self.cluster.reload_models()}

    def models(self) -> Dict[str, Any]:
        self._count("models")
        return {
            "models": self.catalog.available_models(),
            "described": self.catalog.describe_models(),
        }

    def stats(self) -> Dict[str, Any]:
        self._count("stats")
        cluster_stats = self.cluster.stats()
        payload = {
            "uptime_seconds": time.time() - self.started_at,
            "endpoints": self.request_counts,
            "cluster": cluster_stats,
            "cache_bytes": sum(
                int(entry.get("cache", {}).get("bytes", 0))
                for entry in cluster_stats.get("per_shard", [])
            ),
            "layers": self._layer_summary(cluster_stats),
        }
        if self.autoscaler is not None:
            payload["autoscaler"] = self.autoscaler.describe()
        return payload

    def _layer_summary(self, cluster_stats: Dict[str, Any]) -> Dict[str, Any]:
        """p50/p99 + count per latency histogram, across all shards/models."""
        snapshot = self.metrics_snapshot(cluster_stats)
        layers: Dict[str, Any] = {}
        for layer, family in _LAYER_HISTOGRAMS.items():
            data = aggregate_histogram(snapshot, family)
            if data is None or not data["count"]:
                continue
            layers[layer] = {
                "count": int(data["count"]),
                "p50_ms": 1000.0 * histogram_percentile(data, 50.0),
                "p99_ms": 1000.0 * histogram_percentile(data, 99.0),
            }
        return layers

    def metrics_snapshot(
        self, cluster_stats: Optional[Dict[str, Any]] = None
    ) -> MetricsSnapshot:
        """One merged snapshot: app counters + cluster + per-shard workers.

        The catalog service's registry is deliberately excluded — its series
        are labeled ``(model,)`` while worker series carry ``(model, shard)``,
        and the catalog never serves estimates anyway.
        """
        merged = self.cluster.metrics_snapshot(stats=cluster_stats)
        return merged.merge(self.metrics.snapshot())

    def metrics_text(self) -> str:
        """Prometheus text exposition for ``GET /metrics``."""
        cluster_stats = self.cluster.stats()
        snapshot = self.metrics_snapshot(cluster_stats)
        # Derived gauges that only exist at scrape time: per-shard worker
        # cache hit rate, plus uptime — built in a transient registry so the
        # live ones stay pure counters.
        derived = MetricsRegistry()
        hit_rate = derived.gauge(
            "repro_cache_hit_rate", "Worker curve-cache hit rate", ("shard",)
        )
        for entry in cluster_stats.get("per_shard", []):
            cache = entry.get("worker", {}).get("cache")
            if cache:
                hit_rate.labels(shard=str(entry["shard"])).set(cache.get("hit_rate", 0.0))
        derived.gauge("repro_app_uptime_seconds", "Seconds since app start").set(
            time.time() - self.started_at
        )
        return snapshot.merge(derived.snapshot()).to_prometheus()

    def healthz(self) -> Dict[str, Any]:
        return {"ok": True, "num_shards": self.cluster.num_shards}


def _error_status(error: BaseException) -> int:
    if isinstance(error, ClusterOverloadedError):
        return 503
    if isinstance(error, KeyError):
        return 404
    if isinstance(error, (ValueError, json.JSONDecodeError)):
        return 400
    return 500


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #
class _HttpHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging is the caller's concern, not stderr's

    def _send_json(self, status: int, value: Any, trace_id: Optional[str] = None) -> None:
        body = json.dumps(value).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id:
            self.send_header(obstrace.TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, error: BaseException) -> None:
        self._send_json(
            _error_status(error),
            {"error": type(error).__name__, "message": str(error)},
        )

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body; expected JSON")
        return json.loads(raw.decode("utf-8"))

    def _send_text(self, status: int, body: str, trace_id: Optional[str] = None) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        if trace_id:
            self.send_header(obstrace.TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802
        try:
            if self.path == "/healthz":
                self._send_json(200, self.app.healthz())
            elif self.path == "/stats":
                self._send_json(200, self.app.stats())
            elif self.path == "/models":
                self._send_json(200, self.app.models())
            elif self.path == "/metrics":
                self._send_text(200, self.app.metrics_text())
            else:
                self._send_json(404, {"error": "NotFound", "message": self.path})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:
            self._send_error_json(error)

    def do_POST(self) -> None:  # noqa: N802
        trace_id = self.headers.get(obstrace.TRACE_HEADER)
        if trace_id is None and obstrace.tracing_enabled():
            # A server run with --trace-out records every (sampled) request,
            # not just those from trace-aware clients.
            trace_id = obstrace.new_trace_id()
        try:
            if self.path == "/estimate":
                body = self._read_json_body()
                queries = np.asarray(body["queries"], dtype=np.float64)
                thresholds = np.asarray(body["thresholds"], dtype=np.float64)
                with obstrace.trace_context(trace_id), obstrace.span(
                    "server.estimate", transport="http", model=body["model"]
                ):
                    results = self.app.estimate(
                        body["model"], queries, thresholds,
                        use_cache=bool(body.get("use_cache", True)),
                    )
                response = {"model": body["model"], "results": results.tolist()}
                if trace_id:
                    response["trace_id"] = trace_id
                self._send_json(200, response, trace_id=trace_id)
            elif self.path == "/update":
                body = self._read_json_body()
                inserts = body.get("inserts")
                if inserts is not None:
                    inserts = np.asarray(inserts, dtype=np.float64)
                summaries = self.app.update(body["model"], inserts, body.get("deletes"))
                self._send_json(200, {"model": body["model"], "shards": summaries})
            elif self.path == "/models/reload":
                self._send_json(200, self.app.reload_models())
            else:
                self._send_json(404, {"error": "NotFound", "message": self.path})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as error:
            self._send_error_json(error)


class HttpEstimationServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServeApp) -> None:
        super().__init__(address, _HttpHandler)
        self.app = app


# ---------------------------------------------------------------------- #
# Binary front end
# ---------------------------------------------------------------------- #
class _BinaryHandler(socketserver.BaseRequestHandler):
    """One persistent connection: frames in, frames out, until EOF."""

    def handle(self) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        sock: socket.socket = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                payload = protocol.read_frame(sock)
            except (protocol.ProtocolError, OSError):
                return
            if payload is None:
                return
            try:
                op, fields = protocol.parse_request(payload)
                if op == protocol.OP_ESTIMATE:
                    trace_id = fields.get("trace")
                    if trace_id is None and obstrace.tracing_enabled():
                        trace_id = obstrace.new_trace_id()
                    with obstrace.trace_context(trace_id), obstrace.span(
                        "server.estimate", transport="binary", model=fields["model"]
                    ):
                        results = app.estimate(
                            fields["model"],
                            fields["queries"],
                            fields["thresholds"],
                            use_cache=fields["use_cache"],
                        )
                    response = protocol.pack_results_response(results)
                elif op == protocol.OP_STATS:
                    response = protocol.pack_json_response(app.stats())
                elif op == protocol.OP_MODELS:
                    response = protocol.pack_json_response(app.models())
                elif op == protocol.OP_RELOAD:
                    response = protocol.pack_json_response(app.reload_models())
                elif op == protocol.OP_PING:
                    response = protocol.pack_json_response(app.healthz())
                else:
                    raise protocol.ProtocolError(f"unknown opcode {op}")
            except Exception as error:
                response = protocol.pack_error_response(error)
            try:
                protocol.write_frame(sock, response)
            except OSError:
                return


class BinaryEstimationServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServeApp) -> None:
        super().__init__(address, _BinaryHandler)
        self.app = app


# ---------------------------------------------------------------------- #
# The bundle `repro serve` runs
# ---------------------------------------------------------------------- #
class NetServer:
    """HTTP + binary servers + autoscaler behind one start/stop pair.

    ``port`` serves HTTP; the binary protocol listens on ``port + 1`` unless
    ``binary_port`` says otherwise (``0`` picks an ephemeral port, handy for
    tests; ``None`` disables the binary listener).
    """

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 8585,
        binary_port: Optional[int] = -1,
    ) -> None:
        self.app = app
        self.http_server = HttpEstimationServer((host, port), app)
        self.binary_server: Optional[BinaryEstimationServer] = None
        if binary_port is not None:
            resolved = self.http_address[1] + 1 if binary_port == -1 else binary_port
            self.binary_server = BinaryEstimationServer((host, resolved), app)
        self._threads: list = []
        self._started = False

    @property
    def http_address(self) -> Tuple[str, int]:
        return self.http_server.server_address[:2]

    @property
    def binary_address(self) -> Optional[Tuple[str, int]]:
        if self.binary_server is None:
            return None
        return self.binary_server.server_address[:2]

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        servers = [self.http_server]
        if self.binary_server is not None:
            servers.append(self.binary_server)
        for server in servers:
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"poll_interval": 0.1},
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.app.autoscaler is not None:
            self.app.autoscaler.start()

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        if self.app.autoscaler is not None:
            self.app.autoscaler.stop()
        self.http_server.shutdown()
        self.http_server.server_close()
        if self.binary_server is not None:
            self.binary_server.shutdown()
            self.binary_server.server_close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        self.app.cluster.close()

    def __enter__(self) -> "NetServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def build_server(
    model_dir,
    host: str = "127.0.0.1",
    port: int = 8585,
    binary_port: Optional[int] = -1,
    num_shards: int = 1,
    backend: str = "network",
    queue_capacity: int = 8,
    overload_policy: str = "block",
    autoscale: bool = False,
    min_shards: int = 1,
    max_shards: int = 4,
    **cluster_overrides,
) -> NetServer:
    """Assemble cluster + autoscaler + servers (the ``repro serve`` recipe)."""
    cluster = EstimationCluster(
        ClusterConfig(
            num_shards=num_shards,
            model_dir=model_dir,
            backend=backend,
            queue_capacity=queue_capacity,
            overload_policy=overload_policy,
            **cluster_overrides,
        )
    )
    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(
            cluster,
            AutoscalerConfig(min_shards=min_shards, max_shards=max_shards),
        )
    return NetServer(ServeApp(cluster, autoscaler), host=host, port=port, binary_port=binary_port)

"""Open-loop saturation benchmarking of the network serving tier.

``repro saturate`` stands up a real :class:`~repro.net.server.NetServer`
(binary transport, loopback TCP) per scenario and sweeps *offered* load
against it: batches are dispatched on a fixed wall-clock schedule —
independent of how fast the server answers, which is what makes the loop
*open* — by a pool of sender threads each holding its own persistent
:class:`~repro.net.client.BinaryClient` connection.  For every offered rate
the sweep records the *achieved* rate, batch-latency percentiles, shed
counts and the shard count the autoscaler settled on; the **knee** of a
scenario is the highest offered rate the tier still sustains (achieved ≥
``KNEE_EFFICIENCY`` × offered).  A transport micro-benchmark comparing the
shared-memory ``network`` backend against the pickling ``process`` backend
on single-batch round trips rides along.  Results land in ``BENCH_net.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import ClusterConfig, ClusterOverloadedError, EstimationCluster
from ..obs import trace as obstrace
from .client import BinaryClient
from .server import build_server

#: a load point "sustains" its offered rate when achieved/offered is ≥ this
KNEE_EFFICIENCY = 0.9


@dataclass(frozen=True)
class SaturationScenario:
    """One serving configuration to sweep offered load against."""

    name: str
    backend: str = "network"
    num_shards: int = 1
    queue_capacity: int = 8
    overload_policy: str = "block"
    autoscale: bool = False
    min_shards: int = 1
    max_shards: int = 4


@dataclass
class LoadPoint:
    """Measurements at one offered rate."""

    offered_rps: float
    achieved_rps: float
    batches_sent: int
    batches_completed: int
    batches_shed: int
    mean_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    num_shards: int


@dataclass
class SaturationReport:
    """One scenario's full sweep (JSON-able via :func:`dataclasses.asdict`)."""

    scenario: str
    backend: str
    batch_size: int
    connections: int
    points: List[LoadPoint] = field(default_factory=list)
    knee_rps: float = 0.0
    peak_achieved_rps: float = 0.0
    scale_events: List[Dict[str, Any]] = field(default_factory=list)
    final_shards: int = 0

    @property
    def text(self) -> str:
        lines = [
            f"saturate: scenario={self.scenario} backend={self.backend} "
            f"batch={self.batch_size} connections={self.connections}",
            f"  knee: {self.knee_rps:,.0f} requests/s sustained "
            f"(peak achieved {self.peak_achieved_rps:,.0f} r/s, "
            f"{self.final_shards} shard(s) at end, "
            f"{len(self.scale_events)} scale event(s))",
        ]
        for point in self.points:
            lines.append(
                f"  offered {point.offered_rps:>9,.0f} r/s -> achieved "
                f"{point.achieved_rps:>9,.0f} r/s  p99 {point.p99_latency_ms:7.1f} ms  "
                f"shards {point.num_shards}  shed {point.batches_shed}"
            )
        return "\n".join(lines)


def _drive_load(
    address: Tuple[str, int],
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    offered_rps: float,
    duration_seconds: float,
    batch_size: int,
    connections: int,
    seed: int,
) -> Dict[str, Any]:
    """Send batches at a fixed schedule; measure what actually completes."""
    total_batches = max(int(offered_rps * duration_seconds / batch_size), 1)
    interval = batch_size / offered_rps
    pool = len(thresholds)
    rng = np.random.default_rng(seed)
    picks = rng.integers(0, pool, size=(total_batches, batch_size))

    cursor_lock = threading.Lock()
    cursor = [0]
    latencies: List[float] = []
    completed = [0]
    shed = [0]
    record_lock = threading.Lock()
    start = time.perf_counter()

    def _sender() -> None:
        # When `repro saturate --trace-out` configured a sink, every batch
        # gets a trace ID: the sender's client.request span and the server
        # and worker-side spans all land in the same JSONL file.
        client = BinaryClient(address[0], address[1], trace=obstrace.tracing_enabled())
        try:
            while True:
                with cursor_lock:
                    index = cursor[0]
                    if index >= total_batches:
                        return
                    cursor[0] += 1
                # Open loop: wait for this batch's scheduled send time (a
                # server falling behind just means the wait is already over).
                delay = start + index * interval - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                rows = picks[index]
                tick = time.perf_counter()
                try:
                    client.estimate(model, queries[rows], thresholds[rows])
                except ClusterOverloadedError:
                    with record_lock:
                        shed[0] += 1
                    continue
                latency = 1000.0 * (time.perf_counter() - tick)
                with record_lock:
                    latencies.append(latency)
                    completed[0] += 1
        finally:
            client.close()

    threads = [threading.Thread(target=_sender, daemon=True) for _ in range(connections)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    array = np.asarray(latencies) if latencies else np.zeros(1)
    return {
        "offered_rps": offered_rps,
        "achieved_rps": completed[0] * batch_size / elapsed if elapsed > 0 else 0.0,
        "batches_sent": total_batches,
        "batches_completed": completed[0],
        "batches_shed": shed[0],
        "mean_latency_ms": float(array.mean()),
        "p50_latency_ms": float(np.percentile(array, 50)),
        "p95_latency_ms": float(np.percentile(array, 95)),
        "p99_latency_ms": float(np.percentile(array, 99)),
    }


def run_saturation_benchmark(
    scenario: SaturationScenario,
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    estimator=None,
    model_dir=None,
    offered_loads: Sequence[float] = (250.0, 1000.0, 4000.0, 16000.0),
    duration_seconds: float = 2.0,
    batch_size: int = 32,
    connections: int = 4,
    seed: int = 0,
) -> SaturationReport:
    """Sweep offered load against one freshly built serving tier.

    The model comes either from ``model_dir`` (shards warm it at spawn) or
    as an in-memory ``estimator`` replicated to every shard.  Each offered
    rate gets ``duration_seconds`` of scheduled traffic after a small
    warm-up burst (so the first point does not pay cache/model cold starts).
    """
    server = build_server(
        model_dir,
        host="127.0.0.1",
        port=0,
        binary_port=0,
        num_shards=scenario.num_shards,
        backend=scenario.backend,
        queue_capacity=scenario.queue_capacity,
        overload_policy=scenario.overload_policy,
        autoscale=scenario.autoscale,
        min_shards=scenario.min_shards,
        max_shards=scenario.max_shards,
    )
    report = SaturationReport(
        scenario=scenario.name,
        backend=scenario.backend,
        batch_size=batch_size,
        connections=connections,
    )
    with server:
        cluster = server.app.cluster
        if estimator is not None:
            cluster.add_model(model, estimator)
        address = server.binary_address
        assert address is not None
        # Warm-up: fill curve caches / compiled kernels off the clock.
        warm = BinaryClient(address[0], address[1])
        try:
            for _ in range(4):
                warm.estimate(model, queries[:batch_size], thresholds[:batch_size])
        finally:
            warm.close()
        for offered in offered_loads:
            point = _drive_load(
                address,
                model,
                queries,
                thresholds,
                offered_rps=float(offered),
                duration_seconds=duration_seconds,
                batch_size=batch_size,
                connections=connections,
                seed=seed,
            )
            point["num_shards"] = cluster.num_shards
            report.points.append(LoadPoint(**point))
        stats = cluster.stats()
        report.scale_events = stats["scale_events"]
        report.final_shards = stats["num_shards"]
    sustained = [
        p.offered_rps for p in report.points
        if p.achieved_rps >= KNEE_EFFICIENCY * p.offered_rps
    ]
    report.peak_achieved_rps = max((p.achieved_rps for p in report.points), default=0.0)
    # Past the knee the tier saturates: offered load keeps rising but the
    # achieved rate flattens at (roughly) the peak.
    report.knee_rps = max(sustained) if sustained else report.peak_achieved_rps
    return report


def transport_roundtrip_compare(
    estimator,
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    batch_sizes: Sequence[int] = (32, 128, 256),
    repeats: int = 20,
) -> Dict[str, Any]:
    """Median single-batch round-trip latency: shm transport vs pickling.

    Both clusters are one process shard hosting the same in-memory model;
    the only difference is how a batch crosses the process boundary —
    through the ``network`` backend's shared-memory slots or through the
    ``process`` backend's pickled ``ProcessPoolExecutor`` task arguments.
    """
    results: Dict[str, Any] = {"batch_sizes": list(batch_sizes), "repeats": repeats}
    for backend in ("network", "process"):
        cluster = EstimationCluster(ClusterConfig(num_shards=1, backend=backend))
        per_batch: Dict[str, float] = {}
        try:
            cluster.add_model(model, estimator)
            cluster.estimate(model, queries[:8], thresholds[:8])  # warm up
            for batch in batch_sizes:
                rows = np.arange(batch) % len(thresholds)
                samples = []
                for _ in range(repeats):
                    tick = time.perf_counter()
                    cluster.estimate(model, queries[rows], thresholds[rows])
                    samples.append(1000.0 * (time.perf_counter() - tick))
                per_batch[str(batch)] = float(np.median(samples))
        finally:
            cluster.close()
        results[backend] = {"median_roundtrip_ms": per_batch}
    network = results["network"]["median_roundtrip_ms"]
    process = results["process"]["median_roundtrip_ms"]
    results["speedup_process_over_network"] = {
        key: process[key] / network[key] if network[key] > 0 else float("inf")
        for key in network
    }
    return results


#: acceptable served-estimate deviation introduced by cache quantization,
#: relative to the same service with full float64 curves
CACHE_QUANT_BUDGETS = {8: 2e-2, 16: 1e-3}


def cache_density_compare(
    estimator,
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    max_bytes: int = 256 * 1024,
    curve_resolution: int = 256,
    quantize_bits: int = 8,
    max_queries: int = 1500,
    sample: int = 64,
) -> Dict[str, Any]:
    """Cached curves per byte: quantized vs full-precision curve cache.

    Two identical in-process services share one fixed cache byte budget;
    one stores full float64 curves, the other re-encodes every curve to
    ``quantize_bits``-bit codes against the interned threshold grid.  The
    same distinct-query stream flows through both, and the comparison
    reports how many curves each cache retains under the budget plus the
    worst relative deviation the quantized cache introduces on served
    (cache-hit) estimates — checked against :data:`CACHE_QUANT_BUDGETS`.

    Small workloads are tiled out to ``max_queries`` *distinct* cache keys
    by jittering repeated queries well above the cache's key rounding —
    density under a byte budget is only measurable once the stream is
    large enough to put both caches under eviction pressure.
    """
    from ..serving import EstimationService

    queries = np.asarray(queries, dtype=np.float64)[:max_queries]
    thresholds = np.asarray(thresholds, dtype=np.float64)[:max_queries]
    if 0 < len(queries) < max_queries:
        reps = -(-max_queries // len(queries))
        rng = np.random.default_rng(0)
        tiled = np.tile(queries, (reps, 1))[:max_queries]
        # 1e-6 jitter: far above the default 1e-10 key rounding (every
        # copy is a distinct cache entry), far below query scale (the
        # stream stays in-distribution for the estimator).
        tiled[len(queries) :] += 1e-6 * rng.standard_normal(
            tiled[len(queries) :].shape
        )
        queries = tiled
        thresholds = np.tile(thresholds, reps)[:max_queries]
    budget = CACHE_QUANT_BUDGETS[int(quantize_bits)]

    def build(bits: Optional[int]) -> "EstimationService":
        service = EstimationService(
            cache_capacity=1_000_000,
            curve_resolution=curve_resolution,
            cache_max_bytes=max_bytes,
            cache_quantize_bits=bits,
        )
        service.add_model(model, estimator)
        for start in range(0, len(thresholds), 256):
            stop = min(start + 256, len(thresholds))
            service.estimate(model, queries[start:stop], thresholds[start:stop])
        return service

    full = build(None)
    quant = build(quantize_bits)

    # The most recent `sample` queries survive LRU eviction in both caches;
    # re-serving them hits the cached curves, so the difference between the
    # two services' answers is exactly the quantization error.
    sample = min(sample, len(full.cache), len(quant.cache), len(thresholds))
    tail_queries = queries[len(queries) - sample :]
    tail_thresholds = thresholds[len(thresholds) - sample :]
    served_full = full.estimate(model, tail_queries, tail_thresholds)
    served_quant = quant.estimate(model, tail_queries, tail_thresholds)
    direct = np.asarray(estimator.estimate(tail_queries, tail_thresholds), dtype=np.float64)
    scale_full = np.maximum(np.abs(served_full), 1.0)
    scale_direct = np.maximum(np.abs(direct), 1.0)
    dev_vs_full = float(np.max(np.abs(served_quant - served_full) / scale_full))
    dev_vs_direct = float(np.max(np.abs(served_quant - direct) / scale_direct))

    def side(service: "EstimationService") -> Dict[str, Any]:
        stats = service.cache.stats()
        curves = int(stats["size"])
        nbytes = int(stats["bytes"])
        return {
            "cached_curves": curves,
            "bytes": nbytes,
            "bytes_per_curve": nbytes / curves if curves else 0.0,
            "curves_per_mb": curves * (1 << 20) / nbytes if nbytes else 0.0,
            "grids": int(stats["grids"]),
            "evictions": int(stats["evictions"]),
        }

    full_side, quant_side = side(full), side(quant)
    return {
        "max_bytes": int(max_bytes),
        "curve_resolution": int(curve_resolution),
        "quantize_bits": int(quantize_bits),
        "distinct_queries_offered": int(len(queries)),
        "sampled_hits": int(sample),
        "full": full_side,
        "quantized": quant_side,
        "density_ratio": (
            quant_side["cached_curves"] / full_side["cached_curves"]
            if full_side["cached_curves"]
            else float("inf")
        ),
        "max_rel_deviation_vs_full_cache": dev_vs_full,
        "max_rel_deviation_vs_direct": dev_vs_direct,
        "error_budget": budget,
        "within_budget": dev_vs_full <= budget,
    }


def report_as_dict(report: SaturationReport) -> Dict[str, Any]:
    return asdict(report)

"""The shard worker process: one `EstimationService` behind a control pipe.

``shard_main`` is the entry point the ``network`` backend spawns one process
per shard for.  The worker owns a full :class:`~repro.serving.
EstimationService` (its own model store and curve cache), warms every
disk-backed model at spawn (so a freshly autoscaled shard serves its first
request without paying model-load latency), then answers control messages in
FIFO order:

``estimate``
    Batch rows arrive through the shared-memory ring (zero-copy NumPy views
    over the slot) or inline in the message for oversized batches; results
    are written back into the same slot.
``add_model`` / ``update`` / ``stats`` / ``reload`` / ``shutdown``
    Control-plane operations, pickled over the pipe (small payloads only).

Because the worker is strictly serial, a ``reload`` is naturally ordered
after every batch already in its pipe — hot model swaps never interrupt an
in-flight request.  Every reply carries ``ok``; failures ship the traceback
text back to the router, which raises them in the caller.
"""

from __future__ import annotations

import os
import pickle
import traceback
from typing import Any, Dict, Optional

from ..obs import trace as obstrace
from .shm import ShmRing


def _safe_reply(connection, payload: Dict[str, Any]) -> None:
    try:
        connection.send(payload)
    except (BrokenPipeError, OSError):  # router is gone; nothing left to do
        raise SystemExit(0)


def shard_main(
    connection,
    ring_name: str,
    num_slots: int,
    slot_bytes: int,
    service_kwargs: Dict[str, Any],
    warm_models: bool = True,
    trace_config: Optional[Dict[str, Any]] = None,
) -> None:
    """Run one shard worker until ``shutdown`` or the control pipe closes."""
    from ..estimator import UpdateNotSupportedError  # noqa: F401 (unpickling)
    from ..serving import EstimationService

    if trace_config:
        # Same JSONL sink as the frontend (O_APPEND keeps lines whole across
        # processes); sampling is deterministic per trace ID, so this worker
        # records exactly the traces the frontend records.
        obstrace.configure_tracing(
            trace_config["path"], trace_config.get("sample", 1.0), role="shard"
        )
    service = EstimationService(**service_kwargs)
    warmed = service.preload() if warm_models else []
    ring = ShmRing.attach(ring_name, num_slots, slot_bytes)
    _safe_reply(connection, {"ok": True, "op": "ready", "pid": os.getpid(), "warmed": warmed})

    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            op = message.get("op")
            if op == "shutdown":
                break
            try:
                if op == "estimate":
                    slot = message.get("slot")
                    if slot is None:  # oversized batch: inline fallback
                        queries = message["queries"]
                        thresholds = message["thresholds"]
                    else:
                        # Routers predating the dtype field always wrote
                        # float64 slots, so the default keeps them working.
                        queries, thresholds = ring.read_batch(
                            slot,
                            message["n"],
                            message["dim"],
                            dtype=message.get("dtype", "float64"),
                        )
                    trace = message.get("trace")
                    with obstrace.trace_context(trace), obstrace.span(
                        "worker.estimate",
                        model=message["model"],
                        rows=len(thresholds),
                        via="shm" if slot is not None else "pipe",
                    ):
                        results = service.estimate(
                            message["model"],
                            queries,
                            thresholds,
                            use_cache=message["use_cache"],
                        )
                    if slot is None:
                        _safe_reply(
                            connection, {"ok": True, "op": op, "results": results}
                        )
                    else:
                        ring.write_results(slot, results)
                        _safe_reply(
                            connection,
                            {"ok": True, "op": op, "slot": slot, "n": len(results)},
                        )
                elif op == "add_model":
                    service.add_model(message["name"], pickle.loads(message["payload"]))
                    _safe_reply(connection, {"ok": True, "op": op})
                elif op == "update":
                    reports = service.update(
                        message["model"],
                        inserts=message["inserts"],
                        deletes=message["deletes"],
                    )
                    _safe_reply(
                        connection,
                        {
                            "ok": True,
                            "op": op,
                            "value": {"model": message["model"], "operations": len(reports)},
                        },
                    )
                elif op == "stats":
                    _safe_reply(connection, {"ok": True, "op": op, "value": service.stats()})
                elif op == "reload":
                    _safe_reply(
                        connection,
                        {"ok": True, "op": op, "value": service.reload_models()},
                    )
                else:
                    raise ValueError(f"unknown shard operation {op!r}")
            except SystemExit:
                raise
            except BaseException as error:
                _safe_reply(
                    connection,
                    {
                        "ok": False,
                        "op": op,
                        "slot": message.get("slot"),
                        "error": f"{type(error).__name__}: {error}",
                        "traceback": traceback.format_exc(),
                    },
                )
    finally:
        ring.close()
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass

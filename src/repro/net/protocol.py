"""Length-prefixed binary wire protocol for the estimation service.

Every message is one *frame*::

    +--------+--------+----------------------+
    | magic  | length |       payload        |
    | 2 B    | u32 BE |     `length` bytes   |
    +--------+--------+----------------------+

with ``magic = b"SE"`` guarding against a stray HTTP client on the binary
port.  The payload starts with a one-byte opcode; numeric batch data
travels as raw little-endian float64 — no pickling on the wire, and the
arrays a server reads out of a request frame are the exact bytes the client
wrote (so a network round trip is bit-identical to an in-process call).

Request payloads
----------------
``OP_ESTIMATE``
    ``u8 op | u8 flags | u16 model_len | model utf-8 | u32 n | u32 dim |
    n*dim f64 queries | n f64 thresholds [| trace utf-8]`` — flags bit 0 =
    use_cache, flags bit 1 = a trace ID is appended *after* the thresholds
    (at the end so every pre-trace offset parses unchanged; a server that
    does not know the flag still reads the batch correctly), flags bit 2 =
    the query/threshold payload is float32 instead of float64 (halving the
    batch bytes on the wire; responses are always float64).  A pre-dtype
    peer never *receives* bit 2 — clients only set it when asked to — so
    every frame such a peer sees parses exactly as before.
``OP_STATS`` / ``OP_MODELS`` / ``OP_RELOAD`` / ``OP_PING``
    ``u8 op`` alone.

Response payloads
-----------------
``STATUS_OK`` for an estimate: ``u8 status | u32 n | n f64 results``.
``STATUS_OK_JSON`` for control operations: ``u8 status | utf-8 JSON``.
``STATUS_ERROR``: ``u8 status | u16 kind_len | kind utf-8 | utf-8 message``
(``kind`` is the exception class name, e.g. ``ClusterOverloadedError``, so
clients can re-raise shed errors as the right type).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

MAGIC = b"SE"
MAX_FRAME_BYTES = 64 * 1024 * 1024  # refuse absurd lengths before allocating

OP_ESTIMATE = 1
OP_STATS = 2
OP_MODELS = 3
OP_RELOAD = 4
OP_PING = 5

STATUS_OK = 0
STATUS_OK_JSON = 1
STATUS_ERROR = 2

FLAG_USE_CACHE = 1
FLAG_TRACE = 2
#: query/threshold payload is little-endian float32 (results stay float64)
FLAG_DTYPE32 = 4

#: trace IDs are 16 hex chars; cap defensively against garbage flags
MAX_TRACE_BYTES = 64

_HEADER = struct.Struct(">2sI")
_F64 = np.dtype("<f8")
_F32 = np.dtype("<f4")


class ProtocolError(RuntimeError):
    """Malformed frame, wrong magic or truncated stream."""


class RemoteError(RuntimeError):
    """A server-side failure relayed through a ``STATUS_ERROR`` frame."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}" if kind else message)
        self.kind = kind


# ---------------------------------------------------------------------- #
# Framing
# ---------------------------------------------------------------------- #
def write_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(MAGIC, len(payload)) + payload)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(f"connection closed {remaining} bytes short of a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[bytes]:
    """The next frame's payload, or ``None`` on a clean EOF between frames."""
    header = b""
    while len(header) < _HEADER.size:
        chunk = sock.recv(_HEADER.size - len(header))
        if not chunk:
            if header:
                raise ProtocolError("connection closed mid-header")
            return None
        header += chunk
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit {MAX_FRAME_BYTES}")
    return _recv_exact(sock, length)


# ---------------------------------------------------------------------- #
# Requests
# ---------------------------------------------------------------------- #
def pack_estimate_request(
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    use_cache: bool = True,
    trace_id: Optional[str] = None,
    dtype: str = "float64",
) -> bytes:
    if dtype not in ("float64", "float32"):
        raise ValueError(f"wire dtype must be 'float64' or 'float32', got {dtype!r}")
    wire = _F32 if dtype == "float32" else _F64
    queries = np.ascontiguousarray(queries, dtype=wire)
    thresholds = np.ascontiguousarray(thresholds, dtype=wire)
    if queries.ndim != 2 or thresholds.ndim != 1 or len(queries) != len(thresholds):
        raise ValueError(
            f"expected aligned (n, dim) queries and (n,) thresholds, got "
            f"{queries.shape} and {thresholds.shape}"
        )
    name = model.encode("utf-8")
    n, dim = queries.shape
    flags = FLAG_USE_CACHE if use_cache else 0
    if wire is _F32:
        flags |= FLAG_DTYPE32
    trailer = b""
    if trace_id:
        trailer = trace_id.encode("utf-8")
        if len(trailer) > MAX_TRACE_BYTES:
            raise ValueError(f"trace id longer than {MAX_TRACE_BYTES} bytes")
        flags |= FLAG_TRACE
    head = struct.pack(">BBH", OP_ESTIMATE, flags, len(name))
    shape = struct.pack(">II", n, dim)
    return head + name + shape + queries.tobytes() + thresholds.tobytes() + trailer


def pack_control_request(op: int) -> bytes:
    if op not in (OP_STATS, OP_MODELS, OP_RELOAD, OP_PING):
        raise ValueError(f"not a control opcode: {op}")
    return struct.pack(">B", op)


def parse_request(payload: bytes) -> Tuple[int, Optional[Dict[str, Any]]]:
    """Decode a request frame into ``(opcode, fields)`` (server side)."""
    if not payload:
        raise ProtocolError("empty request payload")
    op = payload[0]
    if op != OP_ESTIMATE:
        return op, None
    if len(payload) < 4:
        raise ProtocolError("truncated estimate header")
    _, flags, model_len = struct.unpack_from(">BBH", payload, 0)
    offset = 4
    model = payload[offset : offset + model_len].decode("utf-8")
    offset += model_len
    n, dim = struct.unpack_from(">II", payload, offset)
    offset += 8
    wire = _F32 if flags & FLAG_DTYPE32 else _F64
    q_bytes = n * dim * wire.itemsize
    expected = offset + q_bytes + n * wire.itemsize
    trace: Optional[str] = None
    if flags & FLAG_TRACE:
        trailer = payload[expected:]
        if not trailer or len(trailer) > MAX_TRACE_BYTES:
            raise ProtocolError(
                f"trace flag set but trailer is {len(trailer)} bytes"
            )
        trace = trailer.decode("utf-8")
    elif len(payload) != expected:
        raise ProtocolError(
            f"estimate frame is {len(payload)} bytes, expected {expected}"
        )
    queries = np.frombuffer(payload, dtype=wire, count=n * dim, offset=offset).reshape(n, dim)
    thresholds = np.frombuffer(payload, dtype=wire, count=n, offset=offset + q_bytes)
    return op, {
        "model": model,
        "queries": queries,
        "thresholds": thresholds,
        "use_cache": bool(flags & FLAG_USE_CACHE),
        "trace": trace,
        "dtype": wire.name,
    }


# ---------------------------------------------------------------------- #
# Responses
# ---------------------------------------------------------------------- #
def pack_results_response(results: np.ndarray) -> bytes:
    results = np.ascontiguousarray(results, dtype=_F64)
    return struct.pack(">BI", STATUS_OK, len(results)) + results.tobytes()


def pack_json_response(value: Any) -> bytes:
    return struct.pack(">B", STATUS_OK_JSON) + json.dumps(value).encode("utf-8")


def pack_error_response(error: BaseException) -> bytes:
    kind = type(error).__name__.encode("utf-8")
    message = str(error).encode("utf-8")
    return struct.pack(">BH", STATUS_ERROR, len(kind)) + kind + message


def parse_response(payload: bytes) -> Any:
    """Decode a response frame (client side); raises :class:`RemoteError`."""
    if not payload:
        raise ProtocolError("empty response payload")
    status = payload[0]
    if status == STATUS_OK:
        (n,) = struct.unpack_from(">I", payload, 1)
        return np.frombuffer(payload, dtype=_F64, count=n, offset=5).copy()
    if status == STATUS_OK_JSON:
        return json.loads(payload[1:].decode("utf-8"))
    if status == STATUS_ERROR:
        (kind_len,) = struct.unpack_from(">H", payload, 1)
        kind = payload[3 : 3 + kind_len].decode("utf-8")
        message = payload[3 + kind_len :].decode("utf-8")
        raise RemoteError(kind, message)
    raise ProtocolError(f"unknown response status {status}")

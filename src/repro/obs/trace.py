"""Cross-process request tracing: trace IDs, spans, and a JSONL sink.

Span taxonomy
-------------
One served request produces spans named by the layer that timed it:

``client.request``
    Wall time the client spent on the whole round-trip (binary or HTTP).
``server.estimate`` / ``server.update``
    Frontend handler time inside :mod:`repro.net.server` — parse,
    dispatch to the cluster, serialize.
``cluster.admission``
    Time from submit until a sub-batch was accepted by a shard's bounded
    queue (blocking admission waits show up here).
``cluster.queue_wait``
    Time a sub-batch sat in the shard queue before the worker picked it up.
``transport.shm`` / ``transport.pipe``
    Serialization + shared-memory (or pickled-pipe fallback) transfer of
    one batch into a worker process.
``worker.estimate``
    Worker-process service call, end to end.
``service.cache_lookup`` / ``service.kernel_execute``
    Inside :class:`~repro.serving.service.EstimationService`: curve-cache
    probe and the kernel/curve evaluation for cache misses.
``pipeline.stage``
    One pipeline stage build (wall + CPU recorded in the stage report).

A trace ID is 16 hex chars (64 bits of :func:`uuid.uuid4`).  It travels

* in the binary protocol as an optional frame field (flag bit
  ``FLAG_TRACE``, the ID appended at the end of the payload so pre-trace
  peers parse the prefix unchanged),
* in HTTP as the ``X-Repro-Trace-Id`` header (request and echo),
* across the control pipe / shm ring into shard workers inside the batch
  message, and
* into every span record written to the sink.

Sampling is **deterministic per trace**: a blake2b hash of the trace ID
against ``sample`` ∈ [0, 1], so either *all* spans of a request are
recorded (across every process) or none are — no torn traces.

The sink appends one JSON object per line.  Writes are single
``os.write`` calls on an ``O_APPEND`` descriptor, so shard workers and
the frontend can share one file without interleaving partial lines.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: HTTP header carrying the trace ID (request and response echo)
TRACE_HEADER = "X-Repro-Trace-Id"

_current_trace: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace ID bound to the current context, if any."""
    return _current_trace.get()


@contextmanager
def trace_context(trace_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``trace_id`` for the duration of the block (None = untraced)."""
    token = _current_trace.set(trace_id)
    try:
        yield trace_id
    finally:
        _current_trace.reset(token)


class TraceSink:
    """An append-only JSONL span recorder with deterministic sampling."""

    def __init__(self, path: str, sample: float = 1.0) -> None:
        self.path = str(path)
        self.sample = float(sample)
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    def _descriptor(self) -> int:
        if self._fd is None:
            with self._lock:
                if self._fd is None:
                    self._fd = os.open(
                        self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                    )
        return self._fd

    def sampled(self, trace_id: str) -> bool:
        """Whether this trace is recorded — same answer in every process."""
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        digest = hashlib.blake2b(trace_id.encode("utf-8"), digest_size=8).digest()
        fraction = int.from_bytes(digest, "big") / 2.0 ** 64
        return fraction < self.sample

    def record(self, span: Dict[str, Any]) -> None:
        line = json.dumps(span, separators=(",", ":")) + "\n"
        os.write(self._descriptor(), line.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def config(self) -> Dict[str, Any]:
        """Plain-data form that reconstructs this sink in another process."""
        return {"path": self.path, "sample": self.sample}

    @classmethod
    def from_config(cls, config: Optional[Dict[str, Any]]) -> Optional["TraceSink"]:
        if not config:
            return None
        return cls(config["path"], config.get("sample", 1.0))


# Process-level tracing state.  ``configure_tracing`` is called once by the
# entrypoint (``repro serve --trace-out``), and shard workers call it with
# the config shipped in their spawn arguments.
_sink: Optional[TraceSink] = None
_role: str = "main"


def configure_tracing(
    trace_out: Optional[str],
    sample: float = 1.0,
    role: str = "main",
) -> Optional[TraceSink]:
    """Install (or clear, when ``trace_out`` is None) the process sink."""
    global _sink, _role
    if _sink is not None:
        _sink.close()
    _sink = TraceSink(trace_out, sample) if trace_out else None
    _role = role
    return _sink


def get_sink() -> Optional[TraceSink]:
    return _sink


def tracing_enabled() -> bool:
    return _sink is not None


def trace_config() -> Optional[Dict[str, Any]]:
    """The sink's shippable config (None when tracing is off)."""
    return _sink.config() if _sink is not None else None


@contextmanager
def span(
    name: str,
    trace_id: Optional[str] = None,
    **fields: Any,
) -> Iterator[Dict[str, Any]]:
    """Time a block and record it as one span of the current trace.

    No-ops (two attribute checks) when tracing is off or the context has
    no trace ID, so instrumented hot paths stay cheap in the common case.
    The yielded dict lets the block attach fields after the fact::

        with span("service.kernel_execute", batch=n) as s:
            ...
            s["cache_hits"] = hits
    """
    sink = _sink
    tid = trace_id if trace_id is not None else _current_trace.get()
    extra: Dict[str, Any] = dict(fields)
    if sink is None or tid is None or not sink.sampled(tid):
        yield extra
        return
    wall_start = time.perf_counter()
    cpu_start = time.thread_time()
    start_unix = time.time()
    try:
        yield extra
    finally:
        record = {
            "trace_id": tid,
            "span": name,
            "role": _role,
            "pid": os.getpid(),
            "start": round(start_unix, 6),
            "wall_s": round(time.perf_counter() - wall_start, 9),
            "cpu_s": round(time.thread_time() - cpu_start, 9),
        }
        if extra:
            record.update(extra)
        sink.record(record)


def read_trace_file(path: str) -> List[Dict[str, Any]]:
    """All spans in a JSONL trace file (skipping torn/blank lines)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return spans


__all__ = [
    "TRACE_HEADER",
    "TraceSink",
    "configure_tracing",
    "current_trace_id",
    "get_sink",
    "new_trace_id",
    "read_trace_file",
    "span",
    "trace_config",
    "trace_context",
    "tracing_enabled",
]

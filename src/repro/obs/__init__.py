"""Unified observability layer: metrics registry, tracing, and dashboards.

* :mod:`repro.obs.metrics` — labeled Counter/Gauge/Histogram families in a
  :class:`MetricsRegistry`; picklable :class:`MetricsSnapshot` values that
  merge across processes and render Prometheus text.
* :mod:`repro.obs.trace` — per-request trace IDs, span timing with a JSONL
  sink and deterministic sampling (see the span taxonomy in its docstring).
* :mod:`repro.obs.top` — the ``repro top`` live terminal dashboard.
"""

from .metrics import (
    DEFAULT_RING_SIZE,
    DEFAULT_TIME_BUCKETS,
    SNAPSHOT_RING_LIMIT,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    MetricsSnapshot,
    aggregate_histogram,
    histogram_percentile,
    merge_snapshots,
)
from .trace import (
    TRACE_HEADER,
    TraceSink,
    configure_tracing,
    current_trace_id,
    get_sink,
    new_trace_id,
    read_trace_file,
    span,
    trace_config,
    trace_context,
    tracing_enabled,
)
from .top import fetch_stats, render_dashboard, run_top

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "aggregate_histogram",
    "histogram_percentile",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_RING_SIZE",
    "SNAPSHOT_RING_LIMIT",
    "TRACE_HEADER",
    "TraceSink",
    "configure_tracing",
    "current_trace_id",
    "get_sink",
    "new_trace_id",
    "read_trace_file",
    "span",
    "trace_config",
    "trace_context",
    "tracing_enabled",
    "render_dashboard",
    "fetch_stats",
    "run_top",
]

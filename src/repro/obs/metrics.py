"""The metrics plane: labeled counters, gauges and histograms in a registry.

Every layer of the serving stack (service → cluster → transport → worker
processes → artifact store) records into a :class:`MetricsRegistry` instead
of a bespoke stat dict.  The registry speaks one schema:

* :class:`Counter` — monotone float totals (``repro_service_requests_total``);
* :class:`Gauge` — point-in-time values with explicit merge semantics
  (``sum`` / ``max`` / ``last``), e.g. queue depths and shard counts;
* :class:`Histogram` — **fixed log-spaced buckets** (Prometheus-style
  cumulative ``le`` counts, so merged cross-process snapshots stay exact)
  plus a **bounded ring of raw samples** giving exact streaming
  p50/p95/p99 over recent observations in O(ring) memory — the structure
  that replaces unbounded per-call latency lists.

Families are labeled (``labels=("model",)``); ``family.labels(model="kde")``
returns the per-series child whose ``inc`` / ``set`` / ``observe`` are the
hot-path operations (cache the child reference at the call site — label
resolution is a dict lookup, not free).

:meth:`MetricsRegistry.snapshot` freezes the registry into a
:class:`MetricsSnapshot` — a plain-data, picklable, JSON-able value that
crosses process boundaries (shard workers ship theirs back over the
existing control pipe inside ``stats`` replies).  Snapshots support

* :meth:`~MetricsSnapshot.merge` — counters and histogram buckets add,
  gauges combine per their aggregation, rings concatenate (bounded);
* :meth:`~MetricsSnapshot.delta` — what happened *since* an earlier
  snapshot (counters and histograms subtract; gauges keep current values);
* :meth:`~MetricsSnapshot.with_labels` — stamp a label (``shard="3"``)
  onto every series, so per-shard registries merge without colliding;
* :meth:`~MetricsSnapshot.to_prometheus` — the text exposition format the
  ``/metrics`` endpoint serves.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: log-spaced latency bucket upper bounds in **seconds**: 0.1 ms .. ~52 s,
#: doubling per bucket (20 buckets; +Inf is implicit)
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(0.0001 * 2.0 ** i for i in range(20))

#: raw samples kept per histogram series for exact streaming percentiles
DEFAULT_RING_SIZE = 4096

#: raw samples exported per series in a snapshot (keeps cross-process
#: snapshots and /stats payloads small; percentiles over a merged snapshot
#: are exact over this most-recent window, bucket-interpolated beyond it)
SNAPSHOT_RING_LIMIT = 256

#: separator joining label values into a snapshot series key (JSON-safe)
_KEY_SEP = ""


def _label_key(values: Sequence[str]) -> str:
    return _KEY_SEP.join(values)


def _split_key(key: str) -> List[str]:
    return key.split(_KEY_SEP) if key else []


# ---------------------------------------------------------------------- #
# Series (the per-label-set children)
# ---------------------------------------------------------------------- #
class Counter:
    """A monotone total.  ``inc`` is the only mutation."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value; merge semantics live on the family."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution plus a bounded ring of raw samples.

    The buckets give mergeable, loss-bounded counts (Prometheus semantics);
    the ring gives *exact* percentiles over the most recent
    ``ring_size`` observations — the replacement for keeping every latency
    ever seen.  ``observe`` takes one lock: snapshotting reads bucket
    arrays concurrently with hot-path writers.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_ring", "_lock")

    def __init__(
        self,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bucket bounds must be sorted ascending")
        self._counts = [0] * (len(self.bounds) + 1)  # last bucket = +Inf
        self._sum = 0.0
        self._count = 0
        self._ring: Deque[float] = deque(maxlen=int(ring_size))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = np.searchsorted(self.bounds, value, side="left")
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._ring.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Exact percentile over the bounded ring (0.0 when empty)."""
        with self._lock:
            samples = np.asarray(self._ring)
        if samples.size == 0:
            return 0.0
        return float(np.percentile(samples, q))

    def ring_array(self) -> np.ndarray:
        """A copy of the bounded sample ring (for multi-quantile reads)."""
        with self._lock:
            return np.asarray(self._ring, dtype=np.float64)

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _export(self) -> Dict[str, Any]:
        with self._lock:
            ring = list(self._ring)[-SNAPSHOT_RING_LIMIT:]
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "ring": ring,
            }


# ---------------------------------------------------------------------- #
# Families
# ---------------------------------------------------------------------- #
_TYPES = ("counter", "gauge", "histogram")
_GAUGE_AGGREGATIONS = ("sum", "max", "last")


class MetricFamily:
    """One named metric with a fixed label schema and many series."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,  # noqa: A002 - prometheus vocabulary
        label_names: Tuple[str, ...],
        **options: Any,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self.options = options
        self._series: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(
            bounds=self.options.get("buckets", DEFAULT_TIME_BUCKETS),
            ring_size=self.options.get("ring_size", DEFAULT_RING_SIZE),
        )

    def labels(self, **labels: str) -> Any:
        """The series child for one label-value assignment (created lazily)."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got {tuple(labels)}"
            )
        values = tuple(str(labels[name]) for name in self.label_names)
        child = self._series.get(values)
        if child is None:
            with self._lock:
                child = self._series.setdefault(values, self._make_child())
        return child

    # Label-less conveniences: a family with no labels is its own series.
    def _default(self) -> Any:
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def series(self) -> List[Tuple[Dict[str, str], Any]]:
        """Every (label-dict, child) pair currently in the family."""
        with self._lock:
            items = list(self._series.items())
        return [(dict(zip(self.label_names, values)), child) for values, child in items]

    def _export(self) -> Dict[str, Any]:
        with self._lock:
            items = list(self._series.items())
        exported: Dict[str, Any] = {}
        for values, child in items:
            key = _label_key(values)
            if self.kind == "histogram":
                exported[key] = child._export()
            else:
                exported[key] = child.value
        payload: Dict[str, Any] = {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "series": exported,
        }
        if self.kind == "gauge":
            payload["aggregation"] = self.options.get("aggregation", "last")
        return payload


class MetricsRegistry:
    """A set of metric families; the unit that snapshots and merges.

    Each component (service, cluster, transport backend, store, autoscaler)
    owns its own registry, so two instances in one process never alias
    counters; cross-component and cross-process views are built by merging
    snapshots, stamping distinguishing labels on as needed.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, kind: str, help: str, labels, **options) -> MetricFamily:  # noqa: A002
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, label_names, **options)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with "
                f"labels {family.label_names}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:  # noqa: A002
        return self._family(name, "counter", help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labels: Sequence[str] = (),
        aggregation: str = "last",
    ) -> MetricFamily:
        if aggregation not in _GAUGE_AGGREGATIONS:
            raise ValueError(f"unknown gauge aggregation {aggregation!r}")
        return self._family(name, "gauge", help, labels, aggregation=aggregation)

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> MetricFamily:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds):  # fail at registration, not first observe
            raise ValueError("histogram bucket bounds must be sorted ascending")
        return self._family(
            name, "histogram", help, labels, buckets=bounds, ring_size=ring_size
        )

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> "MetricsSnapshot":
        return MetricsSnapshot({family.name: family._export() for family in self.families()})


# ---------------------------------------------------------------------- #
# Snapshots
# ---------------------------------------------------------------------- #
def _merge_histogram(left: Dict[str, Any], right: Dict[str, Any]) -> Dict[str, Any]:
    if left["bounds"] != right["bounds"]:
        raise ValueError("cannot merge histograms with different bucket bounds")
    ring = (left["ring"] + right["ring"])[-SNAPSHOT_RING_LIMIT:]
    return {
        "bounds": list(left["bounds"]),
        "counts": [a + b for a, b in zip(left["counts"], right["counts"])],
        "sum": left["sum"] + right["sum"],
        "count": left["count"] + right["count"],
        "ring": ring,
    }


def histogram_percentile(data: Dict[str, Any], q: float) -> float:
    """Percentile from exported histogram data.

    Exact over the ring when the ring holds the full distribution
    (``count <= ring length``); otherwise linear interpolation within the
    log-spaced buckets — bounded error of one bucket width.
    """
    count = data.get("count", 0)
    ring = data.get("ring", [])
    if count == 0:
        return 0.0
    if ring and count <= len(ring):
        return float(np.percentile(np.asarray(ring, dtype=np.float64), q))
    bounds = list(data["bounds"]) + [math.inf]
    target = (q / 100.0) * count
    cumulative = 0
    lower = 0.0
    for bound, bucket_count in zip(bounds, data["counts"]):
        if cumulative + bucket_count >= target and bucket_count > 0:
            if math.isinf(bound):
                return lower
            fraction = (target - cumulative) / bucket_count
            return lower + fraction * (bound - lower)
        cumulative += bucket_count
        lower = bound if not math.isinf(bound) else lower
    return lower


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(float(value))


def _render_labels(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsSnapshot:
    """A frozen, plain-data view of one or more registries (picklable)."""

    def __init__(self, data: Optional[Dict[str, Any]] = None) -> None:
        self.data: Dict[str, Any] = data or {}

    # -- construction / transport ------------------------------------- #
    def as_dict(self) -> Dict[str, Any]:
        return self.data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSnapshot":
        return cls(dict(data))

    # -- queries ------------------------------------------------------- #
    def families(self) -> List[str]:
        return sorted(self.data)

    def series(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """Every (labels, value) pair of one family ([] when absent)."""
        family = self.data.get(name)
        if family is None:
            return []
        label_names = family["labels"]
        return [
            (dict(zip(label_names, _split_key(key))), value)
            for key, value in family["series"].items()
        ]

    def value(self, name: str, default: float = 0.0, **labels: str) -> Any:
        """One series' value (counter/gauge float, histogram data dict)."""
        family = self.data.get(name)
        if family is None:
            return default
        key = _label_key(tuple(str(labels[n]) for n in family["labels"]))
        return family["series"].get(key, default)

    def total(self, name: str, **labels: str) -> float:
        """Sum of a counter/gauge family over series matching ``labels``."""
        total = 0.0
        for series_labels, value in self.series(name):
            if all(series_labels.get(k) == str(v) for k, v in labels.items()):
                total += value["count"] if isinstance(value, dict) else value
        return total

    # -- algebra -------------------------------------------------------- #
    def with_labels(self, **extra: str) -> "MetricsSnapshot":
        """A copy with ``extra`` labels stamped onto every series."""
        names = sorted(extra)
        suffix = tuple(str(extra[name]) for name in names)
        stamped: Dict[str, Any] = {}
        for name, family in self.data.items():
            new_series = {}
            for key, value in family["series"].items():
                values = tuple(_split_key(key)) + suffix
                new_series[_label_key(values)] = value
            stamped[name] = {
                **family,
                "labels": list(family["labels"]) + names,
                "series": new_series,
            }
        return MetricsSnapshot(stamped)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot plus ``other`` (see module docstring for semantics)."""
        merged: Dict[str, Any] = {
            name: {**family, "series": dict(family["series"])}
            for name, family in self.data.items()
        }
        for name, family in other.data.items():
            target = merged.get(name)
            if target is None:
                merged[name] = {**family, "series": dict(family["series"])}
                continue
            if target["type"] != family["type"] or target["labels"] != family["labels"]:
                raise ValueError(f"conflicting schemas for metric {name!r} in merge")
            for key, value in family["series"].items():
                existing = target["series"].get(key)
                if existing is None:
                    target["series"][key] = value
                elif family["type"] == "counter":
                    target["series"][key] = existing + value
                elif family["type"] == "histogram":
                    target["series"][key] = _merge_histogram(existing, value)
                else:  # gauge
                    aggregation = family.get("aggregation", "last")
                    if aggregation == "sum":
                        target["series"][key] = existing + value
                    elif aggregation == "max":
                        target["series"][key] = max(existing, value)
                    else:
                        target["series"][key] = value
        return MetricsSnapshot(merged)

    def delta(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened since ``before``: counters and histogram counts
        subtract (clamped at zero for restarted processes); gauges keep the
        current value (a gauge has no meaningful difference)."""
        result: Dict[str, Any] = {}
        for name, family in self.data.items():
            prior = before.data.get(name, {"series": {}})
            new_series: Dict[str, Any] = {}
            for key, value in family["series"].items():
                old = prior["series"].get(key)
                if family["type"] == "counter":
                    new_series[key] = max(value - (old or 0.0), 0.0)
                elif family["type"] == "histogram":
                    if old is None or old["bounds"] != value["bounds"]:
                        new_series[key] = value
                    else:
                        new_series[key] = {
                            "bounds": list(value["bounds"]),
                            "counts": [
                                max(a - b, 0)
                                for a, b in zip(value["counts"], old["counts"])
                            ],
                            "sum": max(value["sum"] - old["sum"], 0.0),
                            "count": max(value["count"] - old["count"], 0),
                            "ring": value["ring"][-SNAPSHOT_RING_LIMIT:],
                        }
                else:
                    new_series[key] = value
            result[name] = {**family, "series": new_series}
        return MetricsSnapshot(result)

    # -- exposition ----------------------------------------------------- #
    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in self.families():
            family = self.data[name]
            label_names = family["labels"]
            help_text = (family.get("help") or name).replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family['type']}")
            for key in sorted(family["series"]):
                values = _split_key(key)
                value = family["series"][key]
                if family["type"] != "histogram":
                    labels = _render_labels(label_names, values)
                    lines.append(f"{name}{labels} {_format_value(value)}")
                    continue
                cumulative = 0
                bounds = list(value["bounds"]) + [math.inf]
                for bound, count in zip(bounds, value["counts"]):
                    cumulative += count
                    le = _render_labels(
                        label_names, values, extra=f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                labels = _render_labels(label_names, values)
                lines.append(f"{name}_sum{labels} {_format_value(value['sum'])}")
                lines.append(f"{name}_count{labels} {value['count']}")
        return "\n".join(lines) + "\n" if lines else ""


def aggregate_histogram(snapshot: MetricsSnapshot, name: str) -> Optional[Dict[str, Any]]:
    """One histogram family's series folded into a single data dict
    (``None`` when the family is absent or empty)."""
    merged: Optional[Dict[str, Any]] = None
    for _, value in snapshot.series(name):
        merged = value if merged is None else _merge_histogram(merged, value)
    return merged


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold many snapshots into one (an empty iterable gives an empty one)."""
    merged = MetricsSnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "merge_snapshots",
    "aggregate_histogram",
    "histogram_percentile",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_RING_SIZE",
    "SNAPSHOT_RING_LIMIT",
]

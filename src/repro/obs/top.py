"""``repro top`` — a live terminal dashboard over a running ``repro serve``.

The renderer is a pure function from two ``/stats`` payloads (current and
previous poll) to a block of text, so tests exercise it without a terminal
or a server; :func:`run_top` is the thin polling loop around it that
repaints with ANSI home+clear each interval.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Any, Dict, List, Optional

_CLEAR = "\x1b[H\x1b[2J"


def _rate(current: Dict[str, Any], previous: Optional[Dict[str, Any]], key: str, interval: float) -> float:
    if not previous or interval <= 0:
        return 0.0
    cluster_now = current.get("cluster", {})
    cluster_then = previous.get("cluster", {})
    return max(cluster_now.get(key, 0) - cluster_then.get(key, 0), 0) / interval


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_ms(value: Any) -> str:
    try:
        return f"{float(value):8.2f}"
    except (TypeError, ValueError):
        return "       -"


def render_dashboard(
    stats: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    interval: float = 1.0,
) -> str:
    """One frame of the dashboard from a ``/stats`` payload (and the last)."""
    cluster = stats.get("cluster", {})
    per_shard = cluster.get("per_shard", [])
    queue_capacity = max(int(cluster.get("queue_capacity", 1)), 1)
    lines: List[str] = []

    uptime = stats.get("uptime_seconds", 0.0)
    req_s = _rate(stats, previous, "total_requests", interval)
    shed_s = _rate(stats, previous, "total_shed_requests", interval)
    lines.append(
        f"repro top · up {uptime:7.1f}s · shards {cluster.get('num_shards', '?')} "
        f"· backend {cluster.get('backend', '?')} · policy {cluster.get('overload_policy', '?')}"
    )
    lines.append(
        f"traffic    {req_s:9.1f} req/s   shed {shed_s:7.1f}/s   "
        f"total {cluster.get('total_requests', 0):>10} req  "
        f"{cluster.get('total_updates', 0):>8} upd"
    )
    lines.append("")

    lines.append(
        "shard      queue            depth/max   req/s     p50 ms   p95 ms   p99 ms  cache"
    )
    for shard in per_shard:
        latency = shard.get("latency", {})
        cache = shard.get("cache", {})
        depth = shard.get("queue_depth", 0)
        shard_rate = 0.0
        if previous and interval > 0:
            for old in previous.get("cluster", {}).get("per_shard", []):
                if old.get("shard") == shard.get("shard"):
                    shard_rate = max(shard.get("requests", 0) - old.get("requests", 0), 0) / interval
                    break
        hit_rate = cache.get("hit_rate")
        hit_text = f"{hit_rate:5.1%}" if isinstance(hit_rate, (int, float)) else "    -"
        lines.append(
            f"  {shard.get('shard', '?'):>4}  [{_bar(depth / queue_capacity)}]  "
            f"{depth:>3}/{shard.get('max_queue_depth', 0):<3}  "
            f"{shard_rate:8.1f}  "
            f"{_fmt_ms(latency.get('p50_ms'))} {_fmt_ms(latency.get('p95_ms'))} "
            f"{_fmt_ms(latency.get('p99_ms'))}  {hit_text}"
        )
    if not per_shard:
        lines.append("  (no shard data)")
    lines.append("")

    layers = stats.get("layers")
    if layers:
        lines.append("layer p99 (ms)")
        for name in sorted(layers):
            data = layers[name]
            lines.append(
                f"  {name:<24} {_fmt_ms(data.get('p99_ms'))}  "
                f"({int(data.get('count', 0))} obs)"
            )
        lines.append("")

    autoscaler = stats.get("autoscaler")
    if autoscaler:
        lines.append(
            f"autoscaler  {autoscaler.get('num_shards', '?')} shards in "
            f"[{autoscaler.get('min_shards', '?')}, {autoscaler.get('max_shards', '?')}] · "
            f"{autoscaler.get('observations', 0)} observations"
        )
        for action in autoscaler.get("actions", [])[-4:]:
            lines.append(
                f"  scale {action.get('action', '?'):<6} -> {action.get('num_shards', '?')} shard(s) "
                f"(queue fill {action.get('mean_queue_fill', 0.0):.2f})"
            )
        lines.append("")

    endpoints = stats.get("endpoints", {})
    if endpoints:
        summary = "  ".join(f"{name}={count}" for name, count in sorted(endpoints.items()))
        lines.append(f"endpoints  {summary}")
    return "\n".join(lines) + "\n"


def fetch_stats(base_url: str, timeout: float = 5.0) -> Dict[str, Any]:
    request = urllib.request.Request(base_url.rstrip("/") + "/stats")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def run_top(
    base_url: str,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    write=None,
) -> int:
    """Poll ``/stats`` and repaint until interrupted (or ``iterations`` runs).

    Returns the number of frames drawn; ``write`` defaults to stdout and is
    injectable for tests.
    """
    import sys

    emit = write if write is not None else sys.stdout.write
    previous: Optional[Dict[str, Any]] = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                stats = fetch_stats(base_url)
            except Exception as error:  # noqa: BLE001 - keep polling through blips
                emit(f"{_CLEAR}repro top · {base_url} unreachable: {error}\n")
                time.sleep(interval)
                continue
            emit(_CLEAR + render_dashboard(stats, previous, interval))
            previous = stats
            frames += 1
            if iterations is None or frames < iterations:
                time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return frames


__all__ = ["render_dashboard", "fetch_stats", "run_top"]

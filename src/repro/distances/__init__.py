"""Distance functions (Euclidean, cosine) and the distance registry."""

from .metrics import (
    cosine_distance,
    cosine_similarity,
    cosine_threshold_to_euclidean,
    euclidean_distance,
    euclidean_threshold_to_cosine,
    normalize_rows,
    pairwise_cosine_distance,
    pairwise_euclidean,
)
from .registry import COSINE, EUCLIDEAN, DistanceFunction, get_distance, prepare_data_for_distance

__all__ = [
    "euclidean_distance",
    "cosine_distance",
    "cosine_similarity",
    "pairwise_euclidean",
    "pairwise_cosine_distance",
    "normalize_rows",
    "cosine_threshold_to_euclidean",
    "euclidean_threshold_to_cosine",
    "DistanceFunction",
    "EUCLIDEAN",
    "COSINE",
    "get_distance",
    "prepare_data_for_distance",
]

"""Named distance functions with metadata used throughout the library.

A :class:`DistanceFunction` bundles the batch distance kernel with the
properties the rest of the system needs to know about it:

* whether it is a proper metric (so the cover-tree partitioner and its
  triangle-inequality pruning apply — Section 5.3), and
* how to convert thresholds to the equivalent Euclidean ones for unit
  vectors, which KDE and the cover tree rely on for cosine distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from .metrics import (
    cosine_distance,
    cosine_threshold_to_euclidean,
    euclidean_distance,
    normalize_rows,
    pairwise_cosine_distance,
    pairwise_euclidean,
)


def _identity_threshold(threshold: float) -> float:
    """Euclidean thresholds are already Euclidean (named so it pickles)."""
    return float(threshold)


@dataclass(frozen=True)
class DistanceFunction:
    """A named distance with its batch kernels and metric properties."""

    name: str
    #: distance from one query vector to every database row
    query_to_data: Callable[[np.ndarray, np.ndarray], np.ndarray]
    #: full pairwise distance matrix between two sets of rows
    pairwise: Callable[[np.ndarray, np.ndarray], np.ndarray]
    #: True when the triangle inequality holds (enables cover-tree pruning)
    is_metric: bool
    #: convert a threshold of this distance to the Euclidean threshold that is
    #: equivalent for unit vectors (identity for Euclidean itself)
    threshold_to_euclidean: Callable[[float], float]

    def __call__(self, x: np.ndarray, data: np.ndarray) -> np.ndarray:
        return self.query_to_data(x, data)

    def __reduce__(self):
        # Serialise by name so fitted estimators that hold a distance can be
        # pickled and reloaded in another process (repro.persistence).
        return (get_distance, (self.name,))


EUCLIDEAN = DistanceFunction(
    name="euclidean",
    query_to_data=euclidean_distance,
    pairwise=pairwise_euclidean,
    is_metric=True,
    threshold_to_euclidean=_identity_threshold,
)

# Cosine distance is not a metric in general, but on unit vectors it is
# monotonically related to Euclidean distance, so metric-space techniques
# still apply after normalisation.  The paper treats it the same way.
COSINE = DistanceFunction(
    name="cosine",
    query_to_data=cosine_distance,
    pairwise=pairwise_cosine_distance,
    is_metric=True,
    threshold_to_euclidean=cosine_threshold_to_euclidean,
)

_REGISTRY: Dict[str, DistanceFunction] = {
    "euclidean": EUCLIDEAN,
    "l2": EUCLIDEAN,
    "cosine": COSINE,
    "cos": COSINE,
}


def get_distance(name: str) -> DistanceFunction:
    """Look up a distance function by name (``euclidean``/``l2``/``cosine``/``cos``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown distance {name!r}; choose from {sorted(set(_REGISTRY))}")
    return _REGISTRY[key]


def prepare_data_for_distance(data: np.ndarray, distance: DistanceFunction) -> np.ndarray:
    """Return ``data`` normalised when the distance expects unit vectors.

    Cosine-distance workloads in the paper use normalised embeddings; this
    helper gives callers one place to apply that convention.
    """
    if distance.name == "cosine":
        return normalize_rows(data)
    return np.asarray(data, dtype=np.float64)

"""Distance and similarity functions for high-dimensional vectors.

The paper evaluates Euclidean (l2) distance and cosine distance.  For unit
vectors the two are interchangeable via ``cos(u, v) = 1 - ||u - v||^2 / 2``,
which both the KDE baseline and the cover-tree partitioner exploit.
"""

from __future__ import annotations

import numpy as np


def euclidean_distance(x: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Euclidean distances from a single query ``x`` to every row of ``data``."""
    x = np.asarray(x, dtype=np.float64)
    data = np.asarray(data, dtype=np.float64)
    diff = data - x
    return np.sqrt(np.maximum(np.einsum("ij,ij->i", diff, diff), 0.0))


def cosine_similarity(x: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Cosine similarities from a single query to every row of ``data``."""
    x = np.asarray(x, dtype=np.float64)
    data = np.asarray(data, dtype=np.float64)
    x_norm = np.linalg.norm(x)
    data_norms = np.linalg.norm(data, axis=1)
    denom = np.maximum(x_norm * data_norms, 1e-12)
    return data @ x / denom


def cosine_distance(x: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Cosine distance ``1 - cos(x, o)`` from a query to every row of ``data``."""
    return 1.0 - cosine_similarity(x, data)


#: denominator floor shared by every cosine kernel (here, the hoisted-norm
#: variant below and the blocked GEMM tiles in repro.exact) — keeping it in
#: one place preserves the exact-integer parity contract between oracles
COSINE_NORM_FLOOR = 1e-12


def cosine_distance_with_norms(
    x: np.ndarray, data: np.ndarray, data_norms: np.ndarray
) -> np.ndarray:
    """:func:`cosine_distance` with the database norm pass hoisted out.

    ``data_norms`` must be ``np.linalg.norm(data, axis=1)``; the result is
    bit-identical to :func:`cosine_distance`, it just lets callers that scan
    the same database repeatedly compute the norms once.
    """
    x = np.asarray(x, dtype=np.float64)
    denom = np.maximum(np.linalg.norm(x) * data_norms, COSINE_NORM_FLOOR)
    return 1.0 - data @ x / denom


def pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distance matrix between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_sq = np.sum(a ** 2, axis=1)[:, None]
    b_sq = np.sum(b ** 2, axis=1)[None, :]
    squared = a_sq + b_sq - 2.0 * (a @ b.T)
    return np.sqrt(np.maximum(squared, 0.0))


def pairwise_cosine_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine distance matrix between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), 1e-12)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), 1e-12)
    return 1.0 - a_norm @ b_norm.T


def normalize_rows(data: np.ndarray) -> np.ndarray:
    """Scale every row to unit Euclidean norm."""
    data = np.asarray(data, dtype=np.float64)
    norms = np.maximum(np.linalg.norm(data, axis=1, keepdims=True), 1e-12)
    return data / norms


def cosine_threshold_to_euclidean(threshold: float) -> float:
    """Convert a cosine-distance threshold to the equivalent Euclidean one.

    For unit vectors ``||u - v||^2 = 2 (1 - cos(u, v)) = 2 * d_cos``; hence a
    cosine-distance threshold ``t`` corresponds to a Euclidean threshold
    ``sqrt(2 t)``.
    """
    return float(np.sqrt(max(2.0 * threshold, 0.0)))


def euclidean_threshold_to_cosine(threshold: float) -> float:
    """Inverse of :func:`cosine_threshold_to_euclidean` for unit vectors."""
    return float(threshold ** 2 / 2.0)

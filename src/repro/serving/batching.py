"""Micro-batching of (query, threshold) estimation requests.

Estimators are vectorised: one ``estimate`` call over a batch amortises the
per-call overhead (autoencoder forward, partition indicators...).  The
serving layer therefore never evaluates requests one by one — incoming work
is chopped into micro-batches of a bounded size, which caps per-request
latency while keeping the throughput of batched evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

import numpy as np


@dataclass
class MicroBatch:
    """One slice of a request stream, with positions into the original order."""

    queries: np.ndarray
    thresholds: np.ndarray
    positions: np.ndarray

    def __len__(self) -> int:
        return len(self.thresholds)


def iter_microbatches(
    queries: np.ndarray,
    thresholds: np.ndarray,
    max_batch_size: int,
) -> Iterator[MicroBatch]:
    """Split aligned query / threshold arrays into bounded micro-batches.

    An empty request batch (zero queries and zero thresholds — whether the
    queries arrive as ``(0,)`` or ``(0, dim)``) yields no micro-batches
    instead of tripping the shape validation: serving layers route whatever
    the traffic generator hands them, and an idle tick is not an error.
    """
    queries = np.asarray(queries, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if max_batch_size < 1:
        raise ValueError("max_batch_size must be at least 1")
    if queries.size == 0 and thresholds.ndim == 1 and len(thresholds) == 0:
        return
    if queries.ndim != 2:
        raise ValueError(f"queries must be a 2-D array, got shape {queries.shape}")
    if thresholds.ndim != 1 or len(thresholds) != len(queries):
        raise ValueError(
            f"thresholds must be 1-D and aligned with queries "
            f"({len(queries)} queries, thresholds shape {thresholds.shape})"
        )
    for start in range(0, len(queries), max_batch_size):
        stop = min(start + max_batch_size, len(queries))
        yield MicroBatch(
            queries=queries[start:stop],
            thresholds=thresholds[start:stop],
            positions=np.arange(start, stop),
        )


class MicroBatcher:
    """Accumulates single requests and flushes them as one batched call.

    Synchronous analogue of a request-queue batcher: callers ``submit``
    individual (query, threshold) pairs and receive a ticket; ``flush``
    evaluates everything in one vectorised call (split into micro-batches)
    and returns the results in submission order.  The batcher auto-flushes
    into ``results`` whenever ``max_batch_size`` requests are pending.
    """

    def __init__(
        self,
        estimate_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        max_batch_size: int = 256,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        self._estimate_fn = estimate_fn
        self.max_batch_size = max_batch_size
        self._pending: List[Tuple[np.ndarray, float]] = []
        self._results: List[float] = []
        self.batches_flushed = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, query: np.ndarray, threshold: float) -> int:
        """Queue one request; returns its ticket (position in the results)."""
        ticket = len(self._results) + len(self._pending)
        self._pending.append((np.asarray(query, dtype=np.float64), float(threshold)))
        if len(self._pending) >= self.max_batch_size:
            self._flush_pending()
        return ticket

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        queries = np.stack([query for query, _ in self._pending])
        thresholds = np.asarray([threshold for _, threshold in self._pending])
        values = np.asarray(self._estimate_fn(queries, thresholds), dtype=np.float64)
        self._results.extend(float(v) for v in values)
        self._pending.clear()
        self.batches_flushed += 1

    def flush(self) -> np.ndarray:
        """Evaluate any pending requests and return all results so far."""
        self._flush_pending()
        out = np.asarray(self._results, dtype=np.float64)
        self._results = []
        return out

"""Serving layer: model store facade, micro-batching, curve cache.

See :class:`EstimationService` for the entry point::

    from repro.serving import EstimationService

    service = EstimationService("models/")
    service.estimate("selnet-faces", queries, thresholds)
"""

from .batching import MicroBatch, MicroBatcher, iter_microbatches
from .cache import CachedCurve, CurveCache, query_cache_key
from .service import (
    EstimationService,
    ModelStats,
    ServingBenchmarkReport,
    run_serving_benchmark,
)

__all__ = [
    "EstimationService",
    "ModelStats",
    "ServingBenchmarkReport",
    "run_serving_benchmark",
    "CurveCache",
    "CachedCurve",
    "query_cache_key",
    "MicroBatch",
    "MicroBatcher",
    "iter_microbatches",
]

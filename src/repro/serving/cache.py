"""LRU cache of per-query selectivity curves, with hit-rate statistics.

Selectivity serving has heavy query reuse (the same embedding is probed at
many thresholds — blocking plans, progressive refinement, dashboards).  A
curve cache exploits the shape of the problem: one cached piece-wise curve
per (model, query) answers *every* threshold for that query by linear
interpolation, instead of one model forward pass per request.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class CachedCurve:
    """A selectivity curve sampled on a fixed threshold grid."""

    thresholds: np.ndarray
    values: np.ndarray

    def __call__(self, threshold: float) -> float:
        """Interpolated estimate at one threshold (clamped to the grid ends)."""
        return float(np.interp(threshold, self.thresholds, self.values))

    def at(self, thresholds: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(thresholds, dtype=np.float64), self.thresholds, self.values)


#: default rounding of query coordinates inside cache keys; overridable per
#: cache through ``CurveCache(decimals=...)`` / the service configuration
DEFAULT_KEY_DECIMALS = 10


def query_cache_key(
    model_name: str, query: np.ndarray, decimals: int = DEFAULT_KEY_DECIMALS
) -> bytes:
    """Stable cache key: model name + the rounded query bytes."""
    rounded = np.round(np.asarray(query, dtype=np.float64), decimals)
    # 0.0 and -0.0 have different byte patterns; normalise so they collide.
    rounded = rounded + 0.0
    return model_name.encode("utf-8") + b"\x00" + rounded.tobytes()


class CurveCache:
    """A bounded LRU mapping (model, query) -> :class:`CachedCurve`.

    Parameters
    ----------
    capacity:
        Maximum number of cached curves; the least recently used entry is
        evicted when full.  ``capacity <= 0`` disables caching entirely
        (every ``get`` misses, ``put`` is a no-op).
    decimals:
        Rounding applied to query coordinates when building cache keys (see
        :func:`query_cache_key`).  Lower values make near-duplicate queries
        share one cached curve at the cost of interpolation accuracy.
    """

    def __init__(self, capacity: int = 256, decimals: int = DEFAULT_KEY_DECIMALS) -> None:
        self.capacity = int(capacity)
        self.decimals = int(decimals)
        self._entries: "OrderedDict[bytes, CachedCurve]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    def get(
        self,
        model_name: str,
        query: np.ndarray,
        threshold: Optional[float] = None,
    ) -> Optional[CachedCurve]:
        """Cached curve for a query, or None on a miss.

        When ``threshold`` is given, an entry whose grid does not reach it
        counts as a miss: interpolation would clamp to the grid end and
        silently return a wrong estimate, so the caller must rebuild the
        curve over a wider range instead.
        """
        key = query_cache_key(model_name, query, decimals=self.decimals)
        entry = self._entries.get(key)
        if entry is None or (threshold is not None and threshold > entry.thresholds[-1]):
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, model_name: str, query: np.ndarray, curve: CachedCurve) -> None:
        if self.capacity <= 0:
            return
        key = query_cache_key(model_name, query, decimals=self.decimals)
        self._entries[key] = curve
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, model_name: Optional[str] = None) -> int:
        """Drop every entry (or only one model's — after a data update)."""
        if model_name is None:
            removed = len(self._entries)
            self._entries.clear()
        else:
            prefix = model_name.encode("utf-8") + b"\x00"
            stale = [key for key in self._entries if key.startswith(prefix)]
            for key in stale:
                del self._entries[key]
            removed = len(stale)
        self.invalidations += removed
        return removed

    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "decimals": self.decimals,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

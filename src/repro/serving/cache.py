"""LRU cache of per-query selectivity curves, with hit-rate statistics.

Selectivity serving has heavy query reuse (the same embedding is probed at
many thresholds — blocking plans, progressive refinement, dashboards).  A
curve cache exploits the shape of the problem: one cached piece-wise curve
per (model, query) answers *every* threshold for that query by linear
interpolation, instead of one model forward pass per request.

Two things keep a shard's cache dense:

* **Grid interning** — every curve built by the service samples the same
  per-model threshold grid, so the cache stores one shared grid array per
  ``(model, grid)`` and each entry references it (and its bytes are counted
  once).
* **Quantized curves** — :class:`QuantizedCurve` stores the sampled values
  as uint8/uint16 codes against the shared grid (1–2 bytes per control
  point instead of 8), reconstructing estimates to within half a
  quantization step of the curve's value range.  With
  ``CurveCache(quantize_bits=8)`` every inserted curve is re-encoded on the
  way in, so a fixed ``max_bytes`` budget holds roughly 8–12x more distinct
  queries.

``max_bytes`` bounds the cache by *accounted bytes* (payload + key + shared
grids), evicting least-recently-used entries past either the entry-count or
the byte budget.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..inference.precision import dequantize_values, quantize_values

#: fixed per-entry bookkeeping charge (OrderedDict slot, entry object)
_ENTRY_OVERHEAD_BYTES = 64


@dataclass
class CachedCurve:
    """A selectivity curve sampled on a fixed threshold grid."""

    thresholds: np.ndarray
    values: np.ndarray

    def __call__(self, threshold: float) -> float:
        """Interpolated estimate at one threshold (clamped to the grid ends)."""
        return float(np.interp(threshold, self.thresholds, self.values))

    def at(self, thresholds: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(thresholds, dtype=np.float64), self.thresholds, self.values)

    @property
    def payload_nbytes(self) -> int:
        """Bytes this entry owns exclusively (the shared grid is not counted)."""
        return int(self.values.nbytes)


@dataclass
class QuantizedCurve:
    """A selectivity curve stored as affine uint codes on a shared grid.

    Duck-types :class:`CachedCurve` (``thresholds`` / ``values`` /
    ``__call__`` / ``at``) while holding 1–2 bytes per control point.
    Non-negative curves quantize in the ``log1p`` domain: selectivities are
    counts spanning orders of magnitude, and a log-domain code grid keeps
    the *relative* reconstruction error uniform across the range (a linear
    uint8 grid would concentrate all of its error budget on the small
    values, exactly where relative accuracy matters).  Interpolation
    happens on the decoded values, matching :class:`CachedCurve` up to the
    quantization step.
    """

    thresholds: np.ndarray
    codes: np.ndarray
    scale: float
    offset: float
    transform: str = "linear"

    @classmethod
    def encode(
        cls, thresholds: np.ndarray, values: np.ndarray, bits: int = 8
    ) -> "QuantizedCurve":
        values = np.asarray(values, dtype=np.float64)
        if values.size and float(values.min()) >= 0.0:
            transform = "log1p"
            encoded = np.log1p(values)
        else:
            transform = "linear"
            encoded = values
        codes, scale, offset = quantize_values(encoded, bits=bits)
        return cls(
            thresholds=thresholds,
            codes=codes,
            scale=scale,
            offset=offset,
            transform=transform,
        )

    @property
    def values(self) -> np.ndarray:
        decoded = dequantize_values(self.codes, self.scale, self.offset)
        return np.expm1(decoded) if self.transform == "log1p" else decoded

    def __call__(self, threshold: float) -> float:
        return float(np.interp(threshold, self.thresholds, self.values))

    def at(self, thresholds: np.ndarray) -> np.ndarray:
        return np.interp(
            np.asarray(thresholds, dtype=np.float64), self.thresholds, self.values
        )

    @property
    def bits(self) -> int:
        return int(self.codes.dtype.itemsize * 8)

    @property
    def payload_nbytes(self) -> int:
        # codes + the two float64 decode constants
        return int(self.codes.nbytes) + 16


Curve = Union[CachedCurve, QuantizedCurve]


#: default rounding of query coordinates inside cache keys; overridable per
#: cache through ``CurveCache(decimals=...)`` / the service configuration
DEFAULT_KEY_DECIMALS = 10


def _rounded_query_bytes(query: np.ndarray, decimals: int) -> bytes:
    rounded = np.round(np.asarray(query, dtype=np.float64), decimals)
    # 0.0 and -0.0 have different byte patterns; normalise so they collide.
    rounded = rounded + 0.0
    return rounded.tobytes()


def query_cache_key(
    model_name: str, query: np.ndarray, decimals: int = DEFAULT_KEY_DECIMALS
) -> bytes:
    """Stable cache key: model name + the rounded query bytes."""
    return model_name.encode("utf-8") + b"\x00" + _rounded_query_bytes(query, decimals)


def compact_cache_key(
    model_name: str, query: np.ndarray, decimals: int = DEFAULT_KEY_DECIMALS
) -> bytes:
    """The cache's *stored* key: model name + a 16-byte query digest.

    Same identity semantics as :func:`query_cache_key` (which the shard
    router keeps using, so routing stays byte-compatible), but a
    byte-budgeted cache spends 16 bytes per key instead of ``dim * 8``.
    The model prefix stays in the clear for per-model invalidation scans.
    """
    digest = hashlib.blake2b(
        _rounded_query_bytes(query, decimals), digest_size=16
    ).digest()
    return model_name.encode("utf-8") + b"\x00" + digest


def _grid_digest(grid: np.ndarray) -> bytes:
    return hashlib.blake2b(np.ascontiguousarray(grid).tobytes(), digest_size=16).digest()


@dataclass
class _InternedGrid:
    """One shared threshold-grid array and how many entries reference it."""

    array: np.ndarray
    refcount: int = 0


@dataclass
class _Entry:
    """One cached curve plus the bookkeeping the byte accounting needs."""

    curve: Curve
    grid_key: Optional[Tuple[str, bytes]]
    nbytes: int


class CurveCache:
    """A bounded LRU mapping (model, query) -> cached selectivity curve.

    Parameters
    ----------
    capacity:
        Maximum number of cached curves; the least recently used entry is
        evicted when full.  ``capacity <= 0`` disables caching entirely
        (every ``get`` misses, ``put`` is a no-op).
    decimals:
        Rounding applied to query coordinates when building cache keys (see
        :func:`query_cache_key`).  Lower values make near-duplicate queries
        share one cached curve at the cost of interpolation accuracy.
    max_bytes:
        Optional byte budget over accounted cache memory (curve payloads,
        keys, interned grids, per-entry overhead); LRU entries are evicted
        past it.  ``None`` bounds by entry count only.
    quantize_bits:
        8 or 16 re-encodes every inserted :class:`CachedCurve` as a
        :class:`QuantizedCurve` with that many bits per control point;
        ``None`` stores curves as handed in.
    """

    def __init__(
        self,
        capacity: int = 256,
        decimals: int = DEFAULT_KEY_DECIMALS,
        max_bytes: Optional[int] = None,
        quantize_bits: Optional[int] = None,
    ) -> None:
        self.capacity = int(capacity)
        self.decimals = int(decimals)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        if quantize_bits is not None and quantize_bits not in (8, 16):
            raise ValueError(f"quantize_bits must be 8, 16 or None, got {quantize_bits!r}")
        self.quantize_bits = quantize_bits
        self._entries: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self._grids: Dict[Tuple[str, bytes], _InternedGrid] = {}
        self._entry_bytes = 0
        self._grid_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes(self) -> int:
        """Accounted cache memory: entry payloads + keys + shared grids."""
        return self._entry_bytes + self._grid_bytes

    @property
    def grid_count(self) -> int:
        return len(self._grids)

    # ------------------------------------------------------------------ #
    def get(
        self,
        model_name: str,
        query: np.ndarray,
        threshold: Optional[float] = None,
    ) -> Optional[Curve]:
        """Cached curve for a query, or None on a miss.

        When ``threshold`` is given, an entry whose grid does not reach it
        counts as a miss: interpolation would clamp to the grid end and
        silently return a wrong estimate, so the caller must rebuild the
        curve over a wider range instead.
        """
        key = compact_cache_key(model_name, query, decimals=self.decimals)
        entry = self._entries.get(key)
        if entry is None or (
            threshold is not None and threshold > entry.curve.thresholds[-1]
        ):
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.curve

    def put(self, model_name: str, query: np.ndarray, curve: Curve) -> None:
        if self.capacity <= 0:
            return
        key = compact_cache_key(model_name, query, decimals=self.decimals)
        if self.quantize_bits is not None and isinstance(curve, CachedCurve):
            curve = QuantizedCurve.encode(
                curve.thresholds, curve.values, bits=self.quantize_bits
            )
        grid_key = self._intern_grid(model_name, curve)
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._release_entry(previous)
        entry = _Entry(
            curve=curve,
            grid_key=grid_key,
            nbytes=curve.payload_nbytes + len(key) + _ENTRY_OVERHEAD_BYTES,
        )
        self._entries[key] = entry
        self._entry_bytes += entry.nbytes
        while self._entries and (
            len(self._entries) > self.capacity
            or (self.max_bytes is not None and self.bytes > self.max_bytes)
        ):
            _, evicted = self._entries.popitem(last=False)
            self._release_entry(evicted)
            self.evictions += 1

    def invalidate(self, model_name: Optional[str] = None) -> int:
        """Drop every entry (or only one model's — after a data update)."""
        if model_name is None:
            removed = len(self._entries)
            self._entries.clear()
            self._grids.clear()
            self._entry_bytes = 0
            self._grid_bytes = 0
        else:
            prefix = model_name.encode("utf-8") + b"\x00"
            stale = [key for key in self._entries if key.startswith(prefix)]
            for key in stale:
                self._release_entry(self._entries.pop(key))
            removed = len(stale)
        self.invalidations += removed
        return removed

    # ------------------------------------------------------------------ #
    # Grid interning
    # ------------------------------------------------------------------ #
    def _intern_grid(self, model_name: str, curve: Curve) -> Optional[Tuple[str, bytes]]:
        """Share one threshold-grid array per (model, grid) across entries.

        The inserted curve's ``thresholds`` is swapped for the interned
        array (byte-identical by construction), so N entries on the same
        grid hold one float64 array between them — and its bytes are
        charged to the budget exactly once.
        """
        grid = np.asarray(curve.thresholds)
        grid_key = (model_name, _grid_digest(grid))
        interned = self._grids.get(grid_key)
        if interned is None:
            interned = _InternedGrid(array=np.ascontiguousarray(grid, dtype=np.float64))
            self._grids[grid_key] = interned
            self._grid_bytes += int(interned.array.nbytes)
        curve.thresholds = interned.array
        interned.refcount += 1
        return grid_key

    def _release_entry(self, entry: _Entry) -> None:
        self._entry_bytes -= entry.nbytes
        if entry.grid_key is None:
            return
        interned = self._grids.get(entry.grid_key)
        if interned is None:
            return
        interned.refcount -= 1
        if interned.refcount <= 0:
            self._grid_bytes -= int(interned.array.nbytes)
            del self._grids[entry.grid_key]

    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "decimals": self.decimals,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "quantize_bits": self.quantize_bits,
            "grids": self.grid_count,
        }

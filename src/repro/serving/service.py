"""The estimator serving facade.

:class:`EstimationService` turns a directory of saved estimators (see
:mod:`repro.persistence`) into a queryable model store:

* models are loaded lazily by name, kept in memory and (by default) served
  through their **compiled** pure-NumPy inference kernels
  (:mod:`repro.inference`) — answers stay equal to the estimator's own
  ``estimate`` while skipping the autodiff graph entirely;
* batched ``(query, threshold)`` requests are routed through bounded
  micro-batches (:mod:`repro.serving.batching`);
* an LRU selectivity-curve cache (:mod:`repro.serving.cache`) answers
  repeated queries by interpolation instead of model forward passes; cache
  misses are filled through :meth:`EstimationService.curves_for_queries`,
  which builds many curves per kernel call (for SelNet kernels: one network
  forward per distinct query, whatever the grid resolution);
* per-model request counts, batch counts, latency and cache hit-rate
  statistics are tracked for observability;
* data updates are routed to estimators that support them, invalidating the
  model's cached curves and recompiling the model's kernel.

The ``repro serve-bench`` CLI subcommand drives
:func:`run_serving_benchmark` against this facade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..estimator import SelectivityEstimator
from ..obs import MetricsRegistry
from ..obs import trace as obstrace
from ..persistence import SIDECAR_FILE, load_estimator, read_metadata
from ..workloads import EstimateEvent, Scenario, TrafficGenerator, UpdateEvent
from .batching import iter_microbatches
from .cache import DEFAULT_KEY_DECIMALS, CachedCurve, CurveCache

PathLike = Union[str, Path]


class ModelStats:
    """One model's counters, as a view over the service's metrics registry.

    The registry series (``repro_service_*_total{model=...}``) are the
    single source of truth; this object caches the labeled children so the
    hot path increments without label resolution, and ``as_dict`` keeps the
    historical per-model stats shape.
    """

    __slots__ = (
        "requests",
        "batches",
        "cache_hits",
        "cache_misses",
        "curve_builds",
        "updates",
        "estimate_seconds",
        "latency",
    )

    def __init__(self, registry: MetricsRegistry, model: str) -> None:
        def counter(name: str, help_text: str):
            return registry.counter(name, help_text, ("model",)).labels(model=model)

        self.requests = counter(
            "repro_service_requests_total", "Estimate requests served (rows)"
        )
        self.batches = counter(
            "repro_service_batches_total", "Estimator/kernel micro-batch calls"
        )
        self.cache_hits = counter(
            "repro_service_cache_hits_total", "Curve-cache hits"
        )
        self.cache_misses = counter(
            "repro_service_cache_misses_total", "Curve-cache misses"
        )
        self.curve_builds = counter(
            "repro_service_curve_builds_total", "Selectivity curves built and cached"
        )
        self.updates = counter(
            "repro_service_updates_total", "Data updates applied to the model"
        )
        self.estimate_seconds = counter(
            "repro_service_estimate_seconds_total", "Wall seconds inside estimate()"
        )
        self.latency = registry.histogram(
            "repro_service_estimate_latency_seconds",
            "Per-call estimate() latency",
            ("model",),
        ).labels(model=model)

    def as_dict(self) -> Dict[str, float]:
        hits = int(self.cache_hits.value)
        misses = int(self.cache_misses.value)
        requests = int(self.requests.value)
        seconds = self.estimate_seconds.value
        total_cache = hits + misses
        return {
            "requests": requests,
            "batches": int(self.batches.value),
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hit_rate": hits / total_cache if total_cache else 0.0,
            "curve_builds": int(self.curve_builds.value),
            "updates": int(self.updates.value),
            "total_estimate_seconds": seconds,
            "mean_latency_ms_per_request": (
                1000.0 * seconds / requests if requests else 0.0
            ),
        }


class EstimationService:
    """Loads named estimators from disk and serves selectivity estimates.

    Parameters
    ----------
    model_dir:
        Directory whose sub-directories are saved estimators (each holding an
        ``estimator.json`` sidecar).  Optional — models can also be attached
        in-memory with :meth:`add_model`.
    cache_capacity:
        Maximum number of cached selectivity curves (``0`` disables the
        cache).
    curve_resolution:
        Number of grid points per cached curve.
    max_batch_size:
        Upper bound on the rows per estimator call (micro-batching).
    cache_key_decimals:
        Rounding of query coordinates inside cache keys (see
        :func:`repro.serving.cache.query_cache_key`); lower values let
        near-duplicate queries share one cached curve.
    use_compiled:
        Serve through each model's compiled inference kernel
        (:meth:`repro.SelectivityEstimator.compiled`, the default) instead
        of graph-mode ``estimate`` calls.  Estimates are equal either way;
        the compiled path skips the autodiff machinery.
    kernel_dtype:
        Precision tier for the compiled kernels (``"float64"``, ``"float32"``,
        ``"float16"`` or ``"int8"`` — see :mod:`repro.inference.precision`).
        Non-float64 tiers trade bit-parity for throughput / memory under an
        enforced error budget.  Ignored when ``use_compiled=False``.
    cache_max_bytes:
        Byte budget for the curve cache (None = unbounded; the entry
        ``cache_capacity`` still applies either way).
    cache_quantize_bits:
        Store cached curves quantized to 8- or 16-bit codes against an
        interned threshold grid (None keeps full float64 curves).
    """

    def __init__(
        self,
        model_dir: Optional[PathLike] = None,
        cache_capacity: int = 256,
        curve_resolution: int = 64,
        max_batch_size: int = 256,
        cache_key_decimals: int = DEFAULT_KEY_DECIMALS,
        use_compiled: bool = True,
        kernel_dtype: Optional[str] = None,
        cache_max_bytes: Optional[int] = None,
        cache_quantize_bits: Optional[int] = None,
    ) -> None:
        from ..inference.precision import parse_tier

        if curve_resolution < 2:
            raise ValueError("curve_resolution must be at least 2")
        self.model_dir = None if model_dir is None else Path(model_dir)
        self.curve_resolution = int(curve_resolution)
        self.max_batch_size = int(max_batch_size)
        self.use_compiled = bool(use_compiled)
        self._precision = parse_tier(kernel_dtype or "float64")
        self.kernel_dtype = self._precision.name
        self.cache = CurveCache(
            capacity=cache_capacity,
            decimals=cache_key_decimals,
            max_bytes=cache_max_bytes,
            quantize_bits=cache_quantize_bits,
        )
        self.metrics = MetricsRegistry()
        self._cache_bytes_gauge = self.metrics.gauge(
            "repro_cache_bytes", "Bytes held by the curve cache"
        )
        self._kernel_dtype_gauge = self.metrics.gauge(
            "repro_kernel_dtype",
            "Compiled-kernel precision tier in use (value is always 1)",
            ("model", "dtype"),
        )
        self._estimators: Dict[str, SelectivityEstimator] = {}
        self._metadata: Dict[str, Dict[str, Any]] = {}
        self._stats: Dict[str, ModelStats] = {}

    @classmethod
    def from_store(cls, store, **kwargs) -> "EstimationService":
        """A service over a pipeline artifact store's trained models.

        Every :class:`repro.pipeline.TrainSpec` artifact is saved in the
        persistence layout under ``<store>/train/<spec-hash>/``, so the
        store's ``train/`` namespace is directly a model directory: models
        are addressed by their spec hash (``service.estimate(train_spec.
        spec_hash, ...)``).  ``kwargs`` are forwarded to the constructor.
        """
        return cls(model_dir=store.models_dir(), **kwargs)

    # ------------------------------------------------------------------ #
    # Model store
    # ------------------------------------------------------------------ #
    def available_models(self) -> List[str]:
        """Names of every servable model (in-memory plus on-disk).

        Dot-prefixed directories are skipped: the artifact store builds
        models inside hidden ``.tmp-*`` siblings before atomically renaming
        them into place, and a half-written temp dir must never be listed
        (or loaded) as a model.
        """
        names = set(self._estimators)
        if self.model_dir is not None and self.model_dir.is_dir():
            for child in sorted(self.model_dir.iterdir()):
                if child.name.startswith("."):
                    continue
                if (child / SIDECAR_FILE).is_file():
                    names.add(child.name)
        return sorted(names)

    def describe_models(self) -> Dict[str, Dict[str, Any]]:
        """Sidecar metadata for every servable model (no unpickling)."""
        described: Dict[str, Dict[str, Any]] = {}
        for name in self.available_models():
            if name in self._metadata:
                described[name] = self._metadata[name]
            elif self.model_dir is not None and (self.model_dir / name / SIDECAR_FILE).is_file():
                described[name] = read_metadata(self.model_dir / name)
            else:
                estimator = self._estimators[name]
                described[name] = {
                    "name": estimator.name,
                    "class": type(estimator).__qualname__,
                    "guarantees_consistency": estimator.guarantees_consistency,
                    "supports_updates": estimator.supports_updates,
                }
        return described

    def add_model(
        self,
        name: str,
        estimator: SelectivityEstimator,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Attach an already-constructed (fitted) estimator under ``name``.

        Replacing an existing model drops its cached selectivity curves —
        they describe the old estimator.
        """
        if name in self._estimators:
            self.cache.invalidate(name)
        self._estimators[name] = estimator
        if metadata is not None:
            self._metadata[name] = metadata
        self._model_stats(name)

    def get(self, name: str) -> SelectivityEstimator:
        """The estimator for ``name``, loading it from disk on first use."""
        if name in self._estimators:
            return self._estimators[name]
        if self.model_dir is None:
            raise KeyError(f"unknown model {name!r} (no model_dir configured)")
        path = self.model_dir / name
        if name.startswith(".") or not (path / SIDECAR_FILE).is_file():
            raise KeyError(
                f"unknown model {name!r}; available: {self.available_models()}"
            )
        # mmap: shard workers warming one shared model directory page the
        # weight bytes in through the OS cache instead of each reading the
        # full checkpoint (unmappable archives fall back to eager reads).
        estimator = load_estimator(path, mmap=True)
        self._estimators[name] = estimator
        self._metadata[name] = read_metadata(path)
        self._model_stats(name)
        return estimator

    def _model_stats(self, name: str) -> ModelStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats.setdefault(name, ModelStats(self.metrics, name))
        return stats

    def preload(self) -> List[str]:
        """Load every disk-backed model now (shard warm-up at spawn).

        Returns the names actually loaded from ``model_dir``; in-memory
        models are already resident.  A serving process calls this once at
        start so the first request never pays model-deserialization latency.
        """
        warmed: List[str] = []
        for name in self.available_models():
            if name not in self._estimators:
                self.get(name)
                warmed.append(name)
        return warmed

    def reload_models(self) -> Dict[str, Any]:
        """Hot-swap disk-backed models: drop them so the next use reloads.

        Models that came from ``model_dir`` are evicted from memory together
        with their cached curves; models attached in-memory via
        :meth:`add_model` (no on-disk source to re-read) are kept.  Newly
        appeared artifacts in ``model_dir`` become servable automatically,
        and the dropped ones are reloaded lazily — so an in-flight request
        that already holds its estimator finishes against the old weights
        while the next request sees the new artifact.
        """
        reloaded: List[str] = []
        kept: List[str] = []
        for name in sorted(self._estimators):
            on_disk = (
                self.model_dir is not None
                and not name.startswith(".")
                and (self.model_dir / name / SIDECAR_FILE).is_file()
            )
            if on_disk:
                del self._estimators[name]
                self._metadata.pop(name, None)
                self.cache.invalidate(name)
                reloaded.append(name)
            else:
                kept.append(name)
        return {"reloaded": reloaded, "kept": kept, "available": self.available_models()}

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        name: str,
        queries: np.ndarray,
        thresholds: np.ndarray,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Batched selectivity estimates from the named model.

        With ``use_cache=True`` every answer comes from the model's cached
        selectivity curve (built on first sight of a query, then shared by
        all thresholds of that query); with ``use_cache=False`` the call is
        routed straight through micro-batched estimator evaluation and is
        bit-identical to calling the estimator directly.
        """
        estimator = self.get(name)
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if queries.size == 0 and thresholds.ndim == 1 and len(thresholds) == 0:
            return np.empty(0, dtype=np.float64)
        if queries.ndim != 2 or thresholds.ndim != 1 or len(queries) != len(thresholds):
            raise ValueError(
                f"expected aligned (n, dim) queries and (n,) thresholds, got "
                f"{queries.shape} and {thresholds.shape}"
            )
        stats = self._model_stats(name)
        start = time.perf_counter()
        if use_cache and self.cache.capacity > 0:
            results = self._estimate_cached(name, estimator, queries, thresholds, stats)
        else:
            results = self._estimate_direct(name, estimator, queries, thresholds, stats)
        elapsed = time.perf_counter() - start
        stats.requests.inc(len(thresholds))
        stats.estimate_seconds.inc(elapsed)
        stats.latency.observe(elapsed)
        return results

    def estimate_one(
        self, name: str, query: np.ndarray, threshold: float, use_cache: bool = True
    ) -> float:
        query = np.asarray(query, dtype=np.float64)
        result = self.estimate(name, query[None, :], np.asarray([threshold]), use_cache=use_cache)
        return float(result[0])

    def _kernel(self, name: str):
        """The model's compiled inference kernel (None in graph mode)."""
        if not self.use_compiled:
            return None
        tier = self._precision
        kernel = self.get(name).compiled(
            dtype=tier.storage_dtype, quantize=tier.quantize
        )
        self._kernel_dtype_gauge.labels(model=name, dtype=kernel.precision).set(1.0)
        return kernel

    def _estimate_direct(
        self,
        name: str,
        estimator: SelectivityEstimator,
        queries: np.ndarray,
        thresholds: np.ndarray,
        stats: ModelStats,
    ) -> np.ndarray:
        kernel = self._kernel(name)
        results = np.empty(len(thresholds), dtype=np.float64)
        with obstrace.span("service.kernel_execute", model=name, rows=len(thresholds)):
            for batch in iter_microbatches(queries, thresholds, self.max_batch_size):
                if kernel is not None:
                    results[batch.positions] = kernel.predict(batch.queries, batch.thresholds)
                else:
                    results[batch.positions] = estimator.estimate(batch.queries, batch.thresholds)
                stats.batches.inc()
        return results

    def _estimate_cached(
        self,
        name: str,
        estimator: SelectivityEstimator,
        queries: np.ndarray,
        thresholds: np.ndarray,
        stats: ModelStats,
    ) -> np.ndarray:
        results = np.empty(len(thresholds), dtype=np.float64)
        miss_positions: List[int] = []
        with obstrace.span("service.cache_lookup", model=name, rows=len(thresholds)) as lookup:
            for i in range(len(thresholds)):
                # An entry whose grid stops short of the requested threshold is a
                # miss: the curve gets rebuilt over a range covering it.
                curve = self.cache.get(name, queries[i], threshold=float(thresholds[i]))
                if curve is not None:
                    results[i] = curve(thresholds[i])
                    stats.cache_hits.inc()
                else:
                    miss_positions.append(i)
                    stats.cache_misses.inc()
            lookup["misses"] = len(miss_positions)
        if miss_positions:
            self._fill_misses(name, estimator, queries, thresholds, miss_positions, results, stats)
        return results

    def _curve_grid(self, estimator: SelectivityEstimator, t_hi: float) -> np.ndarray:
        t_max = getattr(estimator, "_t_max", None)
        upper = max(float(t_max) if t_max else 0.0, float(t_hi) * 1.05)
        if upper <= 0.0:
            upper = 1.0
        return np.linspace(0.0, upper, self.curve_resolution)

    def _build_curve_values(
        self,
        name: str,
        estimator: SelectivityEstimator,
        unique_queries: np.ndarray,
        grid: np.ndarray,
        stats: ModelStats,
    ) -> np.ndarray:
        """Curve values for distinct queries, shape ``(n, len(grid))``.

        Batched per micro-batch: with a curve-fusing kernel (the SelNet
        family) one call computes control points once per query and reads
        the whole grid off them, so a micro-batch of ``max_batch_size``
        queries is one forward pass; the generic fallback expands to
        (query, threshold) rows and is chunked so one call never exceeds
        ``max_batch_size`` rows.
        """
        kernel = self._kernel(name)
        num_grid = len(grid)
        values = np.empty((len(unique_queries), num_grid), dtype=np.float64)
        with obstrace.span("service.kernel_execute", model=name, rows=len(unique_queries)):
            if kernel is not None and kernel.fuses_curves:
                for start in range(0, len(unique_queries), self.max_batch_size):
                    stop = min(start + self.max_batch_size, len(unique_queries))
                    values[start:stop] = kernel.curve_values(unique_queries[start:stop], grid)
                    stats.batches.inc()
            else:
                # Non-fusing path: expand to (query, grid point) rows and keep
                # every estimator call within the configured micro-batch bound.
                repeated = np.repeat(unique_queries, num_grid, axis=0)
                tiled = np.tile(grid, len(unique_queries))
                flat = values.reshape(-1)
                for batch in iter_microbatches(repeated, tiled, self.max_batch_size):
                    if kernel is not None:
                        flat[batch.positions] = kernel.predict(batch.queries, batch.thresholds)
                    else:
                        flat[batch.positions] = estimator.estimate(batch.queries, batch.thresholds)
                    stats.batches.inc()
        return values

    def _fill_misses(
        self,
        name: str,
        estimator: SelectivityEstimator,
        queries: np.ndarray,
        thresholds: np.ndarray,
        miss_positions: List[int],
        results: np.ndarray,
        stats: ModelStats,
    ) -> None:
        """Build curves for unseen queries in batched calls, cache, answer."""
        unique: Dict[bytes, List[int]] = {}
        for position in miss_positions:
            unique.setdefault(queries[position].tobytes(), []).append(position)

        grid = self._curve_grid(estimator, float(thresholds[miss_positions].max()))
        unique_rows = [positions[0] for positions in unique.values()]
        values = self._build_curve_values(name, estimator, queries[unique_rows], grid, stats)

        for index, positions in enumerate(unique.values()):
            curve = CachedCurve(thresholds=grid, values=values[index])
            self.cache.put(name, queries[positions[0]], curve)
            stats.curve_builds.inc()
            for position in positions:
                results[position] = curve(thresholds[position])

    def curves_for_queries(
        self, name: str, queries: np.ndarray, thresholds: Optional[np.ndarray] = None
    ) -> List[CachedCurve]:
        """Selectivity curves for a batch of queries in batched kernel calls.

        With the default grid (``thresholds=None``) every curve is also
        cached for later ``estimate`` calls; a caller-supplied grid is *not*
        cached (an arbitrary — possibly coarse or narrow — grid entering the
        shared cache would silently degrade every subsequent estimate for
        those queries).
        """
        estimator = self.get(name)
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError(f"queries must be a 2-D array, got shape {queries.shape}")
        expected = estimator.expected_input_dim
        if expected is not None and queries.shape[1] != expected:
            raise ValueError(
                f"queries have {queries.shape[1]} dimensions but {name!r} was fitted "
                f"on {expected}-dimensional vectors"
            )
        default_grid = thresholds is None
        if default_grid:
            grid = self._curve_grid(estimator, t_hi=0.0)
        else:
            grid = np.asarray(thresholds, dtype=np.float64)
        stats = self._model_stats(name)
        values = self._build_curve_values(name, estimator, queries, grid, stats)
        curves: List[CachedCurve] = []
        for row in range(len(queries)):
            curve = CachedCurve(thresholds=grid, values=values[row])
            if default_grid:
                self.cache.put(name, queries[row], curve)
                stats.curve_builds.inc()
            curves.append(curve)
        return curves

    def curve(
        self, name: str, query: np.ndarray, thresholds: Optional[np.ndarray] = None
    ) -> CachedCurve:
        """The named model's selectivity curve for one query.

        One-query convenience wrapper around :meth:`curves_for_queries`
        (same caching rules).
        """
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError(f"expected a single 1-D query vector, got shape {query.shape}")
        return self.curves_for_queries(name, query[None, :], thresholds)[0]

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update(
        self,
        name: str,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[Sequence[int]] = None,
    ):
        """Route a data update to the named model, dropping its cached curves.

        The estimator invalidates its own compiled kernel as part of
        ``update``, so the next request through the compiled path freezes
        the post-update weights.  Raises
        :class:`repro.estimator.UpdateNotSupportedError` when the model's
        estimator does not implement the update protocol.
        """
        estimator = self.get(name)
        reports = estimator.update(inserts=inserts, deletes=deletes)
        self.cache.invalidate(name)
        self._model_stats(name).updates.inc()
        return reports

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Service-wide and per-model counters (JSON-able).

        The historical keys are views over :attr:`metrics`; the raw
        registry snapshot rides along under ``"metrics"`` so callers in
        other processes (shard workers answering a ``stats`` control
        message) can merge it into a cluster-wide snapshot.
        """
        self._cache_bytes_gauge.set(float(self.cache.bytes))
        per_model = {name: stats.as_dict() for name, stats in self._stats.items()}
        kernels = {
            name: kernel.describe()
            for name, estimator in self._estimators.items()
            if (kernel := estimator.__dict__.get("_compiled_kernel")) is not None
        }
        return {
            "models_loaded": sorted(self._estimators),
            "use_compiled": self.use_compiled,
            "kernel_dtype": self.kernel_dtype,
            "kernels": kernels,
            "cache": self.cache.stats(),
            "per_model": per_model,
            "total_requests": sum(int(stats.requests.value) for stats in self._stats.values()),
            "total_batches": sum(int(stats.batches.value) for stats in self._stats.values()),
            "metrics": self.metrics.snapshot().as_dict(),
        }


# ---------------------------------------------------------------------- #
# Serving benchmark (the `repro serve-bench` subcommand)
# ---------------------------------------------------------------------- #
@dataclass
class ServingBenchmarkReport:
    """Results of one serving benchmark run against one model."""

    model: str
    num_requests: int
    arrival_batch: int
    use_cache: bool
    elapsed_seconds: float
    requests_per_second: float
    mean_batch_latency_ms: float
    p50_batch_latency_ms: float
    p95_batch_latency_ms: float
    cache_hit_rate: float
    max_interpolation_error: float
    stats: Dict[str, Any] = field(default_factory=dict)
    scenario: Optional[str] = None
    updates_applied: int = 0
    updates_skipped: int = 0

    @property
    def text(self) -> str:
        scenario = f" scenario={self.scenario}" if self.scenario else ""
        lines = [
            f"serve-bench: model={self.model} requests={self.num_requests} "
            f"arrival_batch={self.arrival_batch} cache={'on' if self.use_cache else 'off'}"
            f"{scenario}",
            f"  throughput        : {self.requests_per_second:>10.1f} requests/s "
            f"({self.elapsed_seconds:.3f} s total)",
            f"  batch latency (ms): mean {self.mean_batch_latency_ms:.2f}  "
            f"p50 {self.p50_batch_latency_ms:.2f}  p95 {self.p95_batch_latency_ms:.2f}",
            f"  cache hit rate    : {100.0 * self.cache_hit_rate:>6.1f} %",
            (
                "  max curve error   :    n/a (model changed by mid-stream updates)"
                if np.isnan(self.max_interpolation_error)
                else f"  max curve error   : {100.0 * self.max_interpolation_error:>6.2f} % "
                "(cached-curve vs direct estimate)"
            ),
        ]
        if self.updates_applied or self.updates_skipped:
            lines.append(
                f"  data updates      : {self.updates_applied} applied, "
                f"{self.updates_skipped} skipped (model lacks update support)"
            )
        return "\n".join(lines)


def run_serving_benchmark(
    service: EstimationService,
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    num_requests: int = 2000,
    arrival_batch: int = 32,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.7,
    use_cache: bool = True,
    seed: int = 0,
    scenario: Optional[Union[str, "Scenario"]] = None,
) -> ServingBenchmarkReport:
    """Replay a request stream against the service and measure it.

    With ``scenario=None`` requests are sampled from the provided
    (query, threshold) pool with a hot set: ``hot_probability`` of the
    traffic goes to the ``hot_fraction`` most popular rows — the reuse
    pattern that makes the selectivity-curve cache pay off.

    Alternatively ``scenario`` names a :mod:`repro.workloads.traffic`
    scenario (``uniform``, ``zipfian``, ``bursty``, ``update-heavy``,
    ``drifting``); the seeded :class:`~repro.workloads.TrafficGenerator`
    then shapes arrivals, popularity and interleaved data updates, and the
    exact same event stream can be replayed against a sharded cluster for
    apples-to-apples throughput comparisons.
    """
    queries = np.asarray(queries, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    pool_size = len(thresholds)

    # Counters are cumulative per service; remember where this run starts so
    # the report describes exactly this benchmark's traffic even when several
    # benchmarks share one service (e.g. cache-on vs cache-off comparisons).
    counters_before = dict(service.stats()["per_model"].get(model, {}))

    scenario_name: Optional[str] = None
    if scenario is None:
        # Legacy hot-set stream, kept inline (not expressed as a "hotset"
        # Scenario) so the exact per-seed RNG draw order — and therefore
        # every recorded pre-scenario benchmark number — stays bit-stable.
        rng = np.random.default_rng(seed)
        hot_size = max(int(hot_fraction * pool_size), 1)
        choices = np.where(
            rng.random(num_requests) < hot_probability,
            rng.integers(0, hot_size, size=num_requests),
            rng.integers(0, pool_size, size=num_requests),
        )
        events: List[Any] = [
            EstimateEvent(indices=choices[begin : begin + arrival_batch])
            for begin in range(0, num_requests, arrival_batch)
        ]
    else:
        generator = TrafficGenerator(
            scenario, pool_size=pool_size, seed=seed, insert_dim=queries.shape[1]
        )
        scenario_name = generator.scenario.name
        events = generator.materialize(num_requests, arrival_batch)

    supports_updates = service.get(model).supports_updates
    updates_applied = 0
    updates_skipped = 0
    latencies: List[float] = []
    served = np.empty(num_requests, dtype=np.float64)
    choice_chunks: List[np.ndarray] = []
    cursor = 0
    start = time.perf_counter()
    for event in events:
        if isinstance(event, UpdateEvent):
            if supports_updates:
                service.update(model, inserts=event.inserts, deletes=event.deletes)
                updates_applied += 1
            else:
                updates_skipped += 1
            continue
        index = event.indices
        if len(index) == 0:
            continue
        choice_chunks.append(index)
        tick = time.perf_counter()
        served[cursor : cursor + len(index)] = service.estimate(
            model, queries[index], thresholds[index], use_cache=use_cache
        )
        latencies.append(1000.0 * (time.perf_counter() - tick))
        cursor += len(index)
    elapsed = time.perf_counter() - start
    choices = (
        np.concatenate(choice_chunks) if choice_chunks else np.empty(0, dtype=np.int64)
    )
    # Snapshot before the verification pass and subtract the pre-run counters
    # so the embedded stats describe exactly this benchmark's traffic.
    stats_snapshot = service.stats()
    model_stats = dict(stats_snapshot["per_model"].get(model, {}))
    for key in (
        "requests",
        "batches",
        "cache_hits",
        "cache_misses",
        "curve_builds",
        "updates",
        "total_estimate_seconds",
    ):
        model_stats[key] = model_stats.get(key, 0) - counters_before.get(key, 0)
    run_cache_total = model_stats["cache_hits"] + model_stats["cache_misses"]
    model_stats["cache_hit_rate"] = (
        model_stats["cache_hits"] / run_cache_total if run_cache_total else 0.0
    )
    model_stats["mean_latency_ms_per_request"] = (
        1000.0 * model_stats["total_estimate_seconds"] / model_stats["requests"]
        if model_stats["requests"]
        else 0.0
    )
    stats_snapshot["per_model"][model] = model_stats

    # Accuracy of the cached-curve interpolation against direct evaluation,
    # checked on a sample of the stream (straight through the estimator, so
    # the verification traffic does not pollute the service stats).  Once
    # mid-stream updates changed the model, early served values reflect the
    # pre-update state and the comparison would conflate model drift with
    # interpolation error — reported as NaN ("n/a") instead.
    sample = choices[: min(256, num_requests)]
    if updates_applied or not len(sample):
        max_error = float("nan") if updates_applied else 0.0
    else:
        direct = service.get(model).estimate(queries[sample], thresholds[sample])
        sampled_served = served[: len(sample)]
        scale = np.maximum(np.abs(direct), 1.0)
        max_error = float(np.max(np.abs(sampled_served - direct) / scale))

    latencies_array = np.asarray(latencies) if latencies else np.zeros(1)
    return ServingBenchmarkReport(
        model=model,
        num_requests=num_requests,
        arrival_batch=arrival_batch,
        use_cache=use_cache,
        elapsed_seconds=elapsed,
        requests_per_second=num_requests / elapsed if elapsed > 0 else float("inf"),
        mean_batch_latency_ms=float(latencies_array.mean()),
        p50_batch_latency_ms=float(np.percentile(latencies_array, 50)),
        p95_batch_latency_ms=float(np.percentile(latencies_array, 95)),
        cache_hit_rate=float(model_stats.get("cache_hit_rate", 0.0)),
        max_interpolation_error=max_error,
        stats=stats_snapshot,
        scenario=scenario_name,
        updates_applied=updates_applied,
        updates_skipped=updates_skipped,
    )

"""Numerical gradient checking utilities.

Used by the test suite to verify every differentiable operation and every
network module against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function taking the tensors in ``inputs`` and returning a tensor.
    inputs:
        The input tensors; the one at position ``index`` is perturbed.
    index:
        Which input to differentiate with respect to.
    epsilon:
        Finite-difference step.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - epsilon
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    epsilon: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients of ``sum(fn(*inputs))``.

    Returns ``True`` when all gradients match within tolerance; raises
    ``AssertionError`` with a diagnostic message otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.sum().backward()
    for position, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, position, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {position}: max abs diff {worst:.3e}\n"
                f"analytic=\n{analytic}\nnumeric=\n{numeric}"
            )
    return True

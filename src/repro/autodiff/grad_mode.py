"""Gradient-recording switch (``no_grad`` / ``enable_grad``), thread-local.

Training builds the full reverse-mode tape; inference only needs the forward
values.  The context managers in this module flip a flag that
:meth:`repro.autodiff.Tensor._make` consults: while gradient recording is
disabled, every operation returns a plain leaf tensor — no parent references,
no backward closures kept alive, no graph to topologically sort — so
graph-mode inference stops paying the tape's memory and bookkeeping costs
even where the compiled inference path (:mod:`repro.inference`) is not used.

The flag is **thread-local** (like PyTorch's grad mode): the pipeline runner
(:mod:`repro.pipeline.runner`) trains independent experiment branches on a
thread pool, and a serving path entering ``no_grad`` on one thread must
never disable tape construction for a training loop running on another.
Each thread starts with recording enabled.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

class _GradState(threading.local):
    """Per-thread recording flag; the class attribute is each thread's default,
    so the hot-path check stays a plain attribute read (no getattr fallback)."""

    enabled = True


_state = _GradState()


def is_grad_enabled() -> bool:
    """Whether operations on this thread currently record the backward graph."""
    return _state.enabled


def set_grad_enabled(enabled: bool) -> bool:
    """Set this thread's gradient-recording flag; returns the previous value."""
    previous = _state.enabled
    _state.enabled = bool(enabled)
    return previous


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable gradient recording for the enclosed block (this thread only).

    Inside the block every autodiff operation produces a graph-free tensor
    (``requires_grad=False``, no parents, no backward closure), making
    forward passes allocation-lean.  Nesting is safe; the previous state is
    restored on exit even when the block raises.
    """
    previous = set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextmanager
def enable_grad() -> Iterator[None]:
    """Force gradient recording on for the enclosed block (this thread only).

    The inverse escape hatch: code running under :func:`no_grad` (e.g. a
    serving path) can still build a tape locally — used by the inference
    benchmark to measure the true training-graph forward cost.
    """
    previous = set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)

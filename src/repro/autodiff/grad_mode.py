"""Global gradient-recording switch (``no_grad`` / ``enable_grad``).

Training builds the full reverse-mode tape; inference only needs the forward
values.  The context managers in this module flip a process-wide flag that
:meth:`repro.autodiff.Tensor._make` consults: while gradient recording is
disabled, every operation returns a plain leaf tensor — no parent references,
no backward closures kept alive, no graph to topologically sort — so
graph-mode inference stops paying the tape's memory and bookkeeping costs
even where the compiled inference path (:mod:`repro.inference`) is not used.

The flag is intentionally process-global rather than thread-local: the
library's execution model is single-threaded per process (the cluster tier
scales with worker *processes*), and a plain module attribute keeps the
per-operation check as cheap as possible on the hot path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_grad_enabled: bool = True


def is_grad_enabled() -> bool:
    """Whether operations currently record the backward graph."""
    return _grad_enabled


def set_grad_enabled(enabled: bool) -> bool:
    """Set the global gradient-recording flag; returns the previous value."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = bool(enabled)
    return previous


@contextmanager
def no_grad() -> Iterator[None]:
    """Disable gradient recording for the enclosed block.

    Inside the block every autodiff operation produces a graph-free tensor
    (``requires_grad=False``, no parents, no backward closure), making
    forward passes allocation-lean.  Nesting is safe; the previous state is
    restored on exit even when the block raises.
    """
    previous = set_grad_enabled(False)
    try:
        yield
    finally:
        set_grad_enabled(previous)


@contextmanager
def enable_grad() -> Iterator[None]:
    """Force gradient recording on for the enclosed block.

    The inverse escape hatch: code running under :func:`no_grad` (e.g. a
    serving path) can still build a tape locally — used by the inference
    benchmark to measure the true training-graph forward cost.
    """
    previous = set_grad_enabled(True)
    try:
        yield
    finally:
        set_grad_enabled(previous)

"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the computational substrate of the SelNet reproduction.  The
paper's models were originally implemented in TensorFlow; no deep-learning
framework is available in this environment, so we provide a small,
well-tested reverse-mode autodiff engine instead.

The design follows the classic tape-based approach: every :class:`Tensor`
records the operation that produced it and references to its parents.  A call
to :meth:`Tensor.backward` topologically sorts the graph and accumulates
gradients.  All operations are vectorised over numpy arrays and are
broadcasting-aware (gradients are "unbroadcast" back to the parents' shapes).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from . import grad_mode

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    """Coerce ``value`` into a float numpy array."""
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    When an operation broadcasts one of its inputs, the gradient flowing back
    has the broadcast shape.  The chain rule requires summing over the
    broadcast axes so the gradient matches the original input's shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        The array (or scalar) wrapped by this tensor.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    parents:
        Tensors this tensor was computed from (internal use).
    backward_fn:
        Function mapping the output gradient to a tuple of gradients, one per
        parent (internal use).
    name:
        Optional human-readable label, useful when debugging graphs.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
        name: str = "",
    ) -> "Tensor":
        # requires_grad propagation: an output records the tape only when at
        # least one parent participates in it AND recording is on for this
        # thread (see repro.autodiff.grad_mode) — otherwise the backward
        # closure is dropped immediately and the result is a plain leaf.
        if not grad_mode._state.enabled:
            return Tensor(data, requires_grad=False, name=name)
        requires_grad = any(p.requires_grad for p in parents)
        if not requires_grad:
            return Tensor(data, requires_grad=False, name=name)
        return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn, name=name)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.  If
            omitted, this tensor must be a scalar and the gradient defaults
            to 1.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order = self._topological_order()
        grads: dict = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and (node._backward_fn is None or not node._parents):
                # Leaf tensor: accumulate into .grad.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    def _topological_order(self) -> list:
        """Return tensors reachable from ``self`` in reverse topological order."""
        visited = set()
        order: list = []

        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return list(reversed(order))

    # ------------------------------------------------------------------ #
    # Arithmetic operators
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward_fn(grad: np.ndarray):
            return (unbroadcast(grad, self.shape), unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward_fn, name="add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data - other.data

        def backward_fn(grad: np.ndarray):
            return (unbroadcast(grad, self.shape), unbroadcast(-grad, other.shape))

        return self._make(out_data, (self, other), backward_fn, name="sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward_fn(grad: np.ndarray):
            return (
                unbroadcast(grad * other.data, self.shape),
                unbroadcast(grad * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward_fn, name="mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward_fn(grad: np.ndarray):
            return (
                unbroadcast(grad / other.data, self.shape),
                unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return self._make(out_data, (self, other), backward_fn, name="div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward_fn(grad: np.ndarray):
            return (-grad,)

        return self._make(-self.data, (self,), backward_fn, name="neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward_fn(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return self._make(out_data, (self,), backward_fn, name="pow")

    # ------------------------------------------------------------------ #
    # Matrix operations
    # ------------------------------------------------------------------ #
    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Matrix product ``self @ other`` (2-D by 2-D, or batched by 2-D)."""
        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward_fn(grad: np.ndarray):
            grad_self = grad @ np.swapaxes(other.data, -1, -2)
            grad_other = np.swapaxes(self.data, -1, -2) @ grad
            return (unbroadcast(grad_self, self.shape), unbroadcast(grad_other, other.shape))

        return self._make(out_data, (self, other), backward_fn, name="matmul")

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)

        def backward_fn(grad: np.ndarray):
            if axes is None:
                return (np.transpose(grad),)
            inverse = np.argsort(axes)
            return (np.transpose(grad, inverse),)

        return self._make(out_data, (self,), backward_fn, name="transpose")

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward_fn(grad: np.ndarray):
            return (grad.reshape(original_shape),)

        return self._make(out_data, (self,), backward_fn, name="reshape")

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.shape

        def backward_fn(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, input_shape).copy(),)
            grad_expanded = grad
            if not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % len(input_shape) for a in axes):
                    grad_expanded = np.expand_dims(grad_expanded, ax)
            return (np.broadcast_to(grad_expanded, input_shape).copy(),)

        return self._make(out_data, (self,), backward_fn, name="sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        input_shape = self.shape

        def backward_fn(grad: np.ndarray):
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                return (mask * grad,)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            grad_expanded = grad if keepdims else np.expand_dims(grad, axis)
            return (mask * np.broadcast_to(grad_expanded, input_shape),)

        return self._make(out_data, (self,), backward_fn, name="max")

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(grad: np.ndarray):
            return (grad * out_data,)

        return self._make(out_data, (self,), backward_fn, name="exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward_fn(grad: np.ndarray):
            return (grad / self.data,)

        return self._make(out_data, (self,), backward_fn, name="log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward_fn(grad: np.ndarray):
            return (grad * 0.5 / np.maximum(out_data, 1e-12),)

        return self._make(out_data, (self,), backward_fn, name="sqrt")

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward_fn(grad: np.ndarray):
            return (grad * (self.data > 0.0),)

        return self._make(out_data, (self,), backward_fn, name="relu")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(grad: np.ndarray):
            return (grad * out_data * (1.0 - out_data),)

        return self._make(out_data, (self,), backward_fn, name="sigmoid")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(grad: np.ndarray):
            return (grad * (1.0 - out_data ** 2),)

        return self._make(out_data, (self,), backward_fn, name="tanh")

    def softplus(self) -> "Tensor":
        out_data = np.logaddexp(0.0, self.data)

        def backward_fn(grad: np.ndarray):
            return (grad / (1.0 + np.exp(-self.data)),)

        return self._make(out_data, (self,), backward_fn, name="softplus")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward_fn(grad: np.ndarray):
            return (grad * np.sign(self.data),)

        return self._make(out_data, (self,), backward_fn, name="abs")

    def clip(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)

        def backward_fn(grad: np.ndarray):
            mask = np.ones_like(self.data)
            if minimum is not None:
                mask = mask * (self.data >= minimum)
            if maximum is not None:
                mask = mask * (self.data <= maximum)
            return (grad * mask,)

        return self._make(out_data, (self,), backward_fn, name="clip")

    # ------------------------------------------------------------------ #
    # Indexing / shaping
    # ------------------------------------------------------------------ #
    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        input_shape = self.shape

        def backward_fn(grad: np.ndarray):
            full = np.zeros(input_shape, dtype=self.data.dtype)
            np.add.at(full, key, grad)
            return (full,)

        return self._make(out_data, (self,), backward_fn, name="getitem")

    # Comparison operators return plain numpy boolean arrays (no gradient).
    def __gt__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data

    def __ge__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data >= other_data

    def __le__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data <= other_data


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]

    def backward_fn(grad: np.ndarray):
        grads = []
        start = 0
        for size in sizes:
            index = [slice(None)] * grad.ndim
            index[axis if axis >= 0 else grad.ndim + axis] = slice(start, start + size)
            grads.append(grad[tuple(index)])
            start += size
        return tuple(grads)

    return Tensor._make(out_data, tensors, backward_fn, name="concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(out_data, tensors, backward_fn, name="stack")


def where(condition: np.ndarray, a: Union[Tensor, ArrayLike], b: Union[Tensor, ArrayLike]) -> Tensor:
    """Differentiable selection: ``condition ? a : b``.

    ``condition`` is a boolean numpy array (no gradient flows through it).
    """
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward_fn(grad: np.ndarray):
        return (
            unbroadcast(grad * condition, a.shape),
            unbroadcast(grad * (~condition), b.shape),
        )

    return Tensor._make(out_data, (a, b), backward_fn, name="where")


def maximum(a: Union[Tensor, ArrayLike], b: Union[Tensor, ArrayLike]) -> Tensor:
    """Elementwise maximum with gradient routed to the larger input."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    out_data = np.maximum(a.data, b.data)

    def backward_fn(grad: np.ndarray):
        mask = a.data >= b.data
        return (
            unbroadcast(grad * mask, a.shape),
            unbroadcast(grad * (~mask), b.shape),
        )

    return Tensor._make(out_data, (a, b), backward_fn, name="maximum")


def minimum(a: Union[Tensor, ArrayLike], b: Union[Tensor, ArrayLike]) -> Tensor:
    """Elementwise minimum with gradient routed to the smaller input."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    out_data = np.minimum(a.data, b.data)

    def backward_fn(grad: np.ndarray):
        mask = a.data <= b.data
        return (
            unbroadcast(grad * mask, a.shape),
            unbroadcast(grad * (~mask), b.shape),
        )

    return Tensor._make(out_data, (a, b), backward_fn, name="minimum")

"""Higher-level differentiable functions built on :mod:`repro.autodiff.tensor`.

These are the building blocks the SelNet architecture needs beyond plain
elementwise operators: softmax, the ``Norm_l2`` squared-normalisation used to
generate threshold increments (Section 5.2 of the paper), prefix sums
(the ``M_psum`` matrix), cumulative sums, and the piecewise-linear
interpolation operator (Equation 1) with a hand-written backward pass.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .tensor import ArrayLike, Tensor, unbroadcast


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = Tensor._ensure(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward_fn(grad: np.ndarray):
        # d softmax_i / d x_j = s_i (delta_ij - s_j)
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return ((grad - dot) * out_data,)

    return Tensor._make(out_data, (x,), backward_fn, name="softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Logarithm of softmax, computed stably."""
    x = Tensor._ensure(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = np.exp(out_data)

    def backward_fn(grad: np.ndarray):
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return Tensor._make(out_data, (x,), backward_fn, name="log_softmax")


def norm_l2_squared(x: Tensor, epsilon: float = 1e-6) -> Tensor:
    """The paper's ``Norm_l2`` operator (Section 5.2).

    Maps a vector ``t`` of dimension ``d`` to::

        Norm_l2(t)_i = (t_i^2 + eps / d) / (t^T t + eps)

    The output is strictly positive and sums to one along the last axis, which
    is the property SelNet relies on to turn a free-form network output into
    non-negative threshold increments.  Operates row-wise on 2-D inputs.
    """
    x = Tensor._ensure(x)
    data = x.data
    d = data.shape[-1]
    squared = data ** 2
    denom = squared.sum(axis=-1, keepdims=True) + epsilon
    numer = squared + epsilon / d
    out_data = numer / denom

    def backward_fn(grad: np.ndarray):
        # out_i = (x_i^2 + eps/d) / (sum_j x_j^2 + eps)
        # d out_i / d x_k = (2 x_k [i == k] * denom - numer_i * 2 x_k) / denom^2
        #                 = 2 x_k ([i == k] - out_i) / denom
        dot = (grad * out_data).sum(axis=-1, keepdims=True)
        grad_x = 2.0 * data * (grad - dot) / denom
        return (grad_x,)

    return Tensor._make(out_data, (x,), backward_fn, name="norm_l2_squared")


def cumsum(x: Tensor, axis: int = -1) -> Tensor:
    """Cumulative sum (prefix sum), i.e. multiplication by ``M_psum``.

    The paper implements the running totals of threshold / selectivity
    increments by right-multiplying with a lower-triangular matrix of ones;
    a cumulative sum is the same operation without materialising the matrix.
    """
    x = Tensor._ensure(x)
    out_data = np.cumsum(x.data, axis=axis)

    def backward_fn(grad: np.ndarray):
        flipped = np.flip(grad, axis=axis)
        return (np.flip(np.cumsum(flipped, axis=axis), axis=axis),)

    return Tensor._make(out_data, (x,), backward_fn, name="cumsum")


def prefix_sum_matrix(size: int) -> np.ndarray:
    """Return the lower-triangular prefix-sum matrix ``M_psum`` of the paper."""
    return np.tril(np.ones((size, size), dtype=np.float64))


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout.  No-op when not training or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if rng is None:
        rng = np.random.default_rng()
    x = Tensor._ensure(x)
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    out_data = x.data * mask

    def backward_fn(grad: np.ndarray):
        return (grad * mask,)

    return Tensor._make(out_data, (x,), backward_fn, name="dropout")


def segment_upper_indices(tau: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Batched segment lookup for per-row sorted grids.

    For each row ``i`` returns the index of the first ``tau[i, j] >= t[i]``
    (i.e. ``np.searchsorted(tau[i], t[i], side="left")``), clipped into
    ``[1, num_points - 1]`` so ``(index - 1, index)`` always brackets a valid
    segment.  One vectorised comparison over the whole batch replaces the
    per-row ``np.searchsorted`` Python loop — for row-sorted grids counting
    the entries strictly below ``t`` is exactly the ``side="left"`` insertion
    point.  Shared by the differentiable op below and the compiled inference
    kernels (:mod:`repro.inference`).
    """
    upper = np.count_nonzero(tau < t[:, None], axis=1)
    return np.clip(upper, 1, tau.shape[1] - 1)


def piecewise_linear(
    tau: Tensor,
    p: Tensor,
    t: Union[Tensor, ArrayLike],
) -> Tensor:
    """Evaluate the continuous piece-wise linear estimator of Equation (1).

    Parameters
    ----------
    tau:
        Control-point abscissae of shape ``(batch, L + 2)``.  Each row must be
        non-decreasing with ``tau[:, 0] = 0`` and ``tau[:, -1] = t_max``.
    p:
        Control-point ordinates (estimated selectivities) of shape
        ``(batch, L + 2)``.
    t:
        Query thresholds of shape ``(batch,)`` (no gradient is propagated to
        ``t``; thresholds are inputs, not parameters).

    Returns
    -------
    Tensor of shape ``(batch,)`` holding the interpolated selectivity.

    Notes
    -----
    The segment index ``i`` with ``tau[i] <= t < tau[i+1]`` is a
    piecewise-constant function of the parameters, so its "gradient" is zero
    almost everywhere; within a segment the output is differentiable in both
    the surrounding ``tau`` and ``p`` values, and the backward pass below
    implements those analytic derivatives.
    """
    tau = Tensor._ensure(tau)
    p = Tensor._ensure(p)
    t_data = t.data if isinstance(t, Tensor) else np.asarray(t, dtype=np.float64)
    if t_data.ndim == 2 and t_data.shape[1] == 1:
        t_data = t_data[:, 0]

    tau_data = tau.data
    p_data = p.data
    batch, num_points = tau_data.shape
    if p_data.shape != (batch, num_points):
        raise ValueError(
            f"tau and p must have the same shape; got {tau_data.shape} and {p_data.shape}"
        )

    # Clamp thresholds into the supported range so queries at or beyond t_max
    # return the final control value (and never index out of bounds).
    t_clamped = np.clip(t_data, tau_data[:, 0], tau_data[:, -1])

    # For each row find the segment [tau_{i-1}, tau_i) containing t: a single
    # batched lookup (index of the first tau >= t, the right end of the
    # segment) instead of one np.searchsorted call per row.
    rows = np.arange(batch)
    upper_idx = segment_upper_indices(tau_data, t_clamped)
    lower_idx = upper_idx - 1

    tau_lo = tau_data[rows, lower_idx]
    tau_hi = tau_data[rows, upper_idx]
    p_lo = p_data[rows, lower_idx]
    p_hi = p_data[rows, upper_idx]

    width = np.maximum(tau_hi - tau_lo, 1e-12)
    fraction = (t_clamped - tau_lo) / width
    out_data = p_lo + fraction * (p_hi - p_lo)

    def backward_fn(grad: np.ndarray):
        grad = grad.reshape(batch)
        slope = (p_hi - p_lo) / width

        grad_p = np.zeros_like(p_data)
        np.add.at(grad_p, (rows, lower_idx), grad * (1.0 - fraction))
        np.add.at(grad_p, (rows, upper_idx), grad * fraction)

        # d out / d tau_lo = slope * (t - tau_hi) / width ; d out / d tau_hi = -slope * (t - tau_lo)/width
        grad_tau = np.zeros_like(tau_data)
        d_tau_lo = grad * slope * (t_clamped - tau_hi) / width
        d_tau_hi = grad * slope * (tau_lo - t_clamped) / width * -1.0
        # Correct derivation:
        #   out = p_lo + (t - tau_lo) / (tau_hi - tau_lo) * (p_hi - p_lo)
        #   d out / d tau_lo = (p_hi - p_lo) * (t - tau_hi) / (tau_hi - tau_lo)^2
        #   d out / d tau_hi = -(p_hi - p_lo) * (t - tau_lo) / (tau_hi - tau_lo)^2
        d_tau_lo = grad * (p_hi - p_lo) * (t_clamped - tau_hi) / (width ** 2)
        d_tau_hi = grad * (p_hi - p_lo) * (tau_lo - t_clamped) / (width ** 2)
        np.add.at(grad_tau, (rows, lower_idx), d_tau_lo)
        np.add.at(grad_tau, (rows, upper_idx), d_tau_hi)
        return (grad_tau, grad_p)

    return Tensor._make(out_data, (tau, p), backward_fn, name="piecewise_linear")


def huber(residual: Tensor, delta: float = 1.345) -> Tensor:
    """Elementwise Huber penalty of a residual tensor.

    ``delta = 1.345`` is the standard robust-regression recommendation cited
    by the paper.
    """
    residual = Tensor._ensure(residual)
    r = residual.data
    absolute = np.abs(r)
    quadratic = 0.5 * r ** 2
    linear = delta * (absolute - 0.5 * delta)
    out_data = np.where(absolute <= delta, quadratic, linear)

    def backward_fn(grad: np.ndarray):
        d_residual = np.where(absolute <= delta, r, delta * np.sign(r))
        return (grad * d_residual,)

    return Tensor._make(out_data, (residual,), backward_fn, name="huber")


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Select ``x[indices]`` along the first axis with gradient support."""
    x = Tensor._ensure(x)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = x.data[indices]
    input_shape = x.shape

    def backward_fn(grad: np.ndarray):
        full = np.zeros(input_shape, dtype=x.data.dtype)
        np.add.at(full, indices, grad)
        return (full,)

    return Tensor._make(out_data, (x,), backward_fn, name="gather_rows")


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction."""
    x = Tensor._ensure(x)
    maximum = x.data.max(axis=axis, keepdims=True)
    shifted = np.exp(x.data - maximum)
    summed = shifted.sum(axis=axis, keepdims=True)
    out_keep = maximum + np.log(summed)
    out_data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)
    soft = shifted / summed

    def backward_fn(grad: np.ndarray):
        grad_expanded = grad if keepdims else np.expand_dims(grad, axis)
        return (grad_expanded * soft,)

    return Tensor._make(out_data, (x,), backward_fn, name="logsumexp")

"""Reverse-mode autodiff engine used as the deep-learning substrate."""

from .functional import (
    cumsum,
    dropout,
    gather_rows,
    huber,
    log_softmax,
    logsumexp,
    norm_l2_squared,
    piecewise_linear,
    prefix_sum_matrix,
    segment_upper_indices,
    softmax,
)
from .grad_mode import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from .gradcheck import check_gradients, numerical_gradient
from .tensor import Tensor, concat, maximum, minimum, stack, unbroadcast, where

__all__ = [
    "Tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "segment_upper_indices",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "unbroadcast",
    "softmax",
    "log_softmax",
    "logsumexp",
    "norm_l2_squared",
    "cumsum",
    "prefix_sum_matrix",
    "dropout",
    "piecewise_linear",
    "huber",
    "gather_rows",
    "check_gradients",
    "numerical_gradient",
]

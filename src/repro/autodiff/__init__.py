"""Reverse-mode autodiff engine used as the deep-learning substrate."""

from .functional import (
    cumsum,
    dropout,
    gather_rows,
    huber,
    log_softmax,
    logsumexp,
    norm_l2_squared,
    piecewise_linear,
    prefix_sum_matrix,
    softmax,
)
from .gradcheck import check_gradients, numerical_gradient
from .tensor import Tensor, concat, maximum, minimum, stack, unbroadcast, where

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "unbroadcast",
    "softmax",
    "log_softmax",
    "logsumexp",
    "norm_l2_squared",
    "cumsum",
    "prefix_sum_matrix",
    "dropout",
    "piecewise_linear",
    "huber",
    "gather_rows",
    "check_gradients",
    "numerical_gradient",
]

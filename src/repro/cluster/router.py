"""Consistent-hash routing of (model, query) keys onto worker shards.

Routing keys on the *query* (not the request) so that all thresholds of a
repeated query land on the same shard — which is what keeps that shard's
:class:`~repro.serving.cache.CurveCache` hot.  The key is built by
:func:`repro.serving.cache.query_cache_key`, so the router and the per-shard
caches agree bit-for-bit on which queries are "the same" (including the
configurable coordinate rounding).

The ring hashes ``virtual_nodes`` points per shard with BLAKE2b, making
placement deterministic across processes and Python invocations (no
``PYTHONHASHSEED`` dependence) and keeping the remap fraction near
``1 / (num_shards + 1)`` when a shard is added.

Replica awareness: every key owns an ordered set of ``replication_factor``
distinct shards (successors on the ring).  :meth:`ShardRouter.route` picks
the primary by default; given current shard loads it picks the least-loaded
replica instead (ties break in ring order), trading a little cache locality
for queue headroom.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serving.cache import DEFAULT_KEY_DECIMALS, query_cache_key


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash used for both ring points and request keys."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class ShardRouter:
    """Maps ``(model, query)`` keys to shard ids via a consistent-hash ring.

    Parameters
    ----------
    num_shards:
        Number of worker shards in the cluster.
    replication_factor:
        Size of each key's replica set (distinct shards, primary first).
    virtual_nodes:
        Ring points per shard; more points smooth the key distribution.
    decimals:
        Query-coordinate rounding inside keys — must match the per-shard
        cache configuration so routing and caching agree on query identity.
    """

    def __init__(
        self,
        num_shards: int,
        replication_factor: int = 1,
        virtual_nodes: int = 64,
        decimals: int = DEFAULT_KEY_DECIMALS,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not 1 <= replication_factor <= num_shards:
            raise ValueError(
                f"replication_factor must be in [1, num_shards], got "
                f"{replication_factor} with {num_shards} shards"
            )
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be at least 1")
        self.num_shards = int(num_shards)
        self.replication_factor = int(replication_factor)
        self.virtual_nodes = int(virtual_nodes)
        self.decimals = int(decimals)

        points: List[Tuple[int, int]] = []
        for shard in range(self.num_shards):
            for vnode in range(self.virtual_nodes):
                points.append((_hash64(f"shard-{shard}:vnode-{vnode}".encode()), shard))
        points.sort()
        self._ring_hashes = np.asarray([point for point, _ in points], dtype=np.uint64)
        self._ring_shards = np.asarray([shard for _, shard in points], dtype=np.int64)

    # ------------------------------------------------------------------ #
    def key_for(self, model: str, query: np.ndarray) -> bytes:
        """The routing key — identical to the per-shard cache key."""
        return query_cache_key(model, query, decimals=self.decimals)

    def replicas(self, model: str, query: np.ndarray) -> Tuple[int, ...]:
        """The key's ordered replica set: ``replication_factor`` distinct shards."""
        point = _hash64(self.key_for(model, query))
        start = int(np.searchsorted(self._ring_hashes, point, side="left"))
        seen: List[int] = []
        for offset in range(len(self._ring_shards)):
            shard = int(self._ring_shards[(start + offset) % len(self._ring_shards)])
            if shard not in seen:
                seen.append(shard)
                if len(seen) == self.replication_factor:
                    break
        return tuple(seen)

    def route(
        self,
        model: str,
        query: np.ndarray,
        loads: Optional[Sequence[float]] = None,
    ) -> int:
        """Shard id for one key: the primary, or the least-loaded replica.

        ``loads`` is an optional per-shard load vector (e.g. current queue
        depths); when given, the replica with the smallest load wins and
        ties break in ring (replica-set) order, so an idle primary always
        keeps its keys.
        """
        replicas = self.replicas(model, query)
        if loads is None or len(replicas) == 1:
            return replicas[0]
        return min(replicas, key=lambda shard: (loads[shard], replicas.index(shard)))

    def route_batch(
        self,
        model: str,
        queries: np.ndarray,
        loads: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Shard ids for a batch of queries (one id per row)."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.size == 0:
            return np.empty(0, dtype=np.int64)
        queries = np.atleast_2d(queries)
        return np.asarray(
            [self.route(model, queries[i], loads=loads) for i in range(len(queries))],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, int]:
        return {
            "num_shards": self.num_shards,
            "replication_factor": self.replication_factor,
            "virtual_nodes": self.virtual_nodes,
            "decimals": self.decimals,
            "ring_points": len(self._ring_shards),
        }

"""Cluster benchmark: replay a traffic scenario against the sharded tier.

Drives an :class:`~repro.cluster.EstimationCluster` with the same seeded
:class:`~repro.workloads.TrafficGenerator` streams used by the
single-process ``repro serve-bench``, so ``repro cluster-bench`` numbers are
directly comparable.  The replay is open-loop up to ``pipeline_depth``
outstanding arrival batches — enough in-flight work to keep every shard's
queue (and, on the process backend, every worker CPU) busy, which is where
sharding buys throughput over a single process.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..estimator import UpdateNotSupportedError
from ..workloads import Scenario, TrafficGenerator, UpdateEvent
from .cluster import ClusterEstimateFuture, ClusterOverloadedError, EstimationCluster


@dataclass
class ClusterBenchmarkReport:
    """Results of one traffic-scenario replay against a cluster."""

    model: str
    scenario: str
    num_requests: int
    arrival_batch: int
    num_shards: int
    backend: str
    use_cache: bool
    elapsed_seconds: float
    requests_per_second: float
    p50_batch_latency_ms: float
    p95_batch_latency_ms: float
    p99_batch_latency_ms: float
    shed_requests: int
    updates_applied: int
    updates_skipped: int
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def text(self) -> str:
        lines = [
            f"cluster-bench: model={self.model} scenario={self.scenario} "
            f"requests={self.num_requests} arrival_batch={self.arrival_batch} "
            f"shards={self.num_shards} backend={self.backend} "
            f"cache={'on' if self.use_cache else 'off'}",
            f"  throughput        : {self.requests_per_second:>10.1f} requests/s "
            f"({self.elapsed_seconds:.3f} s total)",
            f"  batch latency (ms): p50 {self.p50_batch_latency_ms:.2f}  "
            f"p95 {self.p95_batch_latency_ms:.2f}  p99 {self.p99_batch_latency_ms:.2f}",
            f"  shed requests     : {self.shed_requests}",
            f"  data updates      : {self.updates_applied} applied, "
            f"{self.updates_skipped} skipped",
            "  per shard         : "
            f"{'shard':<6} {'requests':>9} {'hit rate':>9} {'queue max':>10} "
            f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}",
        ]
        for entry in self.stats.get("per_shard", []):
            cache = entry.get("cache", {})
            latency = entry.get("latency", {})
            lines.append(
                "                      "
                f"{entry['shard']:<6} {entry['requests']:>9} "
                f"{100.0 * cache.get('hit_rate', 0.0):>8.1f}% "
                f"{entry['max_queue_depth']:>10} "
                f"{latency.get('p50_ms', 0.0):>8.2f} "
                f"{latency.get('p95_ms', 0.0):>8.2f} "
                f"{latency.get('p99_ms', 0.0):>8.2f}"
            )
        return "\n".join(lines)


def run_cluster_benchmark(
    cluster: EstimationCluster,
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    num_requests: int = 2000,
    arrival_batch: int = 32,
    scenario: Union[str, Scenario] = "zipfian",
    use_cache: bool = True,
    pipeline_depth: int = 4,
    seed: int = 0,
) -> ClusterBenchmarkReport:
    """Replay one scenario's event stream against the cluster and measure it.

    ``pipeline_depth`` arrival batches are kept outstanding before the
    oldest is gathered, so shard queues actually fill (exercising admission
    control) and the process backend overlaps work across shards.  Shed
    batches (``overload_policy="shed"``) are counted, not retried.
    """
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be at least 1")
    queries = np.asarray(queries, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    generator = TrafficGenerator(
        scenario, pool_size=len(thresholds), seed=seed, insert_dim=queries.shape[1]
    )
    events = generator.materialize(num_requests, arrival_batch)

    supports_updates = True
    updates_applied = 0
    updates_skipped = 0
    shed_requests = 0
    latencies: List[float] = []
    outstanding: Deque[Tuple[ClusterEstimateFuture, float]] = deque()

    def _gather_oldest() -> None:
        future, submitted_at = outstanding.popleft()
        future.result()
        latencies.append(1000.0 * (time.perf_counter() - submitted_at))

    start = time.perf_counter()
    for event in events:
        if isinstance(event, UpdateEvent):
            # Updates are a barrier: in-flight reads drain first so the
            # fan-out invalidation cannot race ahead of older estimates.
            while outstanding:
                _gather_oldest()
            if supports_updates:
                try:
                    cluster.update(model, inserts=event.inserts, deletes=event.deletes)
                    updates_applied += 1
                except UpdateNotSupportedError:
                    supports_updates = False
                    updates_skipped += 1
            else:
                updates_skipped += 1
            continue
        if len(event) == 0:
            continue
        try:
            future = cluster.submit_estimate(
                model,
                queries[event.indices],
                thresholds[event.indices],
                use_cache=use_cache,
            )
        except ClusterOverloadedError:
            shed_requests += len(event)
            continue
        outstanding.append((future, time.perf_counter()))
        while len(outstanding) >= pipeline_depth:
            _gather_oldest()
    while outstanding:
        _gather_oldest()
    elapsed = time.perf_counter() - start

    stats = cluster.stats()
    latency_array = np.asarray(latencies) if latencies else np.zeros(1)
    completed = num_requests - shed_requests
    return ClusterBenchmarkReport(
        model=model,
        scenario=generator.scenario.name,
        num_requests=num_requests,
        arrival_batch=arrival_batch,
        num_shards=cluster.num_shards,
        backend=cluster.config.backend,
        use_cache=use_cache,
        elapsed_seconds=elapsed,
        requests_per_second=completed / elapsed if elapsed > 0 else float("inf"),
        p50_batch_latency_ms=float(np.percentile(latency_array, 50)),
        p95_batch_latency_ms=float(np.percentile(latency_array, 95)),
        p99_batch_latency_ms=float(np.percentile(latency_array, 99)),
        shed_requests=shed_requests,
        updates_applied=updates_applied,
        updates_skipped=updates_skipped,
        stats=stats,
    )

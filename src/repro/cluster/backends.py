"""Shard execution backends: where a shard's `EstimationService` lives.

Every shard of an :class:`~repro.cluster.EstimationCluster` hosts its *own*
:class:`~repro.serving.EstimationService` — its own lazily-loaded model
store (via :mod:`repro.persistence`) and its own curve cache.  The backend
decides where that service runs:

:class:`InlineShardBackend`
    The service lives in the calling process and submitted work is queued as
    thunks, executed when the result is claimed.  Deterministic and
    dependency-free — the backend used by tests and the default for small
    runs.  The deferred execution is what makes the bounded per-shard queue
    observable (and the shed/block admission policies exercisable) without
    real concurrency.

:class:`ProcessShardBackend`
    The service lives in a dedicated single-worker process
    (``concurrent.futures.ProcessPoolExecutor`` with one worker), so N
    shards give N-way CPU parallelism for scatter–gather batches.  Each
    worker process builds its service lazily from the cluster configuration
    on first task; in-memory models are shipped as pickles.

Both expose the same four operations — ``estimate``, ``update``,
``add_model`` and ``stats`` — returning :class:`ShardFuture` handles, so the
cluster tier is backend-agnostic.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Dict, Optional, Sequence, Type

import numpy as np

from ..persistence import _jsonify
from ..serving import EstimationService


class ShardFuture:
    """Uniform handle on one submitted shard call (inline thunk or future).

    Thread-safe: concurrent ``result()`` callers serialize on an internal
    lock and all observe the same outcome.  Exceptions are cached exactly
    like values — once a call has failed, every caller sees the same error
    instead of re-executing (or, worse, blocking forever on a backend that
    will never answer).  ``cancel`` injects such a terminal error for work
    that can no longer complete (e.g. the cluster is shutting down while a
    shard died mid-batch).
    """

    def __init__(
        self,
        compute: Optional[Callable[[], Any]] = None,
        future: Optional[Future] = None,
    ) -> None:
        if (compute is None) == (future is None):
            raise ValueError("exactly one of compute / future is required")
        self._compute = compute
        self._future = future
        self._lock = threading.Lock()
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def result(self) -> Any:
        with self._lock:
            if not self._done:
                try:
                    self._value = (
                        self._compute() if self._future is None else self._future.result()
                    )
                except BaseException as error:
                    self._error = error
                self._done = True
            if self._error is not None:
                raise self._error
            return self._value

    def cancel(self, error: BaseException) -> bool:
        """Settle the call with ``error`` unless it already completed."""
        with self._lock:
            if self._done:
                return False
            self._error = error
            self._done = True
            return True

    @property
    def done(self) -> bool:
        """Whether the work has already completed (inline: been executed)."""
        if self._done:
            return True
        return self._future is not None and self._future.done()


def _service_config_kwargs(config: "ClusterConfig") -> Dict[str, Any]:
    """The per-shard EstimationService constructor arguments."""
    return {
        "model_dir": config.model_dir,
        "cache_capacity": config.cache_capacity,
        "curve_resolution": config.curve_resolution,
        "max_batch_size": config.max_batch_size,
        "cache_key_decimals": config.cache_key_decimals,
        "use_compiled": config.use_compiled,
        "kernel_dtype": config.kernel_dtype,
        "cache_max_bytes": config.cache_max_bytes,
        "cache_quantize_bits": config.cache_quantize_bits,
    }


class InlineShardBackend:
    """A shard whose service runs in the calling process (deferred thunks)."""

    name = "inline"

    def __init__(self, config: "ClusterConfig") -> None:
        self.service = EstimationService(**_service_config_kwargs(config))

    def estimate(
        self, model: str, queries: np.ndarray, thresholds: np.ndarray, use_cache: bool
    ) -> ShardFuture:
        return ShardFuture(
            compute=lambda: self.service.estimate(model, queries, thresholds, use_cache=use_cache)
        )

    def update(
        self, model: str, inserts: Optional[np.ndarray], deletes: Optional[Sequence[int]]
    ) -> ShardFuture:
        def _apply():
            reports = self.service.update(model, inserts=inserts, deletes=deletes)
            return {"model": model, "operations": len(reports)}

        return ShardFuture(compute=_apply)

    def add_model(self, name: str, payload: bytes) -> ShardFuture:
        # Unpickling gives this shard its own replica: shards must never
        # share mutable estimator state (updates are fanned out per shard).
        return ShardFuture(
            compute=lambda: self.service.add_model(name, pickle.loads(payload))
        )

    def stats(self) -> ShardFuture:
        return ShardFuture(compute=self.service.stats)

    def reload(self) -> ShardFuture:
        return ShardFuture(compute=self.service.reload_models)

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------- #
# Process backend: one dedicated worker process per shard.
#
# The worker keeps its EstimationService in a module-level slot, built
# lazily from the service kwargs shipped with the first task.  (A plain
# global plus lazy construction survives both fork and spawn start methods
# without initializer plumbing.)
# ---------------------------------------------------------------------- #
_WORKER_SERVICE: Optional[EstimationService] = None


def _worker_service(service_kwargs: Dict[str, Any]) -> EstimationService:
    global _WORKER_SERVICE
    if _WORKER_SERVICE is None:
        _WORKER_SERVICE = EstimationService(**service_kwargs)
    return _WORKER_SERVICE


def _worker_estimate(
    service_kwargs: Dict[str, Any],
    model: str,
    queries: np.ndarray,
    thresholds: np.ndarray,
    use_cache: bool,
) -> np.ndarray:
    service = _worker_service(service_kwargs)
    return service.estimate(model, queries, thresholds, use_cache=use_cache)


def _worker_update(
    service_kwargs: Dict[str, Any],
    model: str,
    inserts: Optional[np.ndarray],
    deletes: Optional[Sequence[int]],
) -> Dict[str, Any]:
    service = _worker_service(service_kwargs)
    reports = service.update(model, inserts=inserts, deletes=deletes)
    # Reports may hold arbitrary estimator internals; return a JSON-able
    # summary instead of shipping them back across the process boundary.
    return {"model": model, "operations": len(_jsonify(reports))}


def _worker_add_model(service_kwargs: Dict[str, Any], name: str, payload: bytes) -> None:
    _worker_service(service_kwargs).add_model(name, pickle.loads(payload))


def _worker_stats(service_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    return _worker_service(service_kwargs).stats()


def _worker_reload(service_kwargs: Dict[str, Any]):
    return _worker_service(service_kwargs).reload_models()


class ProcessShardBackend:
    """A shard hosted by its own single-worker process pool.

    One executor with exactly one worker pins the shard's model store and
    curve cache to one process (a shared pool would scatter a shard's
    requests over arbitrary processes and destroy cache locality), and its
    internal call queue preserves FIFO order of submitted work.
    """

    name = "process"

    def __init__(self, config: "ClusterConfig") -> None:
        self._service_kwargs = dict(_service_config_kwargs(config))
        if self._service_kwargs["model_dir"] is not None:
            self._service_kwargs["model_dir"] = str(self._service_kwargs["model_dir"])
        self._executor = ProcessPoolExecutor(max_workers=1)

    def estimate(
        self, model: str, queries: np.ndarray, thresholds: np.ndarray, use_cache: bool
    ) -> ShardFuture:
        return ShardFuture(
            future=self._executor.submit(
                _worker_estimate, self._service_kwargs, model, queries, thresholds, use_cache
            )
        )

    def update(
        self, model: str, inserts: Optional[np.ndarray], deletes: Optional[Sequence[int]]
    ) -> ShardFuture:
        return ShardFuture(
            future=self._executor.submit(
                _worker_update, self._service_kwargs, model, inserts, deletes
            )
        )

    def add_model(self, name: str, payload: bytes) -> ShardFuture:
        return ShardFuture(
            future=self._executor.submit(_worker_add_model, self._service_kwargs, name, payload)
        )

    def stats(self) -> ShardFuture:
        return ShardFuture(future=self._executor.submit(_worker_stats, self._service_kwargs))

    def reload(self) -> ShardFuture:
        return ShardFuture(future=self._executor.submit(_worker_reload, self._service_kwargs))

    def close(self) -> None:
        self._executor.shutdown(wait=True)


BACKENDS: Dict[str, Type] = {
    InlineShardBackend.name: InlineShardBackend,
    ProcessShardBackend.name: ProcessShardBackend,
}


def register_backend(name: str, backend_cls: Type) -> None:
    """Register a shard backend class under ``name`` (idempotent).

    Out-of-package backends (the shared-memory ``network`` backend of
    :mod:`repro.net`) register themselves through this hook so the cluster
    tier itself stays import-light.
    """
    existing = BACKENDS.get(name)
    if existing is not None and existing is not backend_cls:
        raise ValueError(f"shard backend {name!r} is already registered to {existing!r}")
    BACKENDS[name] = backend_cls

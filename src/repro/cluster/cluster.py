"""The sharded estimation tier: scatter–gather over per-shard services.

:class:`EstimationCluster` runs ``N`` worker shards (each hosting its own
:class:`~repro.serving.EstimationService` — see
:mod:`repro.cluster.backends`), routes every request row with a
consistent-hash :class:`~repro.cluster.router.ShardRouter` keyed on
``(model, query)`` so each shard's curve cache stays hot, and enforces
admission control with bounded per-shard queues:

* ``overload_policy="block"`` — a submission to a full shard first waits
  for that shard's oldest in-flight work (the default: graceful
  backpressure);
* ``overload_policy="shed"`` — a submission to a full shard raises
  :class:`ClusterOverloadedError` and the rows are counted as shed (load
  shedding for latency-sensitive callers).

Batched estimation is scatter–gather: a request batch is split by shard,
each sub-batch is one backend call (micro-batched again inside the worker
via ``iter_microbatches``), and the results are reassembled in request
order.  Data updates fan out to *every* shard — each shard owns a full
replica of each model it serves, so an update must reach all of them, and
each shard invalidates its own cached curves as part of applying it.

``stats()`` aggregates cluster-level counters with per-shard cache hit
rate, queue depth and p50/p95/p99 sub-batch latency.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..estimator import SelectivityEstimator
from ..obs import MetricsRegistry, MetricsSnapshot
from ..obs import trace as obstrace
from ..serving.cache import DEFAULT_KEY_DECIMALS
from .backends import BACKENDS, ShardFuture
from .router import ShardRouter

PathLike = Union[str, Path]

OVERLOAD_POLICIES = ("block", "shed")

#: per-shard sliding window of sub-batch latencies kept for percentile stats
#: (the bounded ring inside each shard's latency Histogram — a long-lived
#: cluster's stats() stays O(1) in memory and time)
LATENCY_WINDOW = 4096


class ClusterOverloadedError(RuntimeError):
    """Raised under the ``shed`` policy when a shard's queue is full."""


class ClusterClosedError(RuntimeError):
    """Raised by in-flight calls that a cluster shutdown had to abandon."""


def _resolve_backend(name: str):
    """The registered backend class, importing :mod:`repro.net` on demand.

    The ``network`` backend lives outside this package and registers itself
    on import; resolving it here means ``ClusterConfig(backend="network")``
    works without the caller ever importing ``repro.net``.
    """
    if name not in BACKENDS and name == "network":
        from .. import net  # noqa: F401  (import side effect: registration)
    return BACKENDS.get(name)


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stand up an estimation cluster.

    ``cache_capacity`` / ``curve_resolution`` / ``max_batch_size`` /
    ``cache_key_decimals`` configure each shard's private
    :class:`~repro.serving.EstimationService`; the rest shape routing and
    admission control.
    """

    num_shards: int = 2
    model_dir: Optional[PathLike] = None
    backend: str = "inline"
    replication_factor: int = 1
    virtual_nodes: int = 64
    queue_capacity: int = 8
    overload_policy: str = "block"
    cache_capacity: int = 256
    curve_resolution: int = 64
    max_batch_size: int = 256
    cache_key_decimals: int = DEFAULT_KEY_DECIMALS
    #: serve through compiled inference kernels inside every shard's service
    use_compiled: bool = True
    #: compiled-kernel precision tier per shard (float64/float32/float16/int8;
    #: None = float64) — see :mod:`repro.inference.precision`
    kernel_dtype: Optional[str] = None
    #: byte budget for each shard's curve cache (None = unbounded)
    cache_max_bytes: Optional[int] = None
    #: quantize cached curves to 8/16-bit codes (None = full float64)
    cache_quantize_bits: Optional[int] = None
    #: ``network`` backend: bytes per shared-memory transport slot
    shm_slot_bytes: int = 1 << 20
    #: ``network`` backend: wire dtype for query/threshold batch payloads
    #: ("float64" or "float32"; results always come back float64)
    shm_dtype: str = "float64"
    #: ``network`` backend: preload disk-backed models at shard spawn
    warm_models: bool = True

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if self.shm_dtype not in ("float64", "float32"):
            raise ValueError(
                f"shm_dtype must be 'float64' or 'float32', got {self.shm_dtype!r}"
            )
        if self.kernel_dtype is not None:
            # Fail here, in the coordinating process, rather than inside a
            # spawned shard worker where the traceback is much less helpful.
            from ..inference.precision import parse_tier

            parse_tier(self.kernel_dtype)
        if self.cache_quantize_bits not in (None, 8, 16):
            raise ValueError(
                f"cache_quantize_bits must be None, 8 or 16, got {self.cache_quantize_bits!r}"
            )
        if _resolve_backend(self.backend) is None:
            raise ValueError(f"unknown backend {self.backend!r}; available: {sorted(BACKENDS)}")
        if self.overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload_policy {self.overload_policy!r}; "
                f"available: {OVERLOAD_POLICIES}"
            )
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")


@dataclass
class _PendingCall:
    """One in-flight backend call, for queue accounting and latency."""

    future: ShardFuture
    rows: int
    submitted_at: float
    settled: bool = False


class _Shard:
    """Cluster-side accounting around one backend shard.

    ``lock`` guards the pending queue, counters and the latency window so
    concurrent client threads (the network serving tier) can submit and
    gather simultaneously.  Claiming a backend result happens *outside* the
    lock — one slow shard call must never block another thread's
    bookkeeping — and settlement is idempotent, so a call raced by its
    owner, an admission-control drain and ``close()`` is released exactly
    once.
    """

    def __init__(self, shard_id: int, backend, metrics: MetricsRegistry) -> None:
        self.shard_id = shard_id
        self.backend = backend
        self.lock = threading.Lock()
        self.pending: Deque[_PendingCall] = deque()
        label = {"shard": str(shard_id)}

        def counter(name: str, help_text: str):
            return metrics.counter(name, help_text, ("shard",)).labels(**label)

        self.requests = counter(
            "repro_cluster_requests_total", "Rows routed to this shard"
        )
        self.sub_batches = counter(
            "repro_cluster_sub_batches_total", "Scatter sub-batches sent to this shard"
        )
        self.shed_batches = counter(
            "repro_cluster_shed_batches_total", "Sub-batches refused by admission control"
        )
        self.shed_requests = counter(
            "repro_cluster_shed_requests_total", "Rows refused by admission control"
        )
        self.updates = counter(
            "repro_cluster_updates_total", "Data updates fanned out to this shard"
        )
        self.queue_gauge = metrics.gauge(
            "repro_cluster_queue_depth",
            "In-flight sub-batches on this shard's bounded queue",
            ("shard",),
            aggregation="last",
        ).labels(**label)
        self.max_queue_gauge = metrics.gauge(
            "repro_cluster_max_queue_depth",
            "High-water mark of this shard's queue depth",
            ("shard",),
            aggregation="max",
        ).labels(**label)
        self.latency = metrics.histogram(
            "repro_cluster_sub_batch_latency_seconds",
            "Submit-to-settle latency of one shard sub-batch",
            ("shard",),
            ring_size=LATENCY_WINDOW,
        ).labels(**label)

    @property
    def queue_depth(self) -> int:
        return len(self.pending)

    def track(self, future: ShardFuture, rows: int) -> _PendingCall:
        call = _PendingCall(future=future, rows=rows, submitted_at=time.perf_counter())
        with self.lock:
            self.pending.append(call)
            depth = len(self.pending)
            self.queue_gauge.set(depth)
            if depth > self.max_queue_gauge.value:
                self.max_queue_gauge.set(depth)
        return call

    @property
    def max_queue_depth(self) -> int:
        return int(self.max_queue_gauge.value)

    def settle(self, call: _PendingCall) -> Any:
        """Claim one call's result and release its queue slot (idempotent)."""
        try:
            with obstrace.span("cluster.queue_wait", shard=self.shard_id, rows=call.rows):
                value = call.future.result()
        finally:
            # A failed call must release its queue slot too — otherwise a
            # dead shard's queue stays "full" and blocks admission forever.
            with self.lock:
                if not call.settled:
                    call.settled = True
                    self.latency.observe(time.perf_counter() - call.submitted_at)
                    try:
                        self.pending.remove(call)
                    except ValueError:  # pragma: no cover - already released
                        pass
                    self.queue_gauge.set(len(self.pending))
        return value

    def oldest_pending(self) -> Optional[_PendingCall]:
        with self.lock:
            return self.pending[0] if self.pending else None

    def drain_oldest(self) -> None:
        call = self.oldest_pending()
        if call is not None:
            try:
                self.settle(call)
            except ClusterClosedError:
                pass

    def drain_all(self, cancel_error: Optional[BaseException] = None) -> None:
        """Settle every pending call; optionally cancel those that cannot
        complete (their owners then observe ``cancel_error`` instead of
        blocking forever)."""
        while True:
            call = self.oldest_pending()
            if call is None:
                return
            if cancel_error is not None:
                call.future.cancel(cancel_error)
            try:
                self.settle(call)
            except BaseException:
                # The error is cached in the future for the call's owner.
                pass

    def latency_percentiles(self) -> Dict[str, float]:
        """Percentiles over the histogram's bounded ring of recent latencies.

        A shard with zero settled calls reports all-zero percentiles (a
        freshly spawned shard must not crash ``stats()``).
        """
        array = 1000.0 * self.latency.ring_array()
        if array.size == 0:
            return {"mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        p50, p95, p99 = np.percentile(array, (50, 95, 99))
        return {
            "mean_ms": float(array.mean()),
            "p50_ms": float(p50),
            "p95_ms": float(p95),
            "p99_ms": float(p99),
        }


class ClusterEstimateFuture:
    """Gatherable handle on one scattered estimate batch."""

    def __init__(
        self,
        cluster: "EstimationCluster",
        num_rows: int,
        parts: List[Tuple[_Shard, np.ndarray, _PendingCall]],
    ) -> None:
        self._cluster = cluster
        self._num_rows = num_rows
        self._parts = parts
        self._lock = threading.Lock()
        self._result: Optional[np.ndarray] = None

    def result(self) -> np.ndarray:
        """Gather every shard's sub-batch and reassemble in request order."""
        with self._lock:
            if self._result is None:
                results = np.empty(self._num_rows, dtype=np.float64)
                for shard, positions, call in self._parts:
                    results[positions] = shard.settle(call)
                self._result = results
            return self._result


class EstimationCluster:
    """N sharded estimation workers behind one scatter–gather facade."""

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides) -> None:
        if config is None:
            config = ClusterConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a ClusterConfig or keyword overrides, not both")
        self.config = config
        self._backend_cls = _resolve_backend(config.backend)
        self._lock = threading.RLock()
        self.metrics = MetricsRegistry()
        self._scale_counter = self.metrics.counter(
            "repro_cluster_scale_events_total",
            "Cluster resizes, labeled by direction",
            ("direction",),
        )
        self.router = self._make_router(config.num_shards)
        self._shards = [
            _Shard(i, self._backend_cls(config), self.metrics)
            for i in range(config.num_shards)
        ]
        self._next_shard_id = config.num_shards
        self._model_payloads: Dict[str, bytes] = {}
        self._scale_events: List[Dict[str, Any]] = []
        self._closed = False

    def _make_router(self, num_shards: int) -> ShardRouter:
        return ShardRouter(
            num_shards=num_shards,
            replication_factor=min(self.config.replication_factor, num_shards),
            virtual_nodes=self.config.virtual_nodes,
            decimals=self.config.cache_key_decimals,
        )

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "EstimationCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, drain: bool = True) -> None:
        """Shut down every shard backend (idempotent).

        With ``drain=True`` (the default) every pending call is settled
        first, so callers still holding a :class:`ClusterEstimateFuture`
        gather cached results (or the call's cached failure) instead of
        blocking on a backend that no longer exists.  With ``drain=False``
        pending calls are cancelled with :class:`ClusterClosedError` — the
        fast path when a shard is known to be dead and computing results is
        impossible or pointless.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = list(self._shards)
        error = (
            None
            if drain
            else ClusterClosedError("cluster closed before this call completed")
        )
        for shard in shards:
            shard.drain_all(cancel_error=error)
            shard.backend.close()

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def queue_depths(self) -> List[int]:
        return [shard.queue_depth for shard in self._shards]

    # ------------------------------------------------------------------ #
    # Elasticity
    # ------------------------------------------------------------------ #
    def scale_to(self, num_shards: int) -> int:
        """Grow or shrink the cluster to ``num_shards`` worker shards.

        Scaling up spawns fresh backends (warming from ``model_dir`` /
        receiving replicas of every in-memory model) and scaling down
        retires the highest-numbered shards; either way the consistent-hash
        ring is rebuilt, so only ~``1/num_shards`` of the keyspace remaps.
        Retired shards are *drained*: their in-flight calls are settled (the
        results stay cached in each call's future for whoever holds it), so
        a rebalance never drops or duplicates a response.  Returns the new
        shard count.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        removed: List[_Shard] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            current = len(self._shards)
            if num_shards == current:
                return current
            if num_shards > current:
                for _ in range(current, num_shards):
                    backend = self._backend_cls(self.config)
                    for name, payload in self._model_payloads.items():
                        backend.add_model(name, payload).result()
                    self._shards.append(
                        _Shard(self._next_shard_id, backend, self.metrics)
                    )
                    self._next_shard_id += 1
            else:
                removed = self._shards[num_shards:]
                del self._shards[num_shards:]
            # Swap the ring before draining: no new work can reach a
            # retiring shard once the router stops naming it.
            self.router = self._make_router(num_shards)
            direction = "up" if num_shards > current else "down"
            self._scale_counter.labels(direction=direction).inc()
            self.metrics.gauge(
                "repro_cluster_num_shards", "Current shard count"
            ).set(num_shards)
            self._scale_events.append(
                {
                    "at": time.time(),
                    "from_shards": current,
                    "to_shards": num_shards,
                }
            )
        for shard in removed:
            shard.drain_all()
            shard.backend.close()
        return num_shards

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    def _admit_all(self, groups: List[Tuple["_Shard", np.ndarray]]) -> None:
        """Enforce every target shard's bounded queue before ANY submission.

        Admission must be all-or-nothing per batch: raising after some
        sub-batches were already submitted would leave in-flight calls no
        caller can ever settle, permanently leaking queue slots.  Under
        ``shed`` the whole batch is refused when any target shard is full
        (the full shards' counters record the demand they turned away);
        under ``block`` each full shard first drains its oldest work.
        """
        capacity = self.config.queue_capacity
        if self.config.overload_policy == "shed":
            full = [
                (shard, positions)
                for shard, positions in groups
                if shard.queue_depth >= capacity
            ]
            if full:
                for shard, positions in full:
                    shard.shed_batches.inc()
                    shard.shed_requests.inc(len(positions))
                shard_ids = [shard.shard_id for shard, _ in full]
                raise ClusterOverloadedError(
                    f"shard queue(s) {shard_ids} full ({capacity} in flight); "
                    "request shed"
                )
            return
        for shard, _ in groups:  # block: wait for the oldest work
            while shard.queue_depth >= capacity:
                shard.drain_oldest()

    # ------------------------------------------------------------------ #
    # Model store
    # ------------------------------------------------------------------ #
    def add_model(self, name: str, estimator: SelectivityEstimator) -> None:
        """Attach an in-memory estimator to *every* shard.

        Each shard receives its own unpickled replica, so per-shard state
        (update fine-tuning, caches) never aliases across shards — exactly
        the semantics of the process backend, on every backend.
        """
        payload = pickle.dumps(estimator, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            # Remembered so shards spawned later (scale_to) get a replica too.
            self._model_payloads[name] = payload
            shards = list(self._shards)
        for future in [shard.backend.add_model(name, payload) for shard in shards]:
            future.result()

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def submit_estimate(
        self,
        model: str,
        queries: np.ndarray,
        thresholds: np.ndarray,
        use_cache: bool = True,
    ) -> ClusterEstimateFuture:
        """Scatter one batch by shard; returns a gatherable future.

        Routing is per row on ``(model, query)`` with replica-aware load
        balancing (current queue depths feed the router), then each shard
        receives its rows as one backend call.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if queries.size == 0 and thresholds.ndim == 1 and len(thresholds) == 0:
            return ClusterEstimateFuture(self, 0, [])
        if queries.ndim != 2 or thresholds.ndim != 1 or len(queries) != len(thresholds):
            raise ValueError(
                f"expected aligned (n, dim) queries and (n,) thresholds, got "
                f"{queries.shape} and {thresholds.shape}"
            )
        # Routing, admission and submission are one atomic step: a
        # concurrent ``scale_to`` must not retire a shard between this
        # batch being routed to it and being handed to its backend, and
        # admission is all-or-nothing per batch (see ``_admit_all``).
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster is closed")
            shard_ids = self.router.route_batch(model, queries, loads=self.queue_depths())
            groups: List[Tuple[_Shard, np.ndarray]] = [
                (self._shards[int(shard_id)], np.flatnonzero(shard_ids == shard_id))
                for shard_id in np.unique(shard_ids)
            ]
            with obstrace.span("cluster.admission", rows=len(thresholds)):
                self._admit_all(groups)
            parts: List[Tuple[_Shard, np.ndarray, _PendingCall]] = []
            for shard, positions in groups:
                future = shard.backend.estimate(
                    model, queries[positions], thresholds[positions], use_cache
                )
                call = shard.track(future, rows=len(positions))
                with shard.lock:
                    shard.requests.inc(len(positions))
                    shard.sub_batches.inc()
                parts.append((shard, positions, call))
        return ClusterEstimateFuture(self, len(thresholds), parts)

    def estimate(
        self,
        model: str,
        queries: np.ndarray,
        thresholds: np.ndarray,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Synchronous scatter–gather estimation (submit + gather)."""
        return self.submit_estimate(model, queries, thresholds, use_cache=use_cache).result()

    def estimate_one(
        self, model: str, query: np.ndarray, threshold: float, use_cache: bool = True
    ) -> float:
        query = np.asarray(query, dtype=np.float64)
        result = self.estimate(model, query[None, :], np.asarray([threshold]), use_cache=use_cache)
        return float(result[0])

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def update(
        self,
        model: str,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[Sequence[int]] = None,
    ) -> List[Dict[str, Any]]:
        """Fan one data update out to every shard's replica of ``model``.

        Each shard applies the update to its own copy and invalidates its
        cached curves for the model; the per-shard summaries come back in
        shard order.  Raises
        :class:`repro.estimator.UpdateNotSupportedError` (from every shard
        alike) when the model does not implement the update protocol.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        with self._lock:
            futures = [
                (shard, shard.backend.update(model, inserts, deletes))
                for shard in self._shards
            ]
        summaries = []
        for shard, future in futures:
            summary = dict(future.result())
            summary["shard"] = shard.shard_id
            shard.updates.inc()
            summaries.append(summary)
        return summaries

    def reload_models(self) -> List[Dict[str, Any]]:
        """Hot-reload every shard's disk-backed models (store hot swap).

        Each shard drops its in-memory copies of disk-backed models and
        invalidates their cached curves, so the next request loads the
        current artifact from ``model_dir`` — the path ``/models/reload``
        uses to swap a freshly trained artifact in without restarting (or
        even pausing) the cluster.  Per-shard reload summaries come back in
        shard order.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        with self._lock:
            futures = [(shard, shard.backend.reload()) for shard in self._shards]
        return [
            {"shard": shard.shard_id, **dict(future.result())}
            for shard, future in futures
        ]

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Aggregated cluster counters plus one entry per shard (JSON-able).

        Per shard: request/sub-batch/shed counts, queue depth (current and
        high-water), sub-batch latency percentiles and the worker's own
        service stats (cache hit rate, per-model counters).
        """
        with self._lock:
            shards = list(self._shards)
            scale_events = list(self._scale_events)
        per_shard: List[Dict[str, Any]] = []
        for shard in shards:
            worker = shard.backend.stats().result()
            depth = shard.queue_depth
            shard.queue_gauge.set(depth)
            per_shard.append(
                {
                    "shard": shard.shard_id,
                    "requests": int(shard.requests.value),
                    "sub_batches": int(shard.sub_batches.value),
                    "shed_batches": int(shard.shed_batches.value),
                    "shed_requests": int(shard.shed_requests.value),
                    "updates": int(shard.updates.value),
                    "queue_depth": depth,
                    "max_queue_depth": shard.max_queue_depth,
                    "latency": shard.latency_percentiles(),
                    "cache": worker.get("cache", {}),
                    "worker": worker,
                }
            )
        total_requests = sum(entry["requests"] for entry in per_shard)
        return {
            "backend": self.config.backend,
            "router": self.router.describe(),
            "num_shards": len(shards),
            "scale_events": scale_events,
            "queue_capacity": self.config.queue_capacity,
            "overload_policy": self.config.overload_policy,
            "total_requests": total_requests,
            "total_sub_batches": sum(entry["sub_batches"] for entry in per_shard),
            "total_shed_requests": sum(entry["shed_requests"] for entry in per_shard),
            "total_updates": sum(entry["updates"] for entry in per_shard),
            "per_shard": per_shard,
        }

    def metrics_snapshot(self, stats: Optional[Dict[str, Any]] = None) -> MetricsSnapshot:
        """Cluster-wide merged snapshot: this registry + every worker's.

        Each shard worker's :class:`~repro.serving.EstimationService`
        registry crosses the process boundary inside its ``stats()`` reply
        (the ``"metrics"`` key); here those snapshots are stamped with a
        ``shard`` label and merged with the cluster's own counters.  Pass a
        recent :meth:`stats` payload to reuse its worker round trips.
        """
        if stats is None:
            stats = self.stats()
        snapshot = self.metrics.snapshot()
        for entry in stats.get("per_shard", []):
            data = entry.get("worker", {}).get("metrics")
            if data:
                worker_snapshot = MetricsSnapshot.from_dict(data).with_labels(
                    shard=str(entry["shard"])
                )
                snapshot = snapshot.merge(worker_snapshot)
        return snapshot

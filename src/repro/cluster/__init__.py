"""Sharded estimation tier: consistent-hash routing over worker shards.

See :class:`EstimationCluster` for the entry point::

    from repro.cluster import ClusterConfig, EstimationCluster

    with EstimationCluster(ClusterConfig(num_shards=4, model_dir="models/",
                                         backend="process")) as cluster:
        cluster.estimate("selnet-faces", queries, thresholds)
        print(cluster.stats()["per_shard"])

``repro cluster-bench`` drives :func:`run_cluster_benchmark` against this
tier with the scenarios of :mod:`repro.workloads`.
"""

from .backends import (
    BACKENDS,
    InlineShardBackend,
    ProcessShardBackend,
    ShardFuture,
    register_backend,
)
from .bench import ClusterBenchmarkReport, run_cluster_benchmark
from .cluster import (
    OVERLOAD_POLICIES,
    ClusterClosedError,
    ClusterConfig,
    ClusterEstimateFuture,
    ClusterOverloadedError,
    EstimationCluster,
)
from .router import ShardRouter

__all__ = [
    "EstimationCluster",
    "ClusterConfig",
    "ClusterEstimateFuture",
    "ClusterClosedError",
    "ClusterOverloadedError",
    "OVERLOAD_POLICIES",
    "ShardRouter",
    "ShardFuture",
    "InlineShardBackend",
    "ProcessShardBackend",
    "BACKENDS",
    "register_backend",
    "ClusterBenchmarkReport",
    "run_cluster_benchmark",
]

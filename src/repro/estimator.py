"""The common estimator interface shared by SelNet and every baseline.

Every selectivity estimator in this library — the paper's SelNet variants and
the nine comparison methods — implements :class:`SelectivityEstimator`, so the
evaluation harness, the benchmarks and the examples can treat them uniformly.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from .data.workload import WorkloadSplit


class SelectivityEstimator(abc.ABC):
    """Abstract base class for selectivity estimators.

    Attributes
    ----------
    name:
        Human-readable name used in reports (e.g. ``"SelNet"``, ``"KDE"``).
    guarantees_consistency:
        True when the estimator is monotonically non-decreasing in the
        threshold by construction (the models marked ``*`` in the paper's
        tables).
    """

    name: str = "estimator"
    guarantees_consistency: bool = False

    @abc.abstractmethod
    def fit(self, split: WorkloadSplit) -> "SelectivityEstimator":
        """Train / build the estimator from a workload split.

        Estimators are free to use ``split.train`` and ``split.validation``
        (and the database itself via ``split.dataset`` / ``split.oracle``),
        but must never look at ``split.test``.
        """

    @abc.abstractmethod
    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Estimate selectivities for aligned query / threshold arrays.

        Returns a float array of shape ``(len(queries),)``; values are
        clipped to be non-negative by callers that need counts.
        """

    # ------------------------------------------------------------------ #
    # Convenience helpers
    # ------------------------------------------------------------------ #
    def estimate_one(self, query: np.ndarray, threshold: float) -> float:
        """Estimate the selectivity of a single query / threshold pair."""
        query = np.asarray(query, dtype=np.float64)
        result = self.estimate(query[None, :], np.asarray([threshold], dtype=np.float64))
        return float(result[0])

    def selectivity_curve(self, query: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Estimated selectivity of one query across many thresholds."""
        query = np.asarray(query, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        queries = np.repeat(query[None, :], len(thresholds), axis=0)
        return self.estimate(queries, thresholds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        consistent = "consistent" if self.guarantees_consistency else "unconstrained"
        return f"{type(self).__name__}(name={self.name!r}, {consistent})"

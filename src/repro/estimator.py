"""The common estimator interface shared by SelNet and every baseline.

Every selectivity estimator in this library — the paper's SelNet variants and
the nine comparison methods — implements :class:`SelectivityEstimator`, so the
evaluation harness, the benchmarks, the serving layer and the examples can
treat them uniformly.

Beyond ``fit`` / ``estimate``, the interface covers the full lifecycle:

* :meth:`SelectivityEstimator.save` / :meth:`SelectivityEstimator.load`
  round-trip any fitted estimator across processes (network weights go
  through :mod:`repro.nn.serialization`, everything else is pickled next to a
  JSON config sidecar — see :mod:`repro.persistence`);
* :meth:`SelectivityEstimator.update` is the data-update protocol: estimators
  that implement incremental maintenance (``supports_updates = True``, e.g.
  the incremental SelNet of Section 5.4) apply insert/delete batches, all
  others raise :class:`UpdateNotSupportedError` so callers can introspect the
  capability instead of silently serving stale estimates.
"""

from __future__ import annotations

import abc
import os
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from .data.workload import WorkloadSplit

PathLike = Union[str, "os.PathLike[str]"]


class UpdateNotSupportedError(NotImplementedError):
    """Raised when ``update`` is called on an estimator without update support."""


class SelectivityEstimator(abc.ABC):
    """Abstract base class for selectivity estimators.

    Attributes
    ----------
    name:
        Human-readable name used in reports (e.g. ``"SelNet"``, ``"KDE"``).
    guarantees_consistency:
        True when the estimator is monotonically non-decreasing in the
        threshold by construction (the models marked ``*`` in the paper's
        tables).
    supports_updates:
        True when the estimator implements the ``update`` protocol (applies
        insert/delete batches and keeps itself accurate, Section 5.4).
    """

    name: str = "estimator"
    guarantees_consistency: bool = False
    supports_updates: bool = False

    #: query dimensionality learned during ``fit`` (None until known); used to
    #: give clear shape errors instead of cryptic numpy broadcast failures
    _input_dim: Optional[int] = None

    #: cached compiled inference kernel (see :meth:`compiled`); class-level
    #: None so unpickled / freshly constructed instances start without one
    _compiled_kernel = None

    @abc.abstractmethod
    def fit(self, split: WorkloadSplit) -> "SelectivityEstimator":
        """Train / build the estimator from a workload split.

        Estimators are free to use ``split.train`` and ``split.validation``
        (and the database itself via ``split.dataset`` / ``split.oracle``),
        but must never look at ``split.test``.
        """

    @abc.abstractmethod
    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Estimate selectivities for aligned query / threshold arrays.

        Returns a float array of shape ``(len(queries),)``; values are
        clipped to be non-negative by callers that need counts.
        """

    # ------------------------------------------------------------------ #
    # Input validation
    # ------------------------------------------------------------------ #
    @property
    def expected_input_dim(self) -> Optional[int]:
        """Query dimensionality this estimator was fitted on (None if unknown)."""
        return self._input_dim

    def _validate_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError(
                f"expected a single 1-D query vector, got an array of shape {query.shape}; "
                "use estimate() for batches of queries"
            )
        expected = self.expected_input_dim
        if expected is not None and query.shape[0] != expected:
            raise ValueError(
                f"query has {query.shape[0]} dimensions but {self.name} was fitted on "
                f"{expected}-dimensional vectors"
            )
        return query

    # ------------------------------------------------------------------ #
    # Compiled inference
    # ------------------------------------------------------------------ #
    def compiled(self, dtype=np.float64, quantize=None, refresh: bool = False):
        """The frozen pure-NumPy inference kernel for this estimator.

        Compiles lazily on first use and caches the kernel; ``refresh=True``
        (or an intervening :meth:`fit` / :meth:`update` / persistence
        ``load``, which call :meth:`_invalidate_compiled`) rebuilds it from
        the current weights.  With the default ``float64`` the kernel's
        ``predict`` is bit-equal to :meth:`estimate`; ``float32`` /
        ``float16`` / ``quantize="int8"`` trade that for smaller working
        sets under an enforced error budget.  See :mod:`repro.inference`.
        """
        kernel = self.__dict__.get("_compiled_kernel")
        # quantize pins the storage dtype itself (int8 tiers store float32
        # fake-quantized weights), so the dtype check only applies without it.
        stale = kernel is None or getattr(kernel, "quantize", None) != quantize
        if not stale and quantize is None:
            stale = kernel.dtype != np.dtype(dtype)
        if refresh or stale:
            from .inference import compile_estimator

            kernel = compile_estimator(self, dtype=dtype, quantize=quantize)
            self._compiled_kernel = kernel
        return kernel

    def _invalidate_compiled(self) -> None:
        """Drop the cached kernel (weights changed: refit, update, reload)."""
        self.__dict__.pop("_compiled_kernel", None)

    # ------------------------------------------------------------------ #
    # Convenience helpers
    # ------------------------------------------------------------------ #
    def estimate_one(self, query: np.ndarray, threshold: float) -> float:
        """Estimate the selectivity of a single query / threshold pair."""
        query = self._validate_query(query)
        if np.ndim(threshold) != 0:
            raise ValueError(
                f"threshold must be a scalar, got an array of shape {np.shape(threshold)}"
            )
        result = self.estimate(query[None, :], np.asarray([threshold], dtype=np.float64))
        return float(result[0])

    def selectivity_curve(self, query: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Estimated selectivity of one query across many thresholds."""
        query = self._validate_query(query)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.ndim != 1:
            raise ValueError(
                f"thresholds must be a 1-D array, got shape {thresholds.shape}"
            )
        queries = np.repeat(query[None, :], len(thresholds), axis=0)
        return self.estimate(queries, thresholds)

    # ------------------------------------------------------------------ #
    # Data-update protocol (Section 5.4)
    # ------------------------------------------------------------------ #
    def update(
        self,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Apply a batch of database inserts and/or deletes.

        ``inserts`` is a ``(n, dim)`` array of new vectors; ``deletes`` is a
        sequence of row indices into the *current* database.  Estimators with
        ``supports_updates = True`` refresh themselves (fine-tuning only when
        accuracy has drifted) and return a list of per-operation reports; all
        others raise :class:`UpdateNotSupportedError`.
        """
        raise UpdateNotSupportedError(
            f"{type(self).__name__} ({self.name!r}) does not support incremental data "
            "updates; pick an estimator whose spec has supports_updates=True "
            "(see repro.available_estimators()), e.g. 'selnet-inc'"
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def get_params(self) -> Dict[str, Any]:
        """Constructor parameters of this estimator, for the JSON sidecar.

        The default implementation mirrors the scikit-learn convention: every
        ``__init__`` argument whose value is stored under an attribute of the
        same name is reported.  Values only need to be JSON-able for the
        sidecar; the pickled state is what actually restores the estimator.
        """
        import inspect

        params: Dict[str, Any] = {}
        try:
            signature = inspect.signature(type(self).__init__)
        except (TypeError, ValueError):  # pragma: no cover - exotic classes
            return params
        for name, parameter in signature.parameters.items():
            if name == "self" or parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            if hasattr(self, name):
                params[name] = getattr(self, name)
        return params

    def save(self, path: PathLike, metadata: Optional[Dict[str, Any]] = None):
        """Persist this (fitted) estimator to a directory.

        Writes a JSON config sidecar (``estimator.json``), the parameters of
        every owned network as an ``.npz`` checkpoint (``weights.npz``, via
        :mod:`repro.nn.serialization`) and the remaining fitted state as a
        pickle — see :func:`repro.persistence.save_estimator`.  ``metadata``
        is merged into the sidecar (the CLI stores the training setting /
        scale / seed there so ``repro estimate`` can rebuild the workload).
        """
        from .persistence import save_estimator

        return save_estimator(self, path, extra_metadata=metadata)

    @classmethod
    def load(cls, path: PathLike) -> "SelectivityEstimator":
        """Load an estimator saved with :meth:`save`.

        Called on a subclass, the loaded estimator must be an instance of
        that subclass; called on :class:`SelectivityEstimator` itself, any
        estimator type is accepted.
        """
        from .persistence import load_estimator

        estimator = load_estimator(path)
        if cls is not SelectivityEstimator and not isinstance(estimator, cls):
            raise TypeError(
                f"{path!r} holds a {type(estimator).__name__}, not a {cls.__name__}"
            )
        return estimator

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        consistent = "consistent" if self.guarantees_consistency else "unconstrained"
        return f"{type(self).__name__}(name={self.name!r}, {consistent})"

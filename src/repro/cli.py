"""Command-line interface: paper reproductions plus the estimator lifecycle.

Usage::

    repro list                                  # available experiments
    repro table 3                               # Table 3 (face-cos accuracy)
    repro table accuracy                        # alias for table 1
    repro table 6 --scale tiny                  # ablation at the tiny scale
    repro figure 4 --output fig4.txt

    repro run accuracy                          # pipeline run (store-cached)
    repro run smoke --expect-all-cached         # CI warm-cache assertion
    repro artifacts list                        # what the store holds
    repro artifacts gc --older-than-days 30     # evict stale artifacts

    repro models                                # the estimator registry
    repro train selnet --setting face-cos --scale tiny --out models/selnet-faces
    repro estimate models/selnet-faces          # evaluate a saved estimator
    repro serve-bench models/selnet-faces --requests 2000 --scenario zipfian
    repro infer-bench models/selnet-faces --output BENCH_inference.json
    repro oracle-bench --n 50000 --dim 128 --num-workers 4 --output BENCH_oracle.json
    repro cluster-bench models/selnet-faces --shards 4    # sharded serving tier

    repro serve --from-store .repro-artifacts --port 8585 --autoscale
    repro saturate models/selnet-faces --output BENCH_net.json

(``repro`` is the console script installed by ``setup.py``; ``python -m
repro`` and ``python -m repro.cli`` are equivalent.)  The experiment
commands (``run`` / ``table`` / ``figure``) execute spec-driven pipelines
against a content-addressed artifact store (:mod:`repro.pipeline`) —
default root ``$REPRO_ARTIFACTS`` or ``.repro-artifacts``, disable with
``--no-store`` — so repeated runs replay cached datasets, labeled workloads
and trained models instead of recomputing them.  The lifecycle commands are
thin consumers of :mod:`repro.registry`, :mod:`repro.persistence` and
:mod:`repro.serving`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from .experiments import (
    figure3_dln_vs_selnet,
    figure4_control_points,
    figure5_updates,
    get_scale,
    run_ablation_table,
    run_accuracy_table,
    run_control_point_sweep,
    run_monotonicity_table,
    run_partition_method_table,
    run_partition_size_sweep,
    run_timing_table,
)

#: table number -> (description, runner taking scale/seed/worker kwargs)
TABLE_RUNNERS: Dict[int, tuple] = {
    1: ("Accuracy on fasttext-cos", lambda **kw: run_accuracy_table("fasttext-cos", **kw)),
    2: ("Accuracy on fasttext-l2", lambda **kw: run_accuracy_table("fasttext-l2", **kw)),
    3: ("Accuracy on face-cos", lambda **kw: run_accuracy_table("face-cos", **kw)),
    4: ("Accuracy on YouTube-cos", lambda **kw: run_accuracy_table("youtube-cos", **kw)),
    5: ("Empirical monotonicity", lambda **kw: run_monotonicity_table(**kw)),
    6: ("Ablation study", lambda **kw: run_ablation_table(**kw)),
    7: ("Estimation time", lambda **kw: run_timing_table(**kw)),
    8: ("Control-point sweep", lambda **kw: run_control_point_sweep(**kw)),
    9: ("Partition-size sweep", lambda **kw: run_partition_size_sweep(**kw)),
    10: ("Partitioning methods", lambda **kw: run_partition_method_table(**kw)),
    11: (
        "Beta-distributed thresholds",
        lambda **kw: run_accuracy_table("fasttext-cos", threshold_distribution="beta", **kw),
    ),
}

#: human-friendly table aliases (``repro table accuracy``)
TABLE_ALIASES: Dict[str, int] = {
    "accuracy": 1,
    "fasttext-cos": 1,
    "fasttext-l2": 2,
    "face-cos": 3,
    "youtube-cos": 4,
    "monotonicity": 5,
    "ablation": 6,
    "timing": 7,
    "control-points": 8,
    "partition-size": 9,
    "partition-methods": 10,
    "beta-thresholds": 11,
    "beta": 11,
}

FIGURE_RUNNERS: Dict[int, tuple] = {
    3: (
        "DLN vs SelNet on exp(t)/10",
        lambda scale=None, seed=0, **kw: figure3_dln_vs_selnet(seed=seed),
    ),
    4: ("Learned control points", lambda **kw: figure4_control_points(**kw)),
    5: ("Accuracy under updates", lambda **kw: figure5_updates(**kw)),
}


#: the smoke experiment always runs at this scale, whatever --scale says
SMOKE_SCALE = "tiny"


def _smoke_experiment(scale=None, **kw):
    """Tiny end-to-end pipeline experiment for CI (seconds, two models)."""
    return run_accuracy_table(
        "face-cos", scale=get_scale(SMOKE_SCALE), models=("KDE", "LightGBM-m"), **kw
    )


#: ``repro run`` experiment catalog: name -> (description, runner)
EXPERIMENTS: Dict[str, tuple] = {}
for _number, (_description, _runner) in TABLE_RUNNERS.items():
    EXPERIMENTS[f"table{_number}"] = (_description, _runner)
for _number, (_description, _runner) in FIGURE_RUNNERS.items():
    EXPERIMENTS[f"figure{_number}"] = (_description, _runner)
for _alias, _number in TABLE_ALIASES.items():
    EXPERIMENTS.setdefault(_alias, TABLE_RUNNERS[_number])
EXPERIMENTS["smoke"] = ("Tiny end-to-end pipeline smoke experiment", _smoke_experiment)


# ---------------------------------------------------------------------- #
# Shared parent parsers (one definition for every subcommand)
# ---------------------------------------------------------------------- #
def _positive_int(raw: str) -> int:
    """argparse type: a strictly positive integer (clean error, no traceback)."""
    value = int(raw)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _parse_size(raw: str) -> int:
    """argparse type: a byte count with an optional binary K/M/G/T suffix."""
    text = raw.strip().upper().removesuffix("IB").removesuffix("B")
    multipliers = {"K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}
    factor = 1
    if text and text[-1] in multipliers:
        factor = multipliers[text[-1]]
        text = text[:-1]
    try:
        value = int(float(text) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse size {raw!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be non-negative, got {raw!r}")
    return value


def _parse_int_list(raw: str) -> list:
    """Comma-separated integers (``1000,10000``) as a list."""
    try:
        return [int(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"cannot parse integer list {raw!r}") from None



def _engine_parent(num_workers_default: Optional[int] = None) -> argparse.ArgumentParser:
    """``--num-workers`` / ``--block-kib`` / ``--progress`` for every command
    that labels workloads or schedules pipeline stages.

    Each subparser gets its own parent instance — argparse shares action
    objects across ``parents=`` users, so a per-command default override
    (oracle-bench's historical 4 threads) must not leak into the others.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("labeling engine / pipeline")
    group.add_argument(
        "--num-workers",
        type=int,
        default=num_workers_default,
        help="oracle labeling threads and pipeline stage workers (default: auto)",
    )
    group.add_argument(
        "--block-kib",
        type=_positive_int,
        default=None,
        help="labeling-engine block budget in KiB (default: auto)",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="log ground-truth labeling progress to stderr",
    )
    group.add_argument(
        "--executor",
        choices=("thread", "process", "cluster"),
        default=None,
        help="pipeline execution backend (default: thread; process/cluster "
        "run stages in worker processes and need an artifact store)",
    )
    return parent


def _seed_parent(default: int = 0) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=default)
    return parent


def _store_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("artifact store")
    group.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store root (default: $REPRO_ARTIFACTS or .repro-artifacts)",
    )
    group.add_argument(
        "--no-store",
        action="store_true",
        help="disable artifact caching for this run",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SelNet reproduction: paper experiments, pipeline, training, serving.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def engine(num_workers_default=None):
        return _engine_parent(num_workers_default)

    def seed0():
        return _seed_parent(0)

    def store():
        return _store_parent()

    subparsers.add_parser("list", help="list the available experiments")

    table_parser = subparsers.add_parser(
        "table",
        help="reproduce one table (1-11, or an alias like 'accuracy')",
        parents=[engine(), seed0(), store()],
    )
    table_parser.add_argument(
        "number",
        choices=[str(number) for number in sorted(TABLE_RUNNERS)] + sorted(TABLE_ALIASES),
        help="table number (1-11) or alias",
    )
    table_parser.add_argument("--scale", default="small", help="tiny, small or medium")
    table_parser.add_argument("--output", default=None, help="also write the table to this file")

    figure_parser = subparsers.add_parser(
        "figure", help="reproduce one figure (3-5)", parents=[engine(), seed0(), store()]
    )
    figure_parser.add_argument("number", type=int, choices=sorted(FIGURE_RUNNERS))
    figure_parser.add_argument("--scale", default="small", help="tiny, small or medium")
    figure_parser.add_argument("--output", default=None, help="also write the figure text to this file")

    run_parser = subparsers.add_parser(
        "run",
        help="run a named experiment through the cached pipeline",
        parents=[engine(), seed0(), store()],
    )
    run_parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help=f"experiment name ({', '.join(sorted(EXPERIMENTS))}); defaults to "
        "'smoke' with --smoke",
    )
    run_parser.add_argument("--scale", default="small", help="tiny, small or medium")
    run_parser.add_argument("--output", default=None, help="also write the result text to this file")
    run_parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the tiny CI smoke experiment (overrides the experiment name)",
    )
    run_parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write per-stage wall-clock and cache statistics as JSON",
    )
    run_parser.add_argument(
        "--expect-all-cached",
        action="store_true",
        help="exit non-zero unless every pipeline stage was a cache hit",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a scale sweep (accuracy vs n) or a cross-seed variance run",
        parents=[engine(), seed0(), store()],
    )
    sweep_parser.add_argument(
        "axis",
        choices=("scale", "seeds"),
        help="sweep axis: database size (accuracy-vs-scale curve) or seeds "
        "(mean ± std per table cell)",
    )
    sweep_parser.add_argument(
        "--setting",
        default="face-cos",
        help="fasttext-cos, fasttext-l2, face-cos or youtube-cos",
    )
    sweep_parser.add_argument("--scale", default="small", help="tiny, small or medium (base profile)")
    sweep_parser.add_argument(
        "--models",
        default=None,
        metavar="A,B",
        help="comma-separated model subset (default: KDE,LightGBM-m)",
    )
    sweep_parser.add_argument(
        "--num-vectors",
        type=_parse_int_list,
        default=None,
        metavar="N1,N2,...",
        help="scale axis: database sizes (default: 1000,10000,100000,1000000)",
    )
    sweep_parser.add_argument(
        "--seeds",
        type=_parse_int_list,
        default=None,
        metavar="S1,S2,...",
        help="seed axis: seeds to aggregate over (default: 0,1,2)",
    )
    sweep_parser.add_argument("--output", default=None, help="also write the sweep text to this file")
    sweep_parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write per-stage wall-clock and cache statistics as JSON",
    )
    sweep_parser.add_argument(
        "--expect-all-cached",
        action="store_true",
        help="exit non-zero unless every pipeline stage was a cache hit",
    )

    artifacts_parser = subparsers.add_parser(
        "artifacts", help="inspect or garbage-collect the artifact store"
    )
    # Only --store here: "--no-store" would be a silently ignored contradiction
    # for a command whose entire job is store interaction.
    artifacts_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store root (default: $REPRO_ARTIFACTS or .repro-artifacts)",
    )
    artifacts_parser.add_argument("action", choices=("list", "gc", "path", "digest"))
    artifacts_parser.add_argument(
        "--kind",
        action="append",
        default=None,
        choices=("dataset", "workload", "train", "eval"),
        help="restrict to artifact kinds; repeatable",
    )
    artifacts_parser.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        help="gc: only evict artifacts not used for this many days",
    )
    artifacts_parser.add_argument(
        "--max-bytes",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="gc: trim the store to this byte budget, evicting least-recently "
        "used artifacts first (accepts K/M/G/T suffixes, e.g. 2G)",
    )
    artifacts_parser.add_argument(
        "--dry-run", action="store_true", help="gc: report what would be removed"
    )
    artifacts_parser.add_argument(
        "--all",
        action="store_true",
        help="gc: confirm wiping the whole store (required when no filter is given)",
    )
    artifacts_parser.add_argument("--json", action="store_true", help="emit JSON")

    models_parser = subparsers.add_parser(
        "models", help="list registered estimators and their capabilities"
    )
    models_parser.add_argument(
        "--dir", default=None, help="also list the saved models in this directory"
    )
    models_parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    train_parser = subparsers.add_parser(
        "train",
        help="fit a registered estimator on a paper setting and save it",
        parents=[engine(), seed0()],
    )
    train_parser.add_argument("estimator", help="registry name (see `repro models`)")
    train_parser.add_argument("--setting", default="face-cos", help="fasttext-cos, fasttext-l2, face-cos or youtube-cos")
    train_parser.add_argument("--scale", default="tiny", help="tiny, small or medium")
    train_parser.add_argument("--out", required=True, help="directory to save the fitted estimator to")
    train_parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="hyper-parameter override (repeatable), e.g. --param epochs=30",
    )

    estimate_parser = subparsers.add_parser(
        "estimate", help="load a saved estimator and evaluate it on its test workload"
    )
    estimate_parser.add_argument("model", help="path to a saved estimator directory")
    estimate_parser.add_argument("--setting", default=None, help="override the recorded setting")
    estimate_parser.add_argument("--scale", default=None, help="override the recorded scale")
    estimate_parser.add_argument("--seed", type=int, default=None, help="override the recorded seed")

    bench_parser = subparsers.add_parser(
        "serve-bench",
        help="benchmark the serving layer against a saved estimator",
        parents=[engine(), seed0()],
    )
    bench_parser.add_argument("model", help="path to a saved estimator directory")
    bench_parser.add_argument("--requests", type=int, default=2000)
    bench_parser.add_argument("--arrival-batch", type=int, default=32)
    bench_parser.add_argument("--cache-size", type=int, default=256)
    bench_parser.add_argument("--curve-points", type=int, default=64)
    bench_parser.add_argument("--max-batch-size", type=int, default=256)
    bench_parser.add_argument(
        "--cache-key-decimals",
        type=int,
        default=10,
        help="query-coordinate rounding inside cache keys",
    )
    bench_parser.add_argument(
        "--scenario",
        default=None,
        help="traffic scenario (see repro.workloads); default: the legacy hot-set stream",
    )
    bench_parser.add_argument(
        "--pool",
        choices=("test", "all"),
        default="test",
        help="request pool: the test fold or every workload fold",
    )
    bench_parser.add_argument("--no-cache", action="store_true", help="bypass the curve cache")
    bench_parser.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="treat MODEL as a model name inside this artifact store's train/ "
        "namespace and rebuild its workload from the recorded pipeline spec",
    )
    bench_parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="also write the full benchmark report as JSON",
    )

    infer_parser = subparsers.add_parser(
        "infer-bench",
        help="benchmark compiled (pure-NumPy) vs graph (autodiff) inference",
        parents=[engine(), seed0()],
    )
    infer_parser.add_argument(
        "models", nargs="+", help="paths to saved estimator directories"
    )
    infer_parser.add_argument(
        "--batch-sizes",
        default="1,16,256,2048",
        help="comma-separated request batch sizes to measure",
    )
    infer_parser.add_argument("--repeats", type=int, default=20, help="timed iterations per arm")
    infer_parser.add_argument("--warmup", type=int, default=3, help="untimed warmup iterations")
    infer_parser.add_argument(
        "--pool",
        choices=("test", "all"),
        default="all",
        help="request pool: the test fold or every workload fold",
    )
    infer_parser.add_argument(
        "--output",
        default=None,
        help="also write the results as JSON (e.g. BENCH_inference.json)",
    )
    infer_parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: small batches and few repeats (parity is always asserted)",
    )
    infer_parser.add_argument(
        "--dtype",
        default="float64",
        help="comma-separated precision tiers to benchmark "
        "(float64, float32, float16, int8); each is gated on its own budget",
    )
    infer_parser.add_argument(
        "--max-deviation",
        type=float,
        default=None,
        help="override every tier's deviation budget (float64: absolute "
        "|compiled - graph|; other tiers: relative to the graph answer). "
        "Default: each tier's committed budget from repro.inference.precision",
    )

    oracle_parser = subparsers.add_parser(
        "oracle-bench",
        help="benchmark the blocked exact-selectivity engine vs the per-query oracle",
        # historical default: 4 engine threads (the committed BENCH_oracle.json)
        parents=[engine(num_workers_default=4), seed0()],
    )
    oracle_parser.add_argument("--n", type=int, default=50_000, help="database size")
    oracle_parser.add_argument("--dim", type=int, default=128, help="vector dimensionality")
    oracle_parser.add_argument("--queries", type=int, default=100, help="distinct query vectors")
    oracle_parser.add_argument(
        "--thresholds-per-query", type=int, default=40, help="w thresholds per query"
    )
    oracle_parser.add_argument(
        "--distance", default="euclidean", help="euclidean or cosine"
    )
    oracle_parser.add_argument(
        "--delta-ops", type=int, default=20, help="update operations in the delta-replay phase"
    )
    oracle_parser.add_argument(
        "--no-delta", action="store_true", help="skip the delta-replay phase"
    )
    oracle_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero when the workload-generation speedup falls below this",
    )
    oracle_parser.add_argument(
        "--output",
        default=None,
        help="also write the results as JSON (e.g. BENCH_oracle.json)",
    )
    oracle_parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: small database (the exact-parity gate is always asserted)",
    )

    cluster_parser = subparsers.add_parser(
        "cluster-bench",
        help="benchmark the sharded estimation cluster against a saved estimator",
        parents=[engine(), seed0()],
    )
    cluster_parser.add_argument("model", help="path to a saved estimator directory")
    cluster_parser.add_argument("--shards", type=int, default=2, help="number of worker shards")
    cluster_parser.add_argument(
        "--backend",
        choices=("inline", "process", "network"),
        default="inline",
        help="inline (in-process shards), process (one worker process per "
        "shard) or network (process shards over shared-memory transport)",
    )
    cluster_parser.add_argument(
        "--replication", type=int, default=1, help="replica set size per (model, query) key"
    )
    cluster_parser.add_argument("--requests", type=int, default=2000)
    cluster_parser.add_argument("--arrival-batch", type=int, default=32)
    cluster_parser.add_argument(
        "--scenario", default="zipfian", help="traffic scenario (see repro.workloads)"
    )
    cluster_parser.add_argument(
        "--pool",
        choices=("test", "all"),
        default="all",
        help="request pool: the test fold or every workload fold",
    )
    cluster_parser.add_argument(
        "--cache-size", type=int, default=16, help="curve-cache capacity per shard"
    )
    cluster_parser.add_argument("--curve-points", type=int, default=64)
    cluster_parser.add_argument("--max-batch-size", type=int, default=256)
    cluster_parser.add_argument(
        "--cache-key-decimals",
        type=int,
        default=10,
        help="query-coordinate rounding for routing and cache keys",
    )
    cluster_parser.add_argument(
        "--queue-capacity", type=int, default=8, help="bounded per-shard queue size"
    )
    cluster_parser.add_argument(
        "--policy",
        choices=("block", "shed"),
        default="block",
        help="admission control when a shard queue is full",
    )
    cluster_parser.add_argument(
        "--pipeline-depth", type=int, default=4, help="outstanding arrival batches"
    )
    cluster_parser.add_argument("--no-cache", action="store_true", help="bypass the curve caches")
    cluster_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the single-process serve-bench comparison run",
    )
    cluster_parser.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="treat MODEL as a model name inside this artifact store's train/ "
        "namespace and rebuild its workload from the recorded pipeline spec",
    )
    cluster_parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="also write the full benchmark report as JSON",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve estimators over HTTP (JSON) and a binary TCP protocol",
    )
    serve_parser.add_argument(
        "model_dir",
        nargs="?",
        default=None,
        help="directory of saved estimators to serve (or use --from-store)",
    )
    serve_parser.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="serve the trained models of this artifact store (its train/ namespace)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8585, help="HTTP port")
    serve_parser.add_argument(
        "--binary-port",
        type=int,
        default=None,
        help="binary-protocol port (default: HTTP port + 1; negative disables)",
    )
    serve_parser.add_argument("--shards", type=int, default=1, help="initial worker shards")
    serve_parser.add_argument(
        "--backend",
        choices=("inline", "process", "network"),
        default="network",
        help="shard backend (default: network, shared-memory process shards)",
    )
    serve_parser.add_argument(
        "--queue-capacity", type=int, default=8, help="bounded per-shard queue size"
    )
    serve_parser.add_argument(
        "--policy",
        choices=("block", "shed"),
        default="block",
        help="admission control when a shard queue is full",
    )
    serve_parser.add_argument(
        "--autoscale",
        action="store_true",
        help="scale shards elastically on queue pressure",
    )
    serve_parser.add_argument(
        "--kernel-dtype",
        choices=("float64", "float32", "float16", "int8"),
        default=None,
        help="compiled-kernel precision tier inside every shard (default: float64)",
    )
    serve_parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget for each shard's curve cache (default: unbounded)",
    )
    serve_parser.add_argument(
        "--cache-quantize-bits",
        type=int,
        choices=(8, 16),
        default=None,
        help="store cached curves quantized to this many bits per control point",
    )
    serve_parser.add_argument(
        "--shm-dtype",
        choices=("float64", "float32"),
        default="float64",
        help="wire dtype for shared-memory batch payloads (float32 halves them)",
    )
    serve_parser.add_argument("--min-shards", type=int, default=1)
    serve_parser.add_argument("--max-shards", type=int, default=4)
    serve_parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit after this many seconds (default: run until interrupted)",
    )
    serve_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record request spans (frontend + shard workers) to this JSONL file",
    )
    serve_parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of traces to record, deterministic per trace ID (default: 1.0)",
    )

    top_parser = subparsers.add_parser(
        "top",
        help="live terminal dashboard for a running `repro serve` instance",
    )
    top_parser.add_argument(
        "url",
        nargs="?",
        default="http://127.0.0.1:8585",
        help="base URL of the serve HTTP endpoint (default: http://127.0.0.1:8585)",
    )
    top_parser.add_argument(
        "--interval", type=float, default=1.0, help="seconds between refreshes"
    )
    top_parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after this many frames (default: run until interrupted)",
    )

    saturate_parser = subparsers.add_parser(
        "saturate",
        help="open-loop saturation benchmark of the network serving tier",
        parents=[seed0()],
    )
    saturate_parser.add_argument("model", help="path to a saved estimator directory")
    saturate_parser.add_argument(
        "--from-store",
        default=None,
        metavar="DIR",
        help="treat MODEL as a model name inside this artifact store's train/ namespace",
    )
    saturate_parser.add_argument(
        "--loads",
        default="250,1000,4000,16000",
        help="comma-separated offered loads (requests/s) to sweep",
    )
    saturate_parser.add_argument(
        "--duration", type=float, default=2.0, help="seconds of traffic per load point"
    )
    saturate_parser.add_argument("--batch", type=int, default=32, help="rows per request batch")
    saturate_parser.add_argument(
        "--connections", type=int, default=4, help="concurrent sender connections"
    )
    saturate_parser.add_argument(
        "--max-shards", type=int, default=4, help="autoscaler ceiling for the elastic scenario"
    )
    saturate_parser.add_argument(
        "--output",
        default=None,
        help="also write the results as JSON (e.g. BENCH_net.json)",
    )
    saturate_parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: short sweeps, small batches",
    )
    saturate_parser.add_argument(
        "--no-transport-compare",
        action="store_true",
        help="skip the shm-vs-pickle transport micro-benchmark",
    )
    saturate_parser.add_argument(
        "--no-cache-density",
        action="store_true",
        help="skip the quantized-vs-full curve-cache density comparison",
    )
    saturate_parser.add_argument(
        "--cache-density-bytes",
        type=int,
        default=256 * 1024,
        metavar="BYTES",
        help="byte budget both caches share in the density comparison",
    )
    saturate_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record request spans (senders, frontend, shard workers) to this JSONL file",
    )
    saturate_parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.01,
        help="fraction of traces to record (default: 0.01 — saturation is high-volume)",
    )

    bench_report_parser = subparsers.add_parser(
        "bench-report",
        help="aggregate every committed BENCH_*.json into one trajectory table",
    )
    bench_report_parser.add_argument(
        "--root",
        default=".",
        help="directory holding the BENCH_*.json artifacts (default: cwd)",
    )
    bench_report_parser.add_argument(
        "--output",
        default=None,
        help="also write the merged reports as one JSON document",
    )
    return parser


# ---------------------------------------------------------------------- #
# Pipeline-backed experiment execution
# ---------------------------------------------------------------------- #
def _block_bytes(args) -> Optional[int]:
    """The --block-kib flag as an engine byte budget (None = auto)."""
    block_kib = getattr(args, "block_kib", None)
    return None if block_kib is None else block_kib * 1024


def _engine_options_from(args) -> Dict:
    """Labeling-engine tuning from the shared parent-parser flags.

    ``--num-workers`` is deliberately NOT copied here for the pipeline
    commands: it feeds the runner's stage pool (and the process-wide engine
    default via ``main``), and the runner derives each labeling stage's
    engine share from that total — pinning it here would bypass the
    anti-oversubscription split and run pool-width x engine-width threads.
    """
    options: Dict = {}
    if _block_bytes(args) is not None:
        options["block_bytes"] = _block_bytes(args)
    if getattr(args, "progress", False):
        options["progress"] = True
    return options


def _store_from(args):
    """The artifact store selected by the shared --store / --no-store flags."""
    from .pipeline import ArtifactStore

    if getattr(args, "no_store", False):
        return None
    return ArtifactStore.from_env(getattr(args, "store", None))


def _execute_experiment(runner: Callable, args):
    """Shared table / figure / run core: resolve the store, activate it,
    execute the runner with the shared-flag kwargs, write ``--output``.

    Returns ``(result, store, elapsed_seconds)``.
    """
    from .pipeline import use_store

    scale = get_scale(args.scale)
    store = _store_from(args)
    executor = getattr(args, "executor", None)
    if executor in ("process", "cluster") and store is None:
        raise SystemExit(
            f"error: --executor {executor} coordinates stages through the "
            "artifact store; drop --no-store"
        )
    started = time.perf_counter()
    with use_store(store):
        result = runner(
            scale=scale,
            seed=args.seed,
            num_workers=getattr(args, "num_workers", None),
            engine_options=_engine_options_from(args),
            executor=executor,
        )
    elapsed = time.perf_counter() - started
    print(result.text)
    if getattr(args, "output", None):
        with open(args.output, "w") as handle:
            handle.write(result.text + "\n")
    return result, store, elapsed


def _run_experiment(runner: Callable, args) -> object:
    """``repro table`` / ``repro figure``: execute + one summary line."""
    result, store, _ = _execute_experiment(runner, args)
    report = getattr(result, "pipeline_report", None)
    if report is not None and store is not None:
        print(
            f"[pipeline] {report.cache_hits} cached / {report.cache_misses} built "
            f"stages in {report.total_seconds:.2f} s (store: {store.root})",
            file=sys.stderr,
        )
    return result


def _cmd_run(args) -> int:
    name = "smoke" if args.smoke else args.experiment
    if name is None:
        raise SystemExit("error: name an experiment (or pass --smoke); see `repro list`")
    key = name.lower()
    if key not in EXPERIMENTS:
        raise SystemExit(
            f"error: unknown experiment {name!r}; choose from {', '.join(sorted(EXPERIMENTS))}"
        )
    description, runner = EXPERIMENTS[key]
    if getattr(args, "no_store", False) and args.expect_all_cached:
        raise SystemExit("error: --expect-all-cached needs an artifact store (drop --no-store)")

    result, store, elapsed = _execute_experiment(runner, args)

    report = getattr(result, "pipeline_report", None)
    stats = None if store is None else store.stats
    if report is not None:
        print(report.text, file=sys.stderr)
    if stats is not None:
        print(
            f"[store] {stats.hits} hits ({stats.hits_disk} disk) / {stats.misses} misses "
            f"at {store.root}",
            file=sys.stderr,
        )

    if args.stats_json:
        payload = {
            "experiment": key,
            "description": description,
            # The smoke experiment pins its scale regardless of --scale;
            # record what actually ran.
            "scale": SMOKE_SCALE if key == "smoke" else get_scale(args.scale).name,
            "seed": args.seed,
            "elapsed_seconds": elapsed,
            "store": None if store is None else str(store.root),
            "store_stats": None if stats is None else stats.as_dict(),
            "pipeline": None if report is None else report.as_dict(),
            "all_cached": stats is not None and stats.misses == 0,
        }
        with open(args.stats_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.stats_json}")

    if args.expect_all_cached and stats is not None:
        if stats.misses > 0:
            raise SystemExit(
                f"cache-miss failure: expected a fully warm store but {stats.misses} "
                f"stage(s) had to be built (stats: {stats.as_dict()})"
            )
        if stats.hits == 0:
            # 0 hits / 0 misses means the experiment never touched the store;
            # a warm-cache assertion over it would pass vacuously forever.
            raise SystemExit(
                f"cache-assertion failure: experiment {key!r} ran no store-backed "
                "stages, so --expect-all-cached cannot attest anything"
            )
    return 0


def _cmd_sweep(args) -> int:
    from .experiments import run_scale_sweep, run_seed_variance
    from .experiments.sweeps import (
        DEFAULT_SCALE_POINTS,
        DEFAULT_SWEEP_MODELS,
        DEFAULT_VARIANCE_SEEDS,
    )

    models = (
        DEFAULT_SWEEP_MODELS
        if args.models is None
        else tuple(part.strip() for part in args.models.split(",") if part.strip())
    )
    if args.axis == "scale":
        points = args.num_vectors or list(DEFAULT_SCALE_POINTS)

        def runner(**kw):
            return run_scale_sweep(args.setting, num_vectors=points, models=models, **kw)

    else:
        seeds = args.seeds or list(DEFAULT_VARIANCE_SEEDS)

        def runner(**kw):
            return run_seed_variance(args.setting, models=models, seeds=seeds, **kw)

    if getattr(args, "no_store", False) and args.expect_all_cached:
        raise SystemExit("error: --expect-all-cached needs an artifact store (drop --no-store)")

    result, store, elapsed = _execute_experiment(runner, args)
    report = result.pipeline_report
    stats = None if store is None else store.stats
    if report is not None:
        print(report.text, file=sys.stderr)

    if args.stats_json:
        payload = {
            "sweep": result.sweep_id,
            "axis": args.axis,
            "description": result.description,
            "scale": get_scale(args.scale).name,
            "elapsed_seconds": elapsed,
            "store": None if store is None else str(store.root),
            "store_stats": None if stats is None else stats.as_dict(),
            "pipeline": None if report is None else report.as_dict(),
            "rows": result.rows,
            "all_cached": stats is not None and stats.misses == 0,
        }
        with open(args.stats_json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.stats_json}")

    if args.expect_all_cached and stats is not None:
        if stats.misses > 0:
            raise SystemExit(
                f"cache-miss failure: expected a fully warm store but {stats.misses} "
                f"stage(s) had to be built (stats: {stats.as_dict()})"
            )
        if stats.hits == 0:
            raise SystemExit(
                "cache-assertion failure: the sweep ran no store-backed stages, "
                "so --expect-all-cached cannot attest anything"
            )
    return 0


def _eval_digests(store) -> Dict[str, str]:
    """SHA-256 per eval artifact over its deterministic content.

    Wall-clock measurement fields (``EvalSpec.TIMING_FIELDS``) are excluded:
    they differ across *any* two runs, while everything the estimator
    computed must be byte-identical across executors / machines — this is
    the digest CI compares between the thread- and process-backend stores.
    """
    import hashlib

    from .pipeline.specs import EvalSpec

    digests: Dict[str, str] = {}
    for entry in store.list_artifacts(["eval"]):
        path = store.root / "eval" / entry["hash"] / "evaluation.json"
        payload = json.loads(path.read_text())
        canonical = json.dumps(
            EvalSpec.deterministic_payload(payload), sort_keys=True
        )
        digests[entry["hash"]] = hashlib.sha256(canonical.encode()).hexdigest()
    return digests


def _cmd_artifacts(args) -> int:
    from .pipeline import ArtifactStore

    store = ArtifactStore.from_env(args.store)
    if args.action == "path":
        print(store.root)
        return 0
    if args.action == "gc":
        filtered = (
            args.kind is not None
            or args.older_than_days is not None
            or args.max_bytes is not None
        )
        if not filtered and not (args.all or args.dry_run):
            raise SystemExit(
                "error: a bare gc would delete every artifact; pass --kind / "
                "--older-than-days / --max-bytes to filter, --all to confirm "
                "a full wipe, or --dry-run"
            )
        older_than = (
            None if args.older_than_days is None else args.older_than_days * 86400.0
        )
        summary = store.gc(
            kinds=args.kind,
            older_than_seconds=older_than,
            max_bytes=args.max_bytes,
            dry_run=args.dry_run,
        )
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            verb = "would remove" if args.dry_run else "removed"
            print(
                f"{verb} {len(summary['removed'])} artifact(s), "
                f"{summary['removed_bytes']} bytes; swept {summary['temp_dirs_swept']} temp dir(s)"
            )
        return 0
    if args.action == "digest":
        digests = _eval_digests(store)
        if args.json:
            print(json.dumps({"store": str(store.root), "evals": digests}, indent=2, sort_keys=True))
        else:
            for spec_hash in sorted(digests):
                print(f"{spec_hash}  {digests[spec_hash]}")
        return 0

    entries = store.list_artifacts(args.kind)
    if args.json:
        print(json.dumps({"store": str(store.root), "artifacts": entries}, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"(no artifacts under {store.root})")
        return 0
    header = f"{'kind':<10} {'hash':<18} {'size':>10} {'built in':>10}  description"
    print(header)
    print("-" * len(header))
    for entry in entries:
        print(
            f"{entry['kind']:<10} {entry['hash']:<18} {entry['size_bytes']:>10} "
            f"{entry['build_seconds']:>9.2f}s  {entry['description']}"
        )
    total_bytes = sum(entry["size_bytes"] for entry in entries)
    print(f"total: {len(entries)} artifact(s), {total_bytes} bytes at {store.root}")
    return 0


# ---------------------------------------------------------------------- #
# Lifecycle commands
# ---------------------------------------------------------------------- #
def _parse_param(raw: str):
    key, sep, value = raw.partition("=")
    if not sep:
        raise SystemExit(f"--param expects KEY=VALUE, got {raw!r}")
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def _cmd_models(args) -> int:
    from .registry import iter_estimator_specs

    specs = iter_estimator_specs()
    if args.json:
        payload = {"registry": [spec.describe() for spec in specs]}
        if args.dir:
            from .serving import EstimationService

            payload["saved_models"] = EstimationService(args.dir).describe_models()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    header = f"{'name':<14} {'display':<14} {'consistent':<11} {'updates':<8} {'distances':<18} description"
    print(header)
    print("-" * len(header))
    for spec in specs:
        print(
            f"{spec.name:<14} {spec.display_name:<14} "
            f"{'yes' if spec.guarantees_consistency else 'no':<11} "
            f"{'yes' if spec.supports_updates else 'no':<8} "
            f"{','.join(spec.supported_distances):<18} {spec.description}"
        )
    if args.dir:
        from .serving import EstimationService

        described = EstimationService(args.dir).describe_models()
        print(f"\nsaved models in {args.dir}:")
        if not described:
            print("  (none)")
        for name, metadata in described.items():
            trained_on = metadata.get("metadata", {})
            extra = ""
            if trained_on:
                extra = (
                    f"  [setting={trained_on.get('setting', '?')}"
                    f" scale={trained_on.get('scale', '?')}"
                    f" seed={trained_on.get('seed', '?')}]"
                )
            print(f"  {name:<20} {metadata.get('name', '?'):<14} {metadata.get('class', '')}{extra}")
    return 0


def _build_split_for(
    setting: str,
    scale_name: str,
    seed: int,
    num_workers: Optional[int] = None,
    block_bytes: Optional[int] = None,
    progress: bool = False,
):
    from .eval.harness import build_setting_split

    scale = get_scale(scale_name)
    return scale, build_setting_split(
        setting,
        scale,
        seed=seed,
        num_workers=num_workers,
        block_bytes=block_bytes,
        progress=progress or None,
    )


def _metrics_line(estimator, workload, label: str) -> str:
    from .eval.metrics import compute_error_metrics

    estimates = estimator.estimate(workload.queries, workload.thresholds)
    metrics = compute_error_metrics(estimates, workload.selectivities)
    return (
        f"  {label:<11} mse {metrics.mse:>12.2f}   mae {metrics.mae:>10.2f}   "
        f"mape {metrics.mape:>8.3f}   ({len(workload)} rows)"
    )


def _cmd_train(args) -> int:
    from .registry import create_estimator, get_estimator_spec

    try:
        spec = get_estimator_spec(args.estimator)
    except KeyError as error:
        raise SystemExit(f"error: {error.args[0]}")
    scale, split = _build_split_for(
        args.setting,
        args.scale,
        args.seed,
        num_workers=args.num_workers,
        block_bytes=_block_bytes(args),
        progress=bool(args.progress),
    )
    if not spec.supports_distance(split.distance.name):
        raise SystemExit(
            f"{spec.name} does not support the {split.distance.name} distance of {args.setting}"
        )
    params = spec.params_for_scale(scale, split.dataset.num_vectors)
    params["seed"] = args.seed
    for raw in args.param:
        key, value = _parse_param(raw)
        params[key] = value

    estimator = create_estimator(spec.name, **params)
    print(f"training {spec.display_name} on {args.setting} [{scale.name} scale]...")
    start = time.perf_counter()
    estimator.fit(split)
    fit_seconds = time.perf_counter() - start
    print(f"fitted in {fit_seconds:.1f} s")
    print(_metrics_line(estimator, split.validation, "validation:"))
    print(_metrics_line(estimator, split.test, "test:"))

    estimator.save(
        args.out,
        metadata={
            "estimator": spec.name,
            "setting": args.setting,
            "scale": scale.name,
            "seed": args.seed,
            "fit_seconds": fit_seconds,
        },
    )
    print(f"saved to {args.out}")
    return 0


def _recorded_training(model_path: str) -> Dict:
    from .persistence import read_metadata

    try:
        return read_metadata(model_path).get("metadata", {})
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(f"error: {error}")


def _cmd_estimate(args) -> int:
    from .estimator import SelectivityEstimator

    recorded = _recorded_training(args.model)
    setting = args.setting or recorded.get("setting")
    scale_name = args.scale or recorded.get("scale")
    seed = args.seed if args.seed is not None else recorded.get("seed", 0)
    if setting is None or scale_name is None:
        raise SystemExit(
            f"{args.model} does not record its training setting/scale; "
            "pass --setting and --scale explicitly"
        )

    estimator = SelectivityEstimator.load(args.model)
    _, split = _build_split_for(setting, scale_name, seed)
    print(
        f"{estimator.name} on {setting} [{scale_name} scale, seed {seed}] "
        f"(consistent: {'yes' if estimator.guarantees_consistency else 'no'}, "
        f"updates: {'yes' if estimator.supports_updates else 'no'})"
    )
    print(_metrics_line(estimator, split.validation, "validation:"))
    print(_metrics_line(estimator, split.test, "test:"))
    return 0


def _bench_split(model_path: Path, args=None):
    recorded = _recorded_training(model_path)
    setting = recorded.get("setting")
    scale_name = recorded.get("scale")
    seed = recorded.get("seed", 0)
    if setting is None or scale_name is None:
        raise SystemExit(
            f"{model_path} does not record its training setting/scale, cannot "
            "regenerate a request workload"
        )
    _, split = _build_split_for(
        setting,
        scale_name,
        seed,
        num_workers=getattr(args, "num_workers", None),
        block_bytes=_block_bytes(args),
        progress=bool(getattr(args, "progress", False)),
    )
    return split


def _bench_pool(split, pool: str):
    """The benchmark's (queries, thresholds) request pool."""
    import numpy as np

    if pool == "test":
        return split.test.queries, split.test.thresholds
    folds = (split.train, split.validation, split.test)
    return (
        np.concatenate([fold.queries for fold in folds]),
        np.concatenate([fold.thresholds for fold in folds]),
    )


def _store_model_path(store_root: str, model_name: str):
    """The saved-model directory for ``model_name`` inside an artifact store."""
    from .persistence import SIDECAR_FILE
    from .pipeline import ArtifactStore

    store = ArtifactStore(store_root)
    models_dir = store.models_dir()
    model_path = models_dir / model_name
    if not (model_path / SIDECAR_FILE).is_file():
        available = sorted(
            child.name
            for child in (models_dir.iterdir() if models_dir.is_dir() else [])
            if not child.name.startswith(".") and (child / SIDECAR_FILE).is_file()
        )
        raise SystemExit(
            f"no model {model_name!r} in store {store_root} "
            f"(train/ holds: {available or 'nothing'})"
        )
    return store, model_path


def _resolve_bench_model(args):
    """The benchmark's ``(model_path, split)``, honoring ``--from-store``.

    With ``--from-store`` the positional MODEL is a model name inside the
    store's ``train/`` namespace; the workload it was fitted on is rebuilt
    from the ``pipeline_spec`` its sidecar records (a store cache hit when
    the workload artifact still exists — no recomputation).
    """
    if getattr(args, "from_store", None):
        from .pipeline import spec_from_canonical, use_store

        store, model_path = _store_model_path(args.from_store, args.model)
        recorded = _recorded_training(model_path)
        canonical = recorded.get("pipeline_spec")
        if canonical is None:
            raise SystemExit(
                f"{model_path} does not record a pipeline spec; cannot rebuild "
                "its workload (was it trained via `repro train` instead of the "
                "pipeline?)"
            )
        train_spec = spec_from_canonical(canonical)
        with use_store(store):
            split = store.get_or_build(
                train_spec.workload,
                num_workers=getattr(args, "num_workers", None),
                block_bytes=_block_bytes(args),
                progress=bool(getattr(args, "progress", False)) or None,
            )
        return model_path, split
    model_path = Path(args.model)
    return model_path, _bench_split(model_path, args)


def _write_stats_json(path: str, payload) -> None:
    from .persistence import _jsonify

    target = Path(path)
    target.write_text(json.dumps(_jsonify(payload), indent=2) + "\n")
    print(f"wrote {target}")


def _cmd_serve_bench(args) -> int:
    from .serving import EstimationService, run_serving_benchmark

    model_path, split = _resolve_bench_model(args)
    queries, thresholds = _bench_pool(split, args.pool)

    service = EstimationService(
        model_path.parent,
        cache_capacity=args.cache_size,
        curve_resolution=args.curve_points,
        max_batch_size=args.max_batch_size,
        cache_key_decimals=args.cache_key_decimals,
    )
    report = run_serving_benchmark(
        service,
        model_path.name,
        queries,
        thresholds,
        num_requests=args.requests,
        arrival_batch=args.arrival_batch,
        use_cache=not args.no_cache,
        seed=args.seed,
        scenario=args.scenario,
    )
    print(report.text)
    if args.stats_json:
        import dataclasses

        _write_stats_json(args.stats_json, dataclasses.asdict(report))
    return 0


def _cmd_infer_bench(args) -> int:
    from .estimator import SelectivityEstimator
    from .inference import (
        InferenceBenchmarkReport,
        error_budget,
        parse_tier,
        run_inference_benchmark,
        write_benchmark_json,
    )

    if args.smoke:
        batch_sizes = (1, 64)
        repeats, warmup = 5, 1
    else:
        try:
            batch_sizes = tuple(int(part) for part in args.batch_sizes.split(",") if part)
        except ValueError:
            raise SystemExit(f"--batch-sizes expects comma-separated integers, got {args.batch_sizes!r}")
        repeats, warmup = args.repeats, args.warmup

    tier_tokens = [token.strip() for token in args.dtype.split(",") if token.strip()]
    try:
        tiers = [parse_tier(token).name for token in tier_tokens]
    except ValueError as error:
        raise SystemExit(str(error))
    if not tiers:
        raise SystemExit("--dtype names no precision tier")

    report = InferenceBenchmarkReport(
        metadata={
            "batch_sizes": list(batch_sizes),
            "pool": args.pool,
            "seed": args.seed,
            "smoke": bool(args.smoke),
            "dtypes": tiers,
            "models": {},
        }
    )
    for raw_path in args.models:
        model_path = Path(raw_path)
        split = _bench_split(model_path, args)
        queries, thresholds = _bench_pool(split, args.pool)
        estimator = SelectivityEstimator.load(model_path)
        partial = run_inference_benchmark(
            {model_path.name: estimator},
            queries,
            thresholds,
            batch_sizes=batch_sizes,
            repeats=repeats,
            warmup=warmup,
            seed=args.seed,
            dtypes=tiers,
        )
        report.rows.extend(partial.rows)
        report.metadata["models"][model_path.name] = _recorded_training(model_path)
        report.metadata.setdefault("repeats", repeats)
        report.metadata.setdefault("warmup", warmup)

    print(report.text)
    if args.output:
        path = write_benchmark_json(report, args.output)
        print(f"wrote {path}")
    # The per-tier budget gate: float64 answers must match the graph to the
    # absolute bit-parity bound, narrower tiers to their relative budgets.
    failures = []
    for tier in tiers:
        budget = args.max_deviation if args.max_deviation is not None else error_budget(tier)
        if tier == "float64":
            deviation = report.max_deviation("float64")
            line = f"parity: max |compiled - graph| = {deviation:.3e} (<= {budget:.1e})"
        else:
            deviation = report.max_relative_deviation(tier)
            line = f"parity[{tier}]: max relative deviation = {deviation:.3e} (<= {budget:.1e})"
        if deviation > budget:
            failures.append(
                f"{tier}: deviation {deviation:.3e} exceeds budget {budget:.1e}"
            )
        else:
            print(line)
    if failures:
        raise SystemExit("parity failure: " + "; ".join(failures))
    return 0


def _cmd_oracle_bench(args) -> int:
    from .exact import run_oracle_benchmark, write_oracle_benchmark_json

    if args.smoke:
        num_objects, dim, num_queries, thresholds_per_query = 4000, 24, 40, 12
        delta_operations = 10
    else:
        num_objects, dim = args.n, args.dim
        num_queries, thresholds_per_query = args.queries, args.thresholds_per_query
        delta_operations = args.delta_ops

    report = run_oracle_benchmark(
        num_objects=num_objects,
        dim=dim,
        num_queries=num_queries,
        thresholds_per_query=thresholds_per_query,
        distance=args.distance,
        num_workers=args.num_workers,
        block_bytes=_block_bytes(args),
        delta_operations=delta_operations,
        include_delta=not args.no_delta,
        seed=args.seed,
    )
    report.metadata["smoke"] = bool(args.smoke)
    print(report.text)
    if args.output:
        path = write_oracle_benchmark_json(report, args.output)
        print(f"wrote {path}")
    if not report.parity_ok():
        raise SystemExit(
            "parity failure: batched engine counts diverge from the per-query reference"
        )
    print("parity: every phase matched the per-query reference exactly")
    if args.min_speedup is not None:
        speedup = report.speedup_for("workload-generation")
        if speedup < args.min_speedup:
            raise SystemExit(
                f"speedup regression: workload-generation {speedup:.2f}x "
                f"< required {args.min_speedup:.2f}x"
            )
    return 0


def _cmd_cluster_bench(args) -> int:
    from .cluster import ClusterConfig, EstimationCluster, run_cluster_benchmark
    from .serving import EstimationService, run_serving_benchmark

    model_path, split = _resolve_bench_model(args)
    queries, thresholds = _bench_pool(split, args.pool)

    config = ClusterConfig(
        num_shards=args.shards,
        model_dir=model_path.parent,
        backend=args.backend,
        replication_factor=args.replication,
        queue_capacity=args.queue_capacity,
        overload_policy=args.policy,
        cache_capacity=args.cache_size,
        curve_resolution=args.curve_points,
        max_batch_size=args.max_batch_size,
        cache_key_decimals=args.cache_key_decimals,
    )
    with EstimationCluster(config) as cluster:
        report = run_cluster_benchmark(
            cluster,
            model_path.name,
            queries,
            thresholds,
            num_requests=args.requests,
            arrival_batch=args.arrival_batch,
            scenario=args.scenario,
            use_cache=not args.no_cache,
            pipeline_depth=args.pipeline_depth,
            seed=args.seed,
        )
    print(report.text)

    baseline = None
    if not args.no_baseline:
        # The same stream against one process with one shard's resources:
        # the honest single-node comparison for the per-shard settings above.
        service = EstimationService(
            model_path.parent,
            cache_capacity=args.cache_size,
            curve_resolution=args.curve_points,
            max_batch_size=args.max_batch_size,
            cache_key_decimals=args.cache_key_decimals,
        )
        baseline = run_serving_benchmark(
            service,
            model_path.name,
            queries,
            thresholds,
            num_requests=args.requests,
            arrival_batch=args.arrival_batch,
            use_cache=not args.no_cache,
            seed=args.seed,
            scenario=args.scenario,
        )
        speedup = report.requests_per_second / max(baseline.requests_per_second, 1e-12)
        print(
            f"  baseline (1 proc) : {baseline.requests_per_second:>10.1f} requests/s "
            f"(cache hit rate {100.0 * baseline.cache_hit_rate:.1f} %)"
        )
        print(f"  cluster speedup   : {speedup:>10.2f} x over single-process serve-bench")
    if args.stats_json:
        import dataclasses

        _write_stats_json(
            args.stats_json,
            {
                "cluster": dataclasses.asdict(report),
                "baseline": None if baseline is None else dataclasses.asdict(baseline),
            },
        )
    return 0


def _cmd_serve(args) -> int:
    import threading

    from .net import build_server

    if (args.model_dir is None) == (args.from_store is None):
        raise SystemExit("serve needs exactly one of MODEL_DIR or --from-store DIR")
    if args.from_store:
        from .pipeline import ArtifactStore

        model_dir = ArtifactStore(args.from_store).models_dir()
    else:
        model_dir = Path(args.model_dir)
    if not model_dir.is_dir():
        raise SystemExit(f"model directory {model_dir} does not exist")

    if args.binary_port is None:
        binary_port = -1  # HTTP port + 1
    elif args.binary_port < 0:
        binary_port = None  # disabled
    else:
        binary_port = args.binary_port
    if args.trace_out:
        # Before build_server: shard workers inherit the sink config through
        # their spawn arguments, so this must be installed first.
        from .obs import configure_tracing

        configure_tracing(args.trace_out, args.trace_sample, role="main")
    server = build_server(
        model_dir,
        host=args.host,
        port=args.port,
        binary_port=binary_port,
        num_shards=args.shards,
        backend=args.backend,
        queue_capacity=args.queue_capacity,
        overload_policy=args.policy,
        autoscale=args.autoscale,
        min_shards=args.min_shards,
        max_shards=args.max_shards,
        kernel_dtype=args.kernel_dtype,
        cache_max_bytes=args.cache_max_bytes,
        cache_quantize_bits=args.cache_quantize_bits,
        shm_dtype=args.shm_dtype,
    )
    with server:
        host, port = server.http_address
        models = server.app.catalog.available_models()
        print(f"serving {model_dir} on http://{host}:{port}", flush=True)
        if server.binary_address is not None:
            bhost, bport = server.binary_address
            print(f"  binary protocol   : {bhost}:{bport}", flush=True)
        print(f"  backend / shards  : {args.backend} x {args.shards}"
              + (f" (autoscale {args.min_shards}-{args.max_shards})" if args.autoscale else ""))
        if (
            args.kernel_dtype
            or args.cache_max_bytes
            or args.cache_quantize_bits
            or args.shm_dtype != "float64"
        ):
            print(
                f"  precision         : kernel={args.kernel_dtype or 'float64'} "
                f"shm={args.shm_dtype} "
                f"cache_max_bytes={args.cache_max_bytes or 'unbounded'}"
                + (
                    f" cache_quantize_bits={args.cache_quantize_bits}"
                    if args.cache_quantize_bits
                    else ""
                )
            )
        print(f"  models            : {', '.join(models) if models else '(none found)'}")
        if args.trace_out:
            print(f"  tracing           : {args.trace_out} (sample {args.trace_sample:g})")
        print(
            "  endpoints         : GET /healthz /stats /models /metrics | "
            "POST /estimate /update /models/reload",
            flush=True,
        )
        try:
            if args.max_seconds is not None:
                time.sleep(args.max_seconds)
            else:
                threading.Event().wait()
        except KeyboardInterrupt:
            print("interrupted; shutting down")
    return 0


def _cmd_saturate(args) -> int:
    import dataclasses

    from .net.saturate import (
        SaturationScenario,
        run_saturation_benchmark,
        transport_roundtrip_compare,
    )

    model_path, split = _resolve_bench_model(args)
    queries, thresholds = _bench_pool(split, "all")
    model_dir, model_name = model_path.parent, model_path.name

    if args.trace_out:
        from .obs import configure_tracing

        configure_tracing(args.trace_out, args.trace_sample, role="main")

    if args.smoke:
        loads = (200.0, 800.0)
        duration, batch, connections = 0.5, 16, 2
        max_shards = min(args.max_shards, 2)
        compare_batches, compare_repeats = (16, 64), 5
    else:
        try:
            loads = tuple(float(part) for part in args.loads.split(",") if part)
        except ValueError:
            raise SystemExit(f"--loads expects comma-separated numbers, got {args.loads!r}")
        duration, batch, connections = args.duration, args.batch, args.connections
        max_shards = args.max_shards
        compare_batches, compare_repeats = (32, 128, 256), 20

    scenarios = [
        SaturationScenario(name="fixed-1shard", backend="network", num_shards=1),
        SaturationScenario(name="fixed-2shard", backend="network", num_shards=2),
        SaturationScenario(
            name="autoscale",
            backend="network",
            num_shards=1,
            autoscale=True,
            min_shards=1,
            max_shards=max_shards,
        ),
    ]
    reports = []
    for scenario in scenarios:
        report = run_saturation_benchmark(
            scenario,
            model_name,
            queries,
            thresholds,
            model_dir=model_dir,
            offered_loads=loads,
            duration_seconds=duration,
            batch_size=batch,
            connections=connections,
            seed=args.seed,
        )
        print(report.text, flush=True)
        reports.append(report)

    payload = {
        "metadata": {
            "model": model_name,
            "offered_loads": list(loads),
            "duration_seconds": duration,
            "batch_size": batch,
            "connections": connections,
            "seed": args.seed,
            "smoke": bool(args.smoke),
        },
        "scenarios": [dataclasses.asdict(report) for report in reports],
    }
    estimator = None
    if not args.no_cache_density:
        from .net.saturate import cache_density_compare
        from .persistence import load_estimator

        estimator = load_estimator(model_path)
        density = cache_density_compare(
            estimator,
            model_name,
            queries,
            thresholds,
            max_bytes=args.cache_density_bytes,
            max_queries=400 if args.smoke else 1500,
        )
        payload["cache_density"] = density
        print(
            f"cache density (max_bytes={density['max_bytes']}, "
            f"{density['curve_resolution']}-pt curves, uint{density['quantize_bits']}):"
        )
        print(
            f"  full float64 cache: {density['full']['cached_curves']:>6} curves "
            f"({density['full']['curves_per_mb']:.0f} curves/MB)"
        )
        print(
            f"  quantized cache   : {density['quantized']['cached_curves']:>6} curves "
            f"({density['quantized']['curves_per_mb']:.0f} curves/MB) -> "
            f"{density['density_ratio']:.1f}x density"
        )
        print(
            f"  served deviation  : {density['max_rel_deviation_vs_full_cache']:.2e} "
            f"relative vs full-precision cache "
            f"(budget {density['error_budget']:.0e}, "
            f"{'OK' if density['within_budget'] else 'EXCEEDED'})"
        )
        if not density["within_budget"]:
            raise SystemExit(
                "cache-density parity failure: quantized cache deviates "
                f"{density['max_rel_deviation_vs_full_cache']:.3e} from the "
                f"full-precision cache (budget {density['error_budget']:.1e})"
            )
    if not args.no_transport_compare:
        from .persistence import load_estimator

        if estimator is None:
            estimator = load_estimator(model_path)
        compare = transport_roundtrip_compare(
            estimator,
            model_name,
            queries,
            thresholds,
            batch_sizes=compare_batches,
            repeats=compare_repeats,
        )
        payload["transport_roundtrip"] = compare
        print("transport round trip (median ms, shm network vs pickling process):")
        for key in compare["network"]["median_roundtrip_ms"]:
            net_ms = compare["network"]["median_roundtrip_ms"][key]
            proc_ms = compare["process"]["median_roundtrip_ms"][key]
            ratio = compare["speedup_process_over_network"][key]
            print(
                f"  batch {key:>4}: network {net_ms:7.3f} ms  process {proc_ms:7.3f} ms  "
                f"({ratio:.2f}x)"
            )
    if args.output:
        _write_stats_json(args.output, payload)
    if args.trace_out:
        from .obs import read_trace_file

        spans = read_trace_file(args.trace_out)
        traces = {span.get("trace_id") for span in spans}
        print(f"traces: {len(spans)} spans across {len(traces)} traces -> {args.trace_out}")
    return 0


def _cmd_bench_report(args) -> int:
    from .bench_report import bench_report

    print(bench_report(args.root, output=args.output))
    return 0


def _cmd_top(args) -> int:
    from .obs import run_top

    try:
        frames = run_top(args.url, interval=args.interval, iterations=args.iterations)
    except KeyboardInterrupt:
        return 0
    except OSError as error:
        raise SystemExit(f"error: cannot reach {args.url}: {error}")
    return 0 if frames else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("Tables:")
        for number, (description, _) in sorted(TABLE_RUNNERS.items()):
            print(f"  table {number:>2}  {description}")
        print("Figures:")
        for number, (description, _) in sorted(FIGURE_RUNNERS.items()):
            print(f"  figure {number}  {description}")
        print("Experiments (repro run):")
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  run {name:<18} {description}")
        return 0

    # The shared --num-workers flag also sets the process-wide engine default
    # so code paths that build oracles internally inherit it.  oracle-bench
    # is excluded: its parent carries a historical per-command default of 4
    # that is passed explicitly to the benchmark and must not silently
    # become the global engine default.
    if getattr(args, "num_workers", None) is not None and args.command != "oracle-bench":
        from .exact import set_default_num_workers

        set_default_num_workers(args.num_workers)

    if args.command == "table":
        number = TABLE_ALIASES.get(args.number, None)
        if number is None:
            number = int(args.number)
        _, runner = TABLE_RUNNERS[number]
        _run_experiment(runner, args)
        return 0

    if args.command == "figure":
        _, runner = FIGURE_RUNNERS[args.number]
        _run_experiment(runner, args)
        return 0

    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "artifacts":
        return _cmd_artifacts(args)
    if args.command == "models":
        return _cmd_models(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "infer-bench":
        return _cmd_infer_bench(args)
    if args.command == "oracle-bench":
        return _cmd_oracle_bench(args)
    if args.command == "cluster-bench":
        return _cmd_cluster_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "saturate":
        return _cmd_saturate(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "bench-report":
        return _cmd_bench_report(args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

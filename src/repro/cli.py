"""Command-line interface for the experiment reproductions.

Usage::

    python -m repro.cli list
    python -m repro.cli table 3                 # Table 3 (face-cos accuracy)
    python -m repro.cli table 6 --scale tiny    # ablation at the tiny scale
    python -m repro.cli figure 4 --output fig4.txt

Each command runs the corresponding function from :mod:`repro.experiments`
and prints (and optionally saves) the reproduced table / figure text.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from .experiments import (
    figure3_dln_vs_selnet,
    figure4_control_points,
    figure5_updates,
    get_scale,
    run_ablation_table,
    run_accuracy_table,
    run_control_point_sweep,
    run_monotonicity_table,
    run_partition_method_table,
    run_partition_size_sweep,
    run_timing_table,
)

#: table number -> (description, runner taking a scale)
TABLE_RUNNERS: Dict[int, tuple] = {
    1: ("Accuracy on fasttext-cos", lambda scale: run_accuracy_table("fasttext-cos", scale=scale)),
    2: ("Accuracy on fasttext-l2", lambda scale: run_accuracy_table("fasttext-l2", scale=scale)),
    3: ("Accuracy on face-cos", lambda scale: run_accuracy_table("face-cos", scale=scale)),
    4: ("Accuracy on YouTube-cos", lambda scale: run_accuracy_table("youtube-cos", scale=scale)),
    5: ("Empirical monotonicity", lambda scale: run_monotonicity_table(scale=scale)),
    6: ("Ablation study", lambda scale: run_ablation_table(scale=scale)),
    7: ("Estimation time", lambda scale: run_timing_table(scale=scale)),
    8: ("Control-point sweep", lambda scale: run_control_point_sweep(scale=scale)),
    9: ("Partition-size sweep", lambda scale: run_partition_size_sweep(scale=scale)),
    10: ("Partitioning methods", lambda scale: run_partition_method_table(scale=scale)),
    11: (
        "Beta-distributed thresholds",
        lambda scale: run_accuracy_table("fasttext-cos", scale=scale, threshold_distribution="beta"),
    ),
}

FIGURE_RUNNERS: Dict[int, tuple] = {
    3: ("DLN vs SelNet on exp(t)/10", lambda scale: figure3_dln_vs_selnet()),
    4: ("Learned control points", lambda scale: figure4_control_points(scale=scale)),
    5: ("Accuracy under updates", lambda scale: figure5_updates(scale=scale)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Reproduce the paper's tables and figures."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    table_parser = subparsers.add_parser("table", help="reproduce one table (1-11)")
    table_parser.add_argument("number", type=int, choices=sorted(TABLE_RUNNERS))
    table_parser.add_argument("--scale", default="small", help="tiny, small or medium")
    table_parser.add_argument("--output", default=None, help="also write the table to this file")

    figure_parser = subparsers.add_parser("figure", help="reproduce one figure (3-5)")
    figure_parser.add_argument("number", type=int, choices=sorted(FIGURE_RUNNERS))
    figure_parser.add_argument("--scale", default="small", help="tiny, small or medium")
    figure_parser.add_argument("--output", default=None, help="also write the figure text to this file")
    return parser


def _run(runner: Callable, scale_name: str, output: Optional[str]) -> str:
    scale = get_scale(scale_name)
    result = runner(scale)
    text = result.text
    print(text)
    if output:
        with open(output, "w") as handle:
            handle.write(text + "\n")
    return text


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        print("Tables:")
        for number, (description, _) in sorted(TABLE_RUNNERS.items()):
            print(f"  table {number:>2}  {description}")
        print("Figures:")
        for number, (description, _) in sorted(FIGURE_RUNNERS.items()):
            print(f"  figure {number}  {description}")
        return 0

    if args.command == "table":
        _, runner = TABLE_RUNNERS[args.number]
        _run(runner, args.scale, args.output)
        return 0

    if args.command == "figure":
        _, runner = FIGURE_RUNNERS[args.number]
        _run(runner, args.scale, args.output)
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Neural-network layers: linear layers, activations and containers."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..autodiff import Tensor, dropout
from . import init as initializers
from .module import Module


class Linear(Module):
    """Fully connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features:
        Input dimensionality.
    out_features:
        Output dimensionality.
    bias:
        Whether to add a learnable bias.
    initializer:
        One of ``"he"`` (default, suited to ReLU stacks), ``"xavier"`` or
        ``"small"``.
    rng:
        Random generator used for weight initialisation; a fresh default
        generator is used when omitted.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        initializer: str = "he",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        init_fn = initializers.get_initializer(initializer)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init_fn((in_features, out_features), rng), requires_grad=True, name="weight")
        if bias:
            self.bias: Optional[Tensor] = Tensor(
                initializers.zeros((out_features,)), requires_grad=True, name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Softplus(Module):
    """Softplus activation ``log(1 + exp(x))`` — strictly positive output."""

    def forward(self, x: Tensor) -> Tensor:
        return x.softplus()


class ELUPlusOne(Module):
    """``ELU(x) + 1``: a smooth, strictly positive activation.

    UMNN uses a strictly positive derivative network; ``ELU + 1`` is the
    activation recommended by the original paper for that purpose.
    """

    def forward(self, x: Tensor) -> Tensor:
        data = x.data
        positive = data > 0

        exp_part = (x.clip(maximum=0.0)).exp()  # exp(min(x, 0)) is stable
        from ..autodiff import where as ad_where

        return ad_where(positive, x + 1.0, exp_part)


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.rate, self.training, self._rng)


class Sequential(Module):
    """Container applying modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: List[Module] = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, module: Module) -> "Sequential":
        self.layers.append(module)
        return self

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


def feed_forward(
    input_dim: int,
    hidden_sizes: Sequence[int],
    output_dim: int,
    activation: str = "relu",
    output_activation: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a plain feed-forward network (the paper's FFN building block).

    Parameters
    ----------
    input_dim, hidden_sizes, output_dim:
        Layer sizes; ``hidden_sizes`` may be empty for a single linear map.
    activation:
        Hidden activation: ``"relu"``, ``"tanh"`` or ``"sigmoid"``.
    output_activation:
        Optional activation applied to the output layer.
    rng:
        Random generator shared by all layers for reproducible initialisation.
    """
    activations = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid, "softplus": Softplus}
    if activation not in activations:
        raise KeyError(f"unknown activation {activation!r}")
    if rng is None:
        rng = np.random.default_rng()

    layers: List[Module] = []
    previous = input_dim
    for size in hidden_sizes:
        layers.append(Linear(previous, size, rng=rng))
        layers.append(activations[activation]())
        previous = size
    layers.append(Linear(previous, output_dim, rng=rng))
    if output_activation is not None:
        if output_activation not in activations:
            raise KeyError(f"unknown activation {output_activation!r}")
        layers.append(activations[output_activation]())
    return Sequential(*layers)

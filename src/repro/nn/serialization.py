"""Saving and loading module parameters.

Checkpoints are plain ``.npz`` archives holding one array per parameter,
keyed by the dotted names produced by :meth:`repro.nn.Module.named_parameters`.
They are portable across processes as long as the module is re-built with the
same architecture (the same configuration / random-shape choices).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]


def save_module(module: Module, path: PathLike) -> None:
    """Write every parameter of ``module`` to an ``.npz`` checkpoint."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(path, **state)


def load_module(module: Module, path: PathLike) -> Module:
    """Load a checkpoint written by :func:`save_module` into ``module``.

    The module must already have the same architecture (same parameter names
    and shapes); mismatches raise ``KeyError`` / ``ValueError``.
    """
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module

"""Saving and loading module parameters.

Checkpoints are plain ``.npz`` archives holding one array per parameter,
keyed by the dotted names produced by :meth:`repro.nn.Module.named_parameters`.
They are portable across processes as long as the module is re-built with the
same architecture (the same configuration / random-shape choices).
"""

from __future__ import annotations

import ast
import mmap as _mmap
import os
import struct
import zipfile
from typing import Dict, Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]

_NPY_MAGIC = b"\x93NUMPY"


def save_state(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Write an arbitrary name -> array state dictionary to ``.npz``.

    Used by :func:`save_module` and by the estimator persistence layer
    (:mod:`repro.persistence`), which stores the parameters of every network
    owned by an estimator in one archive.
    """
    if not state:
        raise ValueError("state dictionary is empty, nothing to save")
    np.savez(path, **state)


def load_state(path: PathLike, mmap: bool = False) -> Dict[str, np.ndarray]:
    """Read a state dictionary written by :func:`save_state`.

    With ``mmap=True`` the arrays are read-only views over a memory-mapped
    archive instead of eager heap copies: weight bytes are paged in lazily
    on first touch and shared through the OS page cache across every
    process loading the same artifact (shard workers warming one model
    directory).  ``np.load`` silently ignores ``mmap_mode`` for ``.npz``,
    so the member arrays are located by their ZIP offsets directly —
    possible because :func:`save_state` stores members uncompressed.
    Archives this loader cannot map (compressed members, pickled objects)
    fall back to the eager path.
    """
    if mmap:
        try:
            return _mmap_state(path)
        except (ValueError, OSError):  # unmappable archive: eager fallback
            pass
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def _mmap_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Read-only array views over the raw ``.npy`` members of an ``.npz``."""
    with open(path, "rb") as handle:
        mapped = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
    buffer = memoryview(mapped)
    state: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"member {info.filename!r} is compressed")
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            # The central directory records where each local file header
            # starts; the data follows the 30-byte header plus the local
            # copies of the file name and extra field.
            fn_len, extra_len = struct.unpack_from(
                "<HH", buffer, info.header_offset + 26
            )
            start = info.header_offset + 30 + fn_len + extra_len
            state[name] = _npy_view(buffer[start : start + info.file_size])
    return state


def _npy_view(member: memoryview) -> np.ndarray:
    """A read-only array over one raw ``.npy`` member (no data copy)."""
    if bytes(member[:6]) != _NPY_MAGIC:
        raise ValueError("not an .npy member")
    major = member[6]
    if major == 1:
        (header_len,) = struct.unpack_from("<H", member, 8)
        data_start = 10 + header_len
        header = bytes(member[10:data_start])
    else:
        (header_len,) = struct.unpack_from("<I", member, 8)
        data_start = 12 + header_len
        header = bytes(member[12:data_start])
    spec = ast.literal_eval(header.decode("latin1"))
    dtype = np.dtype(spec["descr"])
    if dtype.hasobject:
        raise ValueError("object arrays cannot be memory-mapped")
    shape = tuple(spec["shape"])
    count = int(np.prod(shape)) if shape else 1
    flat = np.frombuffer(member, dtype=dtype, count=count, offset=data_start)
    if spec.get("fortran_order"):
        return flat.reshape(shape[::-1]).T
    return flat.reshape(shape)


def save_module(module: Module, path: PathLike) -> None:
    """Write every parameter of ``module`` to an ``.npz`` checkpoint."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    save_state(path, state)


def load_module(module: Module, path: PathLike) -> Module:
    """Load a checkpoint written by :func:`save_module` into ``module``.

    The module must already have the same architecture (same parameter names
    and shapes); mismatches raise ``KeyError`` / ``ValueError``.
    """
    module.load_state_dict(load_state(path))
    return module

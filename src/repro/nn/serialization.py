"""Saving and loading module parameters.

Checkpoints are plain ``.npz`` archives holding one array per parameter,
keyed by the dotted names produced by :meth:`repro.nn.Module.named_parameters`.
They are portable across processes as long as the module is re-built with the
same architecture (the same configuration / random-shape choices).
"""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]


def save_state(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Write an arbitrary name -> array state dictionary to ``.npz``.

    Used by :func:`save_module` and by the estimator persistence layer
    (:mod:`repro.persistence`), which stores the parameters of every network
    owned by an estimator in one archive.
    """
    if not state:
        raise ValueError("state dictionary is empty, nothing to save")
    np.savez(path, **state)


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dictionary written by :func:`save_state`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: PathLike) -> None:
    """Write every parameter of ``module`` to an ``.npz`` checkpoint."""
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    save_state(path, state)


def load_module(module: Module, path: PathLike) -> Module:
    """Load a checkpoint written by :func:`save_module` into ``module``.

    The module must already have the same architecture (same parameter names
    and shapes); mismatches raise ``KeyError`` / ``ValueError``.
    """
    module.load_state_dict(load_state(path))
    return module

"""Mini-batch iteration utilities."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class DataLoader:
    """Iterate over aligned numpy arrays in shuffled mini-batches.

    Parameters
    ----------
    arrays:
        One or more arrays with the same first dimension.
    batch_size:
        Mini-batch size; the final batch may be smaller.
    shuffle:
        Whether to reshuffle the row order at the start of every epoch.
    rng:
        Random generator for shuffling (reproducibility).
    """

    def __init__(
        self,
        *arrays: np.ndarray,
        batch_size: int = 128,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not arrays:
            raise ValueError("DataLoader needs at least one array")
        length = len(arrays[0])
        for array in arrays:
            if len(array) != length:
                raise ValueError("all arrays must have the same length")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.arrays = tuple(np.asarray(a) for a in arrays)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = rng if rng is not None else np.random.default_rng()
        self._length = length

    def __len__(self) -> int:
        return (self._length + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        order = np.arange(self._length)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, self._length, self.batch_size):
            index = order[start : start + self.batch_size]
            yield tuple(array[index] for array in self.arrays)


def train_validation_split(
    arrays: Sequence[np.ndarray],
    validation_fraction: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...]]:
    """Randomly split aligned arrays into train and validation subsets."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must lie in (0, 1)")
    if rng is None:
        rng = np.random.default_rng()
    length = len(arrays[0])
    order = rng.permutation(length)
    cut = int(round(length * (1.0 - validation_fraction)))
    train_index, valid_index = order[:cut], order[cut:]
    train = tuple(np.asarray(a)[train_index] for a in arrays)
    valid = tuple(np.asarray(a)[valid_index] for a in arrays)
    return train, valid

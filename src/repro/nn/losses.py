"""Loss functions.

The central loss of the paper (Section 5.1) is the Huber loss applied to the
logarithm of the true and estimated selectivities — robust to the
orders-of-magnitude variance in selectivity across queries.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..autodiff import Tensor, huber

ArrayOrTensor = Union[Tensor, np.ndarray]

#: Standard robust-regression delta recommended by Huber / used in the paper.
DEFAULT_HUBER_DELTA = 1.345

#: Small padding constant added before taking logarithms (paper, Section 5.1).
LOG_EPSILON = 1.0


def _ensure_tensor(value: ArrayOrTensor) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def mse_loss(prediction: ArrayOrTensor, target: ArrayOrTensor) -> Tensor:
    """Mean squared error."""
    prediction = _ensure_tensor(prediction)
    target = _ensure_tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()


def mae_loss(prediction: ArrayOrTensor, target: ArrayOrTensor) -> Tensor:
    """Mean absolute error."""
    prediction = _ensure_tensor(prediction)
    target = _ensure_tensor(target)
    return (prediction - target.detach()).abs().mean()


def huber_loss(prediction: ArrayOrTensor, target: ArrayOrTensor, delta: float = DEFAULT_HUBER_DELTA) -> Tensor:
    """Plain Huber loss between prediction and target."""
    prediction = _ensure_tensor(prediction)
    target = _ensure_tensor(target)
    return huber(prediction - target.detach(), delta=delta).mean()


def log_huber_loss(
    prediction: ArrayOrTensor,
    target: ArrayOrTensor,
    delta: float = DEFAULT_HUBER_DELTA,
    epsilon: float = LOG_EPSILON,
) -> Tensor:
    """Huber loss on the log-transformed selectivities (Equation 2).

    ``r = log(y + eps) - log(y_hat + eps)`` with the Huber penalty applied to
    ``r``.  Predictions are clipped below at 0 before the logarithm so that a
    slightly negative network output cannot produce NaNs.
    """
    prediction = _ensure_tensor(prediction)
    target = _ensure_tensor(target)
    safe_prediction = prediction.clip(minimum=0.0)
    log_prediction = (safe_prediction + epsilon).log()
    log_target = Tensor(np.log(np.clip(target.data, 0.0, None) + epsilon))
    return huber(log_target - log_prediction, delta=delta).mean()


def q_error(prediction: np.ndarray, target: np.ndarray, epsilon: float = 1.0) -> np.ndarray:
    """Per-query q-error, a common cardinality-estimation quality measure.

    Not used in the paper's tables but handy for diagnostics; defined as
    ``max((y + eps) / (yhat + eps), (yhat + eps) / (y + eps))``.
    """
    prediction = np.asarray(prediction, dtype=np.float64) + epsilon
    target = np.asarray(target, dtype=np.float64) + epsilon
    return np.maximum(prediction / target, target / prediction)

"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight matrix."""
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks."""
    fan_in = shape[0]
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def small_normal(shape, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Small Gaussian initialisation."""
    return rng.normal(0.0, std, size=shape)


_INITIALIZERS = {
    "xavier": xavier_uniform,
    "he": he_normal,
    "small": small_normal,
}


def get_initializer(name: str):
    """Look up an initialiser by name (``xavier``, ``he`` or ``small``)."""
    try:
        return _INITIALIZERS[name]
    except KeyError as error:
        raise KeyError(f"unknown initializer {name!r}; choose from {sorted(_INITIALIZERS)}") from error

"""Neural-network substrate: modules, layers, losses, optimizers, training."""

from .autoencoder import Autoencoder
from .data import DataLoader, train_validation_split
from .layers import (
    Dropout,
    ELUPlusOne,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    feed_forward,
)
from .losses import (
    DEFAULT_HUBER_DELTA,
    LOG_EPSILON,
    huber_loss,
    log_huber_loss,
    mae_loss,
    mse_loss,
    q_error,
)
from .module import Module
from .optim import SGD, Adam, Optimizer
from .serialization import load_module, load_state, save_module, save_state
from .train import TrainingConfig, TrainingHistory, fit_regressor

__all__ = [
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "ELUPlusOne",
    "Dropout",
    "Sequential",
    "feed_forward",
    "Autoencoder",
    "DataLoader",
    "train_validation_split",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "log_huber_loss",
    "q_error",
    "DEFAULT_HUBER_DELTA",
    "LOG_EPSILON",
    "Optimizer",
    "SGD",
    "Adam",
    "TrainingConfig",
    "TrainingHistory",
    "fit_regressor",
    "save_module",
    "load_module",
    "save_state",
    "load_state",
]

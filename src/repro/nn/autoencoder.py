"""Autoencoder used to learn the latent representation ``z_x`` of a query.

SelNet augments its input with an autoencoder embedding of the query object
learned over the whole database (Section 5.2, "Network Architecture"): the AE
is pre-trained on all database objects and then fine-tuned jointly with the
estimator on the training queries via the ``lambda * J_AE`` term in the loss.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autodiff import Tensor
from .data import DataLoader
from .layers import Sequential, feed_forward
from .losses import mse_loss
from .module import Module
from .optim import Adam


class Autoencoder(Module):
    """Symmetric feed-forward autoencoder.

    Parameters
    ----------
    input_dim:
        Dimensionality of the data vectors.
    latent_dim:
        Size of the bottleneck representation ``z_x``.
    hidden_sizes:
        Hidden layer sizes of the encoder; the decoder mirrors them.
    rng:
        Random generator for weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        latent_dim: int,
        hidden_sizes: Sequence[int] = (64,),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.encoder: Sequential = feed_forward(input_dim, list(hidden_sizes), latent_dim, rng=rng)
        self.decoder: Sequential = feed_forward(latent_dim, list(reversed(hidden_sizes)), input_dim, rng=rng)

    def encode(self, x: Tensor) -> Tensor:
        """Map inputs to their latent representation ``z_x``."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.encoder(x)

    def decode(self, z: Tensor) -> Tensor:
        """Reconstruct inputs from latent codes."""
        return self.decoder(z)

    def forward(self, x: Tensor) -> Tensor:
        return self.decode(self.encode(x))

    def reconstruction_loss(self, x: Tensor) -> Tensor:
        """Mean squared reconstruction error ``J_AE`` for a batch."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return mse_loss(self.forward(x), x.detach())

    def pretrain(
        self,
        data: np.ndarray,
        epochs: int = 20,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
        verbose: bool = False,
    ) -> list:
        """Pre-train on the full dataset (paper: AE is trained on all of D).

        Returns the list of per-epoch mean reconstruction losses.
        """
        data = np.asarray(data, dtype=np.float64)
        optimizer = Adam(self.parameters(), learning_rate=learning_rate)
        loader = DataLoader(data, batch_size=batch_size, shuffle=True, rng=rng)
        history = []
        for epoch in range(epochs):
            losses = []
            for (batch,) in loader:
                optimizer.zero_grad()
                loss = self.reconstruction_loss(Tensor(batch))
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            epoch_loss = float(np.mean(losses)) if losses else 0.0
            history.append(epoch_loss)
            if verbose:
                print(f"[autoencoder] epoch {epoch + 1}/{epochs} loss={epoch_loss:.6f}")
        return history

"""Gradient-descent optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..autodiff import Tensor


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Clear the gradient of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.learning_rate * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction and gradient clipping.

    Parameters
    ----------
    parameters:
        Trainable tensors.
    learning_rate, beta1, beta2, epsilon, weight_decay:
        Standard Adam hyper-parameters.
    max_grad_norm:
        Optional global gradient-norm clip, useful for stabilising the
        Huber-log training of the selectivity models.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def _clip_gradients(self) -> None:
        if self.max_grad_norm is None:
            return
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad ** 2))
        norm = np.sqrt(total)
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale

    def step(self) -> None:
        self._clip_gradients()
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._first_moment, self._second_moment):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

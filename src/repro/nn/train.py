"""Generic supervised-training helpers shared by the deep baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..autodiff import Tensor
from .data import DataLoader
from .module import Module
from .optim import Adam


@dataclass
class TrainingConfig:
    """Hyper-parameters for a plain regression training loop."""

    epochs: int = 50
    batch_size: int = 128
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    max_grad_norm: Optional[float] = 5.0
    early_stopping_patience: Optional[int] = None
    verbose: bool = False


@dataclass
class TrainingHistory:
    """Per-epoch losses recorded by :func:`fit_regressor`."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)

    @property
    def best_validation_loss(self) -> float:
        return min(self.validation_loss) if self.validation_loss else float("nan")


def fit_regressor(
    model: Module,
    loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    features: np.ndarray,
    targets: np.ndarray,
    config: TrainingConfig,
    validation: Optional[tuple] = None,
    rng: Optional[np.random.Generator] = None,
    forward: Optional[Callable[[Module, np.ndarray], Tensor]] = None,
) -> TrainingHistory:
    """Train ``model`` to map ``features`` to ``targets`` with mini-batch Adam.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module` producing a ``(batch, 1)`` or
        ``(batch,)`` output.
    loss_fn:
        Callable of ``(prediction_tensor, target_array)`` returning a scalar
        loss tensor.
    features, targets:
        Training data.
    config:
        Loop hyper-parameters.
    validation:
        Optional ``(features, targets)`` pair used for early stopping and the
        validation-loss history.
    rng:
        Random generator controlling shuffling.
    forward:
        Optional custom forward function ``(model, batch) -> Tensor``;
        defaults to ``model(Tensor(batch))``.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).reshape(len(features))
    optimizer = Adam(
        model.parameters(),
        learning_rate=config.learning_rate,
        weight_decay=config.weight_decay,
        max_grad_norm=config.max_grad_norm,
    )
    loader = DataLoader(features, targets, batch_size=config.batch_size, shuffle=True, rng=rng)
    history = TrainingHistory()

    if forward is None:
        def forward(m: Module, batch: np.ndarray) -> Tensor:  # type: ignore[misc]
            return m(Tensor(batch))

    best_state = None
    best_validation = float("inf")
    epochs_without_improvement = 0

    for epoch in range(config.epochs):
        model.train()
        epoch_losses = []
        for batch_features, batch_targets in loader:
            optimizer.zero_grad()
            prediction = forward(model, batch_features)
            loss = loss_fn(prediction, batch_targets)
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        train_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
        history.train_loss.append(train_loss)

        if validation is not None:
            model.eval()
            valid_features, valid_targets = validation
            prediction = forward(model, np.asarray(valid_features, dtype=np.float64))
            valid_loss = loss_fn(prediction, np.asarray(valid_targets, dtype=np.float64)).item()
            history.validation_loss.append(valid_loss)
            if valid_loss < best_validation - 1e-9:
                best_validation = valid_loss
                best_state = model.state_dict()
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
            if (
                config.early_stopping_patience is not None
                and epochs_without_improvement >= config.early_stopping_patience
            ):
                break
        if config.verbose:
            message = f"[train] epoch {epoch + 1}/{config.epochs} train={train_loss:.5f}"
            if history.validation_loss:
                message += f" valid={history.validation_loss[-1]:.5f}"
            print(message)

    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return history

"""Base class for neural-network modules.

A :class:`Module` owns named :class:`~repro.autodiff.Tensor` parameters and
named sub-modules, and exposes the parameter-collection / serialisation
plumbing that optimizers and checkpoints rely on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autodiff import Tensor


class Module:
    """Base class for all layers and models.

    Subclasses register parameters simply by assigning :class:`Tensor`
    instances (with ``requires_grad=True``) or other :class:`Module`
    instances as attributes; discovery walks ``__dict__``.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Parameter / module discovery
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(name, parameter)`` pairs for this module and submodules."""
        for name, value in vars(self).items():
            if name == "training":
                continue
            full_name = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full_name}.{index}", item

    def parameters(self) -> List[Tensor]:
        """Return all trainable parameters as a list."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------ #
    # Training / evaluation mode
    # ------------------------------------------------------------------ #
    def train(self) -> "Module":
        """Put the module (and submodules) in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and submodules) in evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------ #
    # Gradient helpers
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

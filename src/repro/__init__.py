"""SelNet reproduction: consistent and flexible selectivity estimation.

This package reproduces "Consistent and Flexible Selectivity Estimation for
High-dimensional Data" (Wang et al., SIGMOD 2021): the SelNet estimator, all
of its substrates (numpy autodiff, neural-network layers, cover-tree
partitioning, synthetic workloads) and the nine comparison baselines — behind
a unified registry / persistence / serving API.

Quick start::

    from repro import available_estimators, create_estimator
    from repro import make_dataset, build_workload_split

    dataset = make_dataset("face_like", num_vectors=2000)
    split = build_workload_split(dataset, "cosine", num_queries=60)

    print(available_estimators())       # ('selnet', ..., 'kde', 'lsh', ...)
    estimator = create_estimator("selnet", epochs=30).fit(split)
    estimate = estimator.estimate(split.test.queries, split.test.thresholds)

    estimator.save("models/selnet-faces")            # persist the fitted model
    clone = load_estimator("models/selnet-faces")    # bit-exact round-trip

Serving (micro-batching + LRU selectivity-curve cache)::

    from repro.serving import EstimationService

    service = EstimationService("models/")
    service.estimate("selnet-faces", queries, thresholds)
    print(service.stats()["cache"]["hit_rate"])

Sharded serving (consistent-hash routing, scatter–gather, admission
control — see :mod:`repro.cluster`) with scenario-driven traffic
(:mod:`repro.workloads`)::

    from repro.cluster import ClusterConfig, EstimationCluster

    with EstimationCluster(ClusterConfig(num_shards=4, model_dir="models/")) as cluster:
        cluster.estimate("selnet-faces", queries, thresholds)
        print(cluster.stats()["per_shard"])
"""

from .core import (
    IncrementalConfig,
    IncrementalSelNet,
    IncrementalSelNetEstimator,
    PartitionedSelNet,
    PiecewiseLinearCurve,
    SelNetConfig,
    SelNetEstimator,
    SelNetModel,
)
from .data import (
    Dataset,
    SelectivityOracle,
    Workload,
    WorkloadSplit,
    build_workload_split,
    generate_workload,
    make_dataset,
)
from .distances import get_distance
from .estimator import SelectivityEstimator, UpdateNotSupportedError
from .exact import BlockedOracle, DeltaOracle, ReferenceOracle
from .persistence import load_estimator, read_metadata, save_estimator
from .pipeline import (
    ArtifactStore,
    DatasetSpec,
    EvalSpec,
    ExperimentSpec,
    PipelineRunner,
    TrainSpec,
    WorkloadSpec,
    get_active_store,
    set_active_store,
    use_store,
)
from .registry import (
    EstimatorSpec,
    available_estimators,
    create_estimator,
    get_estimator_spec,
    iter_estimator_specs,
    register_estimator,
)

__version__ = "1.2.0"

__all__ = [
    "SelectivityEstimator",
    "UpdateNotSupportedError",
    "EstimatorSpec",
    "register_estimator",
    "create_estimator",
    "available_estimators",
    "iter_estimator_specs",
    "get_estimator_spec",
    "save_estimator",
    "load_estimator",
    "read_metadata",
    "SelNetConfig",
    "IncrementalConfig",
    "SelNetEstimator",
    "SelNetModel",
    "PartitionedSelNet",
    "IncrementalSelNet",
    "IncrementalSelNetEstimator",
    "PiecewiseLinearCurve",
    "Dataset",
    "make_dataset",
    "Workload",
    "WorkloadSplit",
    "generate_workload",
    "build_workload_split",
    "SelectivityOracle",
    "BlockedOracle",
    "DeltaOracle",
    "ReferenceOracle",
    "get_distance",
    "ArtifactStore",
    "DatasetSpec",
    "WorkloadSpec",
    "TrainSpec",
    "EvalSpec",
    "ExperimentSpec",
    "PipelineRunner",
    "use_store",
    "set_active_store",
    "get_active_store",
    "__version__",
]

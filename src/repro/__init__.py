"""SelNet reproduction: consistent and flexible selectivity estimation.

This package reproduces "Consistent and Flexible Selectivity Estimation for
High-dimensional Data" (Wang et al., SIGMOD 2021): the SelNet estimator, all
of its substrates (numpy autodiff, neural-network layers, cover-tree
partitioning, synthetic workloads) and the nine comparison baselines.

Quick start::

    from repro import make_dataset, build_workload_split, SelNetEstimator, SelNetConfig

    dataset = make_dataset("face_like", num_vectors=2000)
    split = build_workload_split(dataset, "cosine", num_queries=60)
    estimator = SelNetEstimator(SelNetConfig(epochs=30)).fit(split)
    estimate = estimator.estimate(split.test.queries, split.test.thresholds)
"""

from .core import (
    IncrementalConfig,
    IncrementalSelNet,
    PartitionedSelNet,
    PiecewiseLinearCurve,
    SelNetConfig,
    SelNetEstimator,
    SelNetModel,
)
from .data import (
    Dataset,
    SelectivityOracle,
    Workload,
    WorkloadSplit,
    build_workload_split,
    generate_workload,
    make_dataset,
)
from .distances import get_distance
from .estimator import SelectivityEstimator

__version__ = "1.0.0"

__all__ = [
    "SelectivityEstimator",
    "SelNetConfig",
    "IncrementalConfig",
    "SelNetEstimator",
    "SelNetModel",
    "PartitionedSelNet",
    "IncrementalSelNet",
    "PiecewiseLinearCurve",
    "Dataset",
    "make_dataset",
    "Workload",
    "WorkloadSplit",
    "generate_workload",
    "build_workload_split",
    "SelectivityOracle",
    "get_distance",
    "__version__",
]

"""SelNet core: the paper's selectivity estimator."""

from .config import IncrementalConfig, SelNetConfig
from .control_points import ControlPointHead, PGenerator, TauGenerator
from .incremental import IncrementalSelNet, IncrementalSelNetEstimator, UpdateStepReport
from .partitioned import PartitionedSelNet
from .piecewise import (
    PiecewiseLinearCurve,
    evaluate_piecewise_linear,
    fit_piecewise_linear_curve,
    is_monotone_curve,
    piecewise_linear,
)
from .selnet import SelNetModel
from .trainer import (
    SelNetEstimator,
    SelNetTrainingHistory,
    train_partitioned_selnet,
    train_selnet_model,
)

__all__ = [
    "SelNetConfig",
    "IncrementalConfig",
    "TauGenerator",
    "PGenerator",
    "ControlPointHead",
    "PiecewiseLinearCurve",
    "evaluate_piecewise_linear",
    "fit_piecewise_linear_curve",
    "is_monotone_curve",
    "piecewise_linear",
    "SelNetModel",
    "PartitionedSelNet",
    "SelNetEstimator",
    "SelNetTrainingHistory",
    "train_selnet_model",
    "train_partitioned_selnet",
    "IncrementalSelNet",
    "IncrementalSelNetEstimator",
    "UpdateStepReport",
]

"""Continuous piece-wise linear functions (Equation 1 of the paper).

Two views of the same object live here:

* :func:`evaluate_piecewise_linear` / :class:`PiecewiseLinearCurve` — a plain
  numpy implementation used for analysis, plotting (Figures 3 and 4) and as
  an independent reference the differentiable op is tested against.
* the differentiable evaluation used inside SelNet lives in
  :func:`repro.autodiff.piecewise_linear`; this module re-exports it so the
  core package is self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..autodiff import piecewise_linear  # re-exported for the model code

__all__ = [
    "piecewise_linear",
    "evaluate_piecewise_linear",
    "PiecewiseLinearCurve",
    "is_monotone_curve",
]


def evaluate_piecewise_linear(
    tau: np.ndarray, p: np.ndarray, thresholds: np.ndarray
) -> np.ndarray:
    """Reference (non-differentiable) evaluation of Equation 1.

    Parameters
    ----------
    tau:
        Control-point abscissae, shape ``(L + 2,)``, non-decreasing.
    p:
        Control-point ordinates, shape ``(L + 2,)``.
    thresholds:
        Points at which to evaluate, any shape.

    Thresholds outside ``[tau[0], tau[-1]]`` are clamped to the end values,
    matching the differentiable op.
    """
    tau = np.asarray(tau, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if tau.shape != p.shape or tau.ndim != 1:
        raise ValueError("tau and p must be 1-D arrays of the same length")
    return np.interp(thresholds, tau, p)


def is_monotone_curve(tau: np.ndarray, p: np.ndarray) -> bool:
    """Check Lemma 1's premise: p non-decreasing (and tau non-decreasing)."""
    tau = np.asarray(tau, dtype=np.float64)
    p = np.asarray(p, dtype=np.float64)
    return bool(np.all(np.diff(tau) >= -1e-12) and np.all(np.diff(p) >= -1e-12))


@dataclass
class PiecewiseLinearCurve:
    """A single continuous piece-wise linear curve ``t -> y``.

    Used by the Figure 3 / Figure 4 reproductions to inspect the control
    points a model has learned for a specific query.
    """

    tau: np.ndarray
    p: np.ndarray

    def __post_init__(self) -> None:
        self.tau = np.asarray(self.tau, dtype=np.float64)
        self.p = np.asarray(self.p, dtype=np.float64)
        if self.tau.shape != self.p.shape or self.tau.ndim != 1:
            raise ValueError("tau and p must be 1-D arrays of the same length")

    @property
    def num_control_points(self) -> int:
        return int(len(self.tau))

    @property
    def is_monotone(self) -> bool:
        return is_monotone_curve(self.tau, self.p)

    def __call__(self, thresholds) -> np.ndarray:
        return evaluate_piecewise_linear(self.tau, self.p, np.asarray(thresholds, dtype=np.float64))

    def control_points(self) -> list:
        """The ``(tau_i, p_i)`` pairs as a list of tuples."""
        return list(zip(self.tau.tolist(), self.p.tolist()))

    def segment_slopes(self) -> np.ndarray:
        """Slope of each linear segment (useful to locate 'interesting areas')."""
        widths = np.maximum(np.diff(self.tau), 1e-12)
        return np.diff(self.p) / widths


def fit_piecewise_linear_curve(
    x: np.ndarray,
    y: np.ndarray,
    num_control_points: int,
    adaptive: bool = True,
) -> PiecewiseLinearCurve:
    """Directly fit a monotone piece-wise linear curve to 1-D data.

    This is the classical (non-neural) curve-fitting view discussed in
    Section 6.1: with enough control points a piece-wise linear function can
    fit any one-dimensional monotone curve.  Used by the Figure 3 experiment
    as an oracle upper bound and by tests.

    Parameters
    ----------
    x, y:
        Training points of the 1-D curve (y assumed non-decreasing in x).
    num_control_points:
        Total number of control points (including both ends).
    adaptive:
        When True, knots are placed at quantiles of the *output* values so
        that regions where y changes quickly get more knots (mimicking
        SelNet's adaptive placement); when False they are equally spaced in x
        (mimicking the DLN calibrator).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    order = np.argsort(x)
    x, y = x[order], y[order]
    if num_control_points < 2:
        raise ValueError("need at least 2 control points")
    if adaptive:
        # Greedy knot insertion: repeatedly add a knot at the training point
        # with the largest absolute error of the current fit.  This places
        # knots densely where the curve bends fastest — the behaviour SelNet
        # learns end-to-end.
        knots = [float(x[0]), float(x[-1])]
        while len(knots) < num_control_points:
            tau = np.asarray(sorted(knots))
            p = np.interp(tau, x, y)
            errors = np.abs(np.interp(x, tau, p) - y)
            # Do not reuse existing knots.
            errors[np.isin(x, tau)] = -1.0
            candidate = float(x[int(np.argmax(errors))])
            if candidate in knots:
                break
            knots.append(candidate)
        tau = np.asarray(sorted(knots))
        if len(tau) < num_control_points:
            # Degenerate data (few distinct x); pad with equally spaced knots.
            extra = np.linspace(x[0], x[-1], num_control_points - len(tau) + 2)[1:-1]
            tau = np.unique(np.concatenate([tau, extra]))[:num_control_points]
    else:
        tau = np.linspace(x[0], x[-1], num_control_points)
    p = np.interp(tau, x, y)
    p = np.maximum.accumulate(p)  # enforce monotone ordinates
    return PiecewiseLinearCurve(tau=tau, p=p)

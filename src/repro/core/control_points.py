"""Query-dependent control-point generators (Section 5.2 of the paper).

Two sub-networks turn the AE-augmented query representation ``[x; z_x]`` into
the parameters of the piece-wise linear estimator:

* :class:`TauGenerator` produces the abscissae ``τ_0 = 0 < τ_1 < … < τ_{L+1}
  = t_max``: a feed-forward network outputs ``L + 1`` raw values which pass
  through the ``Norm_l2`` squared-normalisation (non-negative, summing to 1),
  are scaled by ``t_max`` and prefix-summed.
* :class:`PGenerator` (the paper's model ``M``) produces the ordinates
  ``p_0 ≤ p_1 ≤ … ≤ p_{L+1}``: an encoder FFN emits ``L + 2`` embeddings
  ``h_i``, a per-point linear decoder with ReLU yields non-negative
  increments ``k_i``, and a prefix sum makes the ordinates non-decreasing.

Because the increments are non-negative by construction, monotonicity of the
final estimator (Lemma 1) holds for every parameter setting — no constraint
needs to be enforced during training.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Tensor, concat, cumsum, norm_l2_squared
from ..nn import Linear, Module, Sequential, feed_forward


class TauGenerator(Module):
    """Generates the query-dependent threshold control points τ.

    Parameters
    ----------
    input_dim:
        Dimensionality of the augmented input ``[x; z_x]``.
    num_control_points:
        ``L`` — number of interior control points.
    t_max:
        Maximum supported threshold; ``τ_{L+1} = t_max``.
    hidden_sizes:
        Hidden sizes of the generating FFN ``g^{(τ)}``.
    query_dependent:
        When False the network input is replaced by a constant vector,
        yielding the SelNet-ad-ct ablation: the same τ values are used for
        every query.
    """

    def __init__(
        self,
        input_dim: int,
        num_control_points: int,
        t_max: float,
        hidden_sizes: Sequence[int] = (64, 64),
        query_dependent: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.num_control_points = num_control_points
        self.t_max = float(t_max)
        self.query_dependent = query_dependent
        # L + 1 increments cover the L interior points plus the final step to t_max.
        self.network: Sequential = feed_forward(
            input_dim, list(hidden_sizes), num_control_points + 1, rng=rng
        )

    def forward(self, augmented_query: Tensor) -> Tensor:
        """Return τ of shape ``(batch, L + 2)`` with τ[:, 0] = 0, τ[:, -1] = t_max."""
        if not isinstance(augmented_query, Tensor):
            augmented_query = Tensor(augmented_query)
        batch = augmented_query.shape[0]
        if not self.query_dependent:
            # Ablation: feed a constant vector so τ ignores the query.
            constant = np.ones_like(augmented_query.data)
            augmented_query = Tensor(constant)
        raw = self.network(augmented_query)
        increments = norm_l2_squared(raw) * self.t_max  # non-negative, sums to t_max
        interior = cumsum(increments, axis=1)  # (batch, L + 1); last column == t_max
        zeros = Tensor(np.zeros((batch, 1)))
        tau = concat([zeros, interior], axis=1)
        # Pin the final point exactly at t_max (numerically it already is,
        # because Norm_l2 sums to one; the data is overwritten for exactness).
        tau.data[:, -1] = self.t_max
        return tau


class PGenerator(Module):
    """The paper's model ``M``: generates non-decreasing control values p.

    An encoder FFN maps ``[x; z_x]`` to ``L + 2`` embeddings of size
    ``embedding_dim``; each embedding has its own linear decoder whose ReLU
    output is the non-negative increment ``k_i``; the prefix sum of the
    increments gives ``p``.
    """

    def __init__(
        self,
        input_dim: int,
        num_control_points: int,
        embedding_dim: int = 16,
        hidden_sizes: Sequence[int] = (128, 128, 64),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng()
        self.num_control_points = num_control_points
        self.num_outputs = num_control_points + 2
        self.embedding_dim = embedding_dim
        # Encoder: one large FFN emitting all (L + 2) embeddings at once.
        self.encoder: Sequential = feed_forward(
            input_dim, list(hidden_sizes), self.num_outputs * embedding_dim, rng=rng
        )
        # Decoder: an independent linear map per control point (w_i, b_i).
        self.decoders = [Linear(embedding_dim, 1, rng=rng) for _ in range(self.num_outputs)]

    def forward(self, augmented_query: Tensor) -> Tensor:
        """Return p of shape ``(batch, L + 2)``, non-decreasing along axis 1."""
        if not isinstance(augmented_query, Tensor):
            augmented_query = Tensor(augmented_query)
        batch = augmented_query.shape[0]
        embeddings = self.encoder(augmented_query)  # (batch, (L+2) * embedding_dim)
        increments = []
        for index, decoder in enumerate(self.decoders):
            start = index * self.embedding_dim
            h_i = embeddings[:, start : start + self.embedding_dim]
            k_i = decoder(h_i).relu()  # (batch, 1), non-negative
            increments.append(k_i)
        stacked = concat(increments, axis=1)  # (batch, L + 2)
        return cumsum(stacked, axis=1)


class ControlPointHead(Module):
    """Convenience wrapper bundling the τ and p generators.

    Produces the full parameter set ``Θ = {(τ_i, p_i)}`` of the piece-wise
    linear estimator from the augmented query representation.
    """

    def __init__(
        self,
        input_dim: int,
        num_control_points: int,
        t_max: float,
        embedding_dim: int = 16,
        tau_hidden_sizes: Sequence[int] = (64, 64),
        p_hidden_sizes: Sequence[int] = (128, 128, 64),
        query_dependent_tau: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.tau_generator = TauGenerator(
            input_dim,
            num_control_points,
            t_max,
            hidden_sizes=tau_hidden_sizes,
            query_dependent=query_dependent_tau,
            rng=rng,
        )
        self.p_generator = PGenerator(
            input_dim,
            num_control_points,
            embedding_dim=embedding_dim,
            hidden_sizes=p_hidden_sizes,
            rng=rng,
        )

    def forward(self, augmented_query: Tensor) -> Tuple[Tensor, Tensor]:
        return self.tau_generator(augmented_query), self.p_generator(augmented_query)

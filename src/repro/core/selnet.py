"""The SelNet model without data partitioning (SelNet-ct in the paper).

Architecture (Figure 1):

1. The query ``x`` is augmented with its autoencoder embedding ``z_x`` to
   form ``[x; z_x]``.
2. Two independent networks turn the augmented query into the parameters of
   a continuous piece-wise linear function: the τ-generator (FFN + Norm_l2 +
   prefix sum) and the p-generator (model M: encoder/decoder + ReLU + prefix
   sum).
3. The threshold ``t`` is pushed through the piece-wise linear function to
   obtain the estimate.

Because p is non-decreasing by construction, the estimate is monotonically
non-decreasing in ``t`` for every query (Lemma 1) — the consistency
guarantee.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autodiff import Tensor, concat, no_grad
from ..nn import Autoencoder, Module
from .config import SelNetConfig
from .control_points import ControlPointHead
from .piecewise import PiecewiseLinearCurve, piecewise_linear


class SelNetModel(Module):
    """The neural network at the heart of SelNet (one local model).

    Parameters
    ----------
    input_dim:
        Dimensionality of the query vectors.
    t_max:
        Maximum supported threshold (τ_{L+1}).
    config:
        Architecture and training hyper-parameters.
    autoencoder:
        The (shared) autoencoder providing ``z_x``.  Partitioned SelNet passes
        the same instance to every local model so they share the transformed
        input representation, as in the paper.
    rng:
        Random generator for weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        t_max: float,
        config: SelNetConfig,
        autoencoder: Optional[Autoencoder] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(config.seed)
        self.input_dim = input_dim
        self.t_max = float(t_max)
        self.config = config
        if autoencoder is None:
            autoencoder = Autoencoder(
                input_dim, config.latent_dim, hidden_sizes=config.ae_hidden_sizes, rng=rng
            )
        self.autoencoder = autoencoder
        augmented_dim = input_dim + config.latent_dim
        self.head = ControlPointHead(
            augmented_dim,
            config.num_control_points,
            t_max=self.t_max,
            embedding_dim=config.embedding_dim,
            tau_hidden_sizes=config.tau_hidden_sizes,
            p_hidden_sizes=config.p_hidden_sizes,
            query_dependent_tau=config.query_dependent_tau,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def augment(self, queries: Tensor) -> Tensor:
        """Concatenate the query with its autoencoder embedding: ``[x; z_x]``."""
        if not isinstance(queries, Tensor):
            queries = Tensor(queries)
        latent = self.autoencoder.encode(queries)
        return concat([queries, latent], axis=1)

    def control_points(self, queries: Tensor) -> Tuple[Tensor, Tensor]:
        """Query-dependent (τ, p) tensors, each of shape ``(batch, L + 2)``."""
        augmented = self.augment(queries)
        return self.head(augmented)

    def forward(self, queries: Tensor, thresholds: np.ndarray) -> Tensor:
        """Estimate selectivities for a batch of (query, threshold) pairs."""
        tau, p = self.control_points(queries)
        return piecewise_linear(tau, p, thresholds)

    # ------------------------------------------------------------------ #
    # Inference helpers (numpy in, numpy out)
    # ------------------------------------------------------------------ #
    def predict(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Non-negative selectivity estimates as a plain numpy array."""
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        with no_grad():
            output = self.forward(Tensor(queries), thresholds)
        return np.clip(output.data.reshape(len(queries)), 0.0, None)

    def curve_for_query(self, query: np.ndarray) -> PiecewiseLinearCurve:
        """The learned piece-wise linear curve of a single query.

        Used by the Figure 4 reproduction to inspect where the model places
        its control points.
        """
        query = np.asarray(query, dtype=np.float64)[None, :]
        tau, p = self.control_points(Tensor(query))
        return PiecewiseLinearCurve(tau=tau.data[0].copy(), p=p.data[0].copy())

    def reconstruction_loss(self, queries: Tensor) -> Tensor:
        """Autoencoder loss term ``J_AE`` for the training queries."""
        return self.autoencoder.reconstruction_loss(queries)

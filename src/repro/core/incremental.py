"""Incremental learning under database updates (Section 5.4 of the paper).

When the database receives insertions or deletions:

1. The labels of the validation data are refreshed against the updated
   database and the model's validation MAE is re-measured.  If the MAE drift
   stays within ``δ_U`` the model is kept as is.
2. Otherwise the training labels are refreshed too and the *current* model is
   fine-tuned (never retrained from scratch) on all training data until the
   validation MAE stops improving for 3 consecutive epochs — incremental
   learning over the full training set prevents catastrophic forgetting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..autodiff import Tensor
from ..data.updates import UpdateOperation
from ..data.workload import Workload, WorkloadSplit, relabel_workload
from ..exact import DeltaOracle
from ..distances import DistanceFunction
from ..estimator import SelectivityEstimator
from ..nn import Adam, DataLoader, log_huber_loss
from ..registry import register_estimator
from .config import IncrementalConfig, SelNetConfig
from .selnet import SelNetModel
from .trainer import SelNetEstimator, _selnet_scale_params, coerce_selnet_params


@dataclass
class UpdateStepReport:
    """What happened when one update operation was applied."""

    operation_kind: str
    database_size: int
    validation_mae_before: float
    validation_mae_after: float
    retrained: bool
    fine_tune_epochs: int = 0


@dataclass
class IncrementalSelNet:
    """Wraps a fitted SelNet-ct estimator with update handling.

    Parameters
    ----------
    estimator:
        A fitted :class:`~repro.core.trainer.SelNetEstimator` whose model is a
        single (non-partitioned) :class:`SelNetModel`.  The update procedure
        in the paper is described for this configuration; partitioned models
        would additionally require re-partitioning.
    data:
        Current database vectors.
    distance:
        Distance function of the workload.
    train, validation:
        The training and validation workloads (labels are refreshed in place
        as the database changes).
    config:
        Incremental-learning hyper-parameters.
    """

    estimator: SelNetEstimator
    data: np.ndarray
    distance: DistanceFunction
    train: Workload
    validation: Workload
    config: IncrementalConfig = field(default_factory=IncrementalConfig)
    reports: List[UpdateStepReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not isinstance(self.estimator.model, SelNetModel):
            raise TypeError("IncrementalSelNet requires a fitted non-partitioned SelNet estimator")
        self.data = np.asarray(self.data, dtype=np.float64)
        # One incremental oracle for the whole update stream: base counts per
        # workload are computed once and each operation only scans the rows
        # it touched, instead of rebuilding a fresh oracle per operation.
        self._delta = DeltaOracle(self.data, self.distance)
        self._baseline_mae = self._validation_mae()

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _validation_mae(self) -> float:
        prediction = self.estimator.estimate(self.validation.queries, self.validation.thresholds)
        return float(np.mean(np.abs(prediction - self.validation.selectivities)))

    def _fine_tune(self) -> int:
        """Fine-tune the current model; return the number of epochs run."""
        model: SelNetModel = self.estimator.model  # type: ignore[assignment]
        selnet_config: SelNetConfig = self.estimator.config
        optimizer = Adam(model.parameters(), learning_rate=self.config.learning_rate)
        loader = DataLoader(
            self.train.queries,
            self.train.thresholds,
            self.train.selectivities,
            batch_size=self.config.batch_size,
            shuffle=True,
        )
        best_mae = self._validation_mae()
        best_state = model.state_dict()
        stall = 0
        epochs_run = 0
        for _ in range(self.config.max_epochs):
            model.train()
            for queries, thresholds, labels in loader:
                optimizer.zero_grad()
                query_tensor = Tensor(queries)
                prediction = model.forward(query_tensor, thresholds)
                loss = log_huber_loss(prediction, labels, delta=selnet_config.huber_delta)
                loss = loss + selnet_config.lambda_ae * model.reconstruction_loss(query_tensor)
                loss.backward()
                optimizer.step()
            model.eval()
            epochs_run += 1
            mae = self._validation_mae()
            if mae < best_mae - 1e-9:
                best_mae = mae
                best_state = model.state_dict()
                stall = 0
            else:
                stall += 1
            if stall >= self.config.patience:
                break
        model.load_state_dict(best_state)
        model.eval()
        return epochs_run

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def apply_operation(
        self,
        operation: UpdateOperation,
        validation: Optional[Workload] = None,
        train=None,
    ) -> UpdateStepReport:
        """Apply one insert/delete operation and update the model if needed.

        ``validation`` / ``train`` optionally supply externally relabeled
        workloads reflecting the post-operation database, so several models
        tracking the same update stream share one exact-labeling pass per
        operation instead of relabeling per model (``train`` may be a
        zero-argument callable, invoked only when fine-tuning triggers).
        The labels must equal what :func:`relabel_workload` against this
        instance's oracle would produce — the exact engine guarantees that
        for any oracle over the same data and operation history.
        """
        self._delta.apply(operation)
        self.data = self._delta.current_data()

        # Step 1: refresh validation labels and re-check accuracy.
        if validation is not None:
            self.validation = validation
        else:
            self.validation = relabel_workload(self.validation, self._delta)
        mae_before = self._validation_mae()
        drift = abs(mae_before - self._baseline_mae)

        retrained = False
        fine_tune_epochs = 0
        if drift > self.config.mae_drift_threshold:
            # Step 2: refresh training labels and fine-tune the current model.
            if train is not None:
                self.train = train() if callable(train) else train
            else:
                self.train = relabel_workload(self.train, self._delta)
            fine_tune_epochs = self._fine_tune()
            # Fine-tuning mutates the model weights in place; any cached
            # compiled inference kernel froze the pre-update weights (store-
            # loaded estimators arrive eagerly compiled) and must be rebuilt.
            self.estimator._invalidate_compiled()
            retrained = True
            self._baseline_mae = self._validation_mae()

        mae_after = self._validation_mae()
        report = UpdateStepReport(
            operation_kind=operation.kind,
            database_size=len(self.data),
            validation_mae_before=mae_before,
            validation_mae_after=mae_after,
            retrained=retrained,
            fine_tune_epochs=fine_tune_epochs,
        )
        self.reports.append(report)
        return report

    def apply_stream(self, operations: List[UpdateOperation]) -> List[UpdateStepReport]:
        """Apply a whole update stream, returning one report per operation."""
        return [self.apply_operation(operation) for operation in operations]

    def update(
        self,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[np.ndarray] = None,
    ) -> List[UpdateStepReport]:
        """The estimator-API update protocol: one insert and/or delete batch.

        ``inserts`` is a ``(n, dim)`` array of new vectors; ``deletes`` holds
        row indices into the current database.  Deletes are applied first so
        the indices are interpreted against the pre-insert state.
        """
        operations: List[UpdateOperation] = []
        if deletes is not None:
            indices = np.atleast_1d(np.asarray(deletes, dtype=np.int64))
            operations.append(UpdateOperation(kind="delete", indices=np.sort(indices)))
        if inserts is not None:
            vectors = np.atleast_2d(np.asarray(inserts, dtype=np.float64))
            operations.append(UpdateOperation(kind="insert", vectors=vectors))
        if not operations:
            raise ValueError("update() needs inserts, deletes or both")
        return self.apply_stream(operations)

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Delegate estimation to the wrapped (possibly fine-tuned) model."""
        return self.estimator.estimate(queries, thresholds)


# ---------------------------------------------------------------------- #
# Registry front-end: SelNet with first-class update support
# ---------------------------------------------------------------------- #
@register_estimator(
    "selnet-inc",
    display_name="SelNet-inc",
    description="SelNet-ct with incremental maintenance under inserts/deletes (Sec. 5.4)",
    consistent=True,
    supports_updates=True,
    scale_params=lambda scale, num_vectors: {
        **_selnet_scale_params(scale, num_vectors),
        "num_partitions": 1,
    },
)
class IncrementalSelNetEstimator(SelectivityEstimator):
    """SelNet-ct wrapped with the Section 5.4 incremental-learning procedure.

    The only registered estimator with ``supports_updates = True``: after
    :meth:`fit`, :meth:`update` applies insert/delete batches, re-checks the
    validation error against the updated database and fine-tunes the current
    model only when accuracy has drifted beyond the configured threshold.

    Constructor parameters are flat :class:`SelNetConfig` fields
    (``num_partitions`` is forced to 1 — the paper describes the update
    procedure for the non-partitioned model) plus incremental-learning knobs
    prefixed with ``update_`` (e.g. ``update_mae_drift_threshold``,
    ``update_max_epochs``) mapping to :class:`IncrementalConfig`.
    """

    name = "SelNet-inc"
    guarantees_consistency = True
    supports_updates = True

    def __init__(self, **params) -> None:
        params = dict(params)
        incremental_kwargs = {
            key[len("update_"):]: params.pop(key)
            for key in list(params)
            if key.startswith("update_")
        }
        params["num_partitions"] = 1
        self.config = SelNetConfig(**coerce_selnet_params(params))
        self.incremental_config = IncrementalConfig(**incremental_kwargs)
        self.state: Optional[IncrementalSelNet] = None

    # ------------------------------------------------------------------ #
    def fit(self, split: WorkloadSplit) -> "IncrementalSelNetEstimator":
        estimator = SelNetEstimator(self.config, name=self.name).fit(split)
        self.state = IncrementalSelNet(
            estimator=estimator,
            data=split.dataset.vectors,
            distance=split.distance,
            train=split.train,
            validation=split.validation,
            config=self.incremental_config,
        )
        self._input_dim = estimator.expected_input_dim
        self._invalidate_compiled()
        return self

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self.state is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        return self.state.estimate(queries, thresholds)

    def update(
        self,
        inserts: Optional[np.ndarray] = None,
        deletes: Optional[np.ndarray] = None,
    ) -> List[UpdateStepReport]:
        if self.state is None:
            raise RuntimeError("estimator must be fitted before calling update()")
        reports = self.state.update(inserts=inserts, deletes=deletes)
        # The update may have fine-tuned the model in place; any cached
        # compiled kernel froze the pre-update weights and must be rebuilt.
        self._invalidate_compiled()
        return reports

    @property
    def reports(self) -> List[UpdateStepReport]:
        """Per-operation reports accumulated across all updates so far."""
        return [] if self.state is None else self.state.reports

    def get_params(self):
        from dataclasses import asdict

        params = asdict(self.config)
        params.update(
            {f"update_{key}": value for key, value in asdict(self.incremental_config).items()}
        )
        return params

"""Configuration dataclasses for the SelNet estimator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass
class SelNetConfig:
    """Hyper-parameters of the SelNet architecture and its training loop.

    Defaults follow the paper (Appendix B.2) scaled down to laptop-size
    synthetic data: the paper uses L = 50 control points, hidden sizes of
    512/1024, 1500 epochs and batch size 512; we default to smaller networks
    and fewer epochs so the full benchmark suite runs in minutes.

    Parameters
    ----------
    num_control_points:
        ``L`` — the number of interior control points of the piece-wise
        linear estimator (the function has ``L + 2`` points in total).
    latent_dim:
        Dimensionality of the autoencoder embedding ``z_x``.
    tau_hidden_sizes:
        Hidden sizes of the FFN generating threshold increments (2 hidden
        layers in the paper).
    p_hidden_sizes:
        Hidden sizes of the FFN inside model M generating the control-value
        embeddings (4 hidden layers in the paper).
    embedding_dim:
        ``|h_i|`` — size of each per-control-point embedding in model M
        (100 in the paper).
    ae_hidden_sizes:
        Hidden sizes of the autoencoder's encoder (mirrored by the decoder).
    query_dependent_tau:
        When False the τ-generator receives a constant input, producing the
        SelNet-ad-ct ablation of Section 7.4.
    num_partitions:
        ``K`` — number of database partitions; 1 disables partitioning
        (SelNet-ct).
    partition_method:
        ``"ct"`` (cover tree, default), ``"rp"`` (random) or ``"km"``
        (k-means).
    partition_ratio:
        Cover-tree expansion stop ratio ``r``.
    epochs, batch_size, learning_rate:
        Training-loop parameters.
    pretrain_epochs:
        ``T`` — number of epochs each local model is pre-trained before joint
        training (paper uses 300; scaled down by default).
    ae_pretrain_epochs:
        Epochs of autoencoder pre-training on the full database.
    lambda_ae:
        Weight ``λ`` of the autoencoder reconstruction loss in the joint
        objective (Equation 4).
    beta_local:
        Weight ``β`` of the per-partition losses during joint training
        (Section 5.3; paper uses 0.1).
    huber_delta:
        δ of the Huber loss (1.345 in the paper).
    early_stopping_patience:
        Stop when the validation loss has not improved for this many epochs.
    seed:
        Seed for all weight initialisation and shuffling.
    """

    num_control_points: int = 16
    latent_dim: int = 8
    tau_hidden_sizes: Tuple[int, ...] = (64, 64)
    p_hidden_sizes: Tuple[int, ...] = (128, 128, 64)
    embedding_dim: int = 16
    ae_hidden_sizes: Tuple[int, ...] = (64,)
    query_dependent_tau: bool = True
    num_partitions: int = 1
    partition_method: str = "ct"
    partition_ratio: float = 0.05
    epochs: int = 60
    batch_size: int = 128
    learning_rate: float = 5e-3
    pretrain_epochs: int = 10
    ae_pretrain_epochs: int = 10
    lambda_ae: float = 0.1
    beta_local: float = 0.1
    huber_delta: float = 1.345
    early_stopping_patience: Optional[int] = 15
    max_grad_norm: Optional[float] = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_control_points < 1:
            raise ValueError("num_control_points must be at least 1")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be at least 1")
        if self.partition_method.lower() not in ("ct", "cover_tree", "rp", "random", "km", "kmeans"):
            raise ValueError(f"unknown partition_method {self.partition_method!r}")
        if not 0.0 < self.partition_ratio <= 1.0:
            raise ValueError("partition_ratio must lie in (0, 1]")

    def scaled_for_paper(self) -> "SelNetConfig":
        """Return a copy with the paper's full-size hyper-parameters.

        Provided for completeness; training at this size in pure numpy is
        slow and not needed to reproduce the tables' shapes.
        """
        return SelNetConfig(
            num_control_points=50,
            latent_dim=32,
            tau_hidden_sizes=(512, 256),
            p_hidden_sizes=(512, 512, 256, 256),
            embedding_dim=100,
            ae_hidden_sizes=(512, 256),
            query_dependent_tau=self.query_dependent_tau,
            num_partitions=self.num_partitions,
            partition_method=self.partition_method,
            partition_ratio=self.partition_ratio,
            epochs=1500,
            batch_size=512,
            learning_rate=2e-5,
            pretrain_epochs=300,
            ae_pretrain_epochs=50,
            lambda_ae=self.lambda_ae,
            beta_local=self.beta_local,
            huber_delta=self.huber_delta,
            early_stopping_patience=None,
            seed=self.seed,
        )


@dataclass
class IncrementalConfig:
    """Hyper-parameters of the incremental-learning path (Section 5.4)."""

    #: maximum tolerated increase of validation MAE before retraining kicks in
    mae_drift_threshold: float = 5.0
    #: continue fine-tuning until validation MAE has not improved for this many epochs
    patience: int = 3
    #: upper bound on fine-tuning epochs per update
    max_epochs: int = 30
    #: learning rate used during fine-tuning (usually smaller than initial training)
    learning_rate: float = 1e-3
    batch_size: int = 128

"""Training loops for SelNet (single and partitioned) and the estimator API.

The losses follow the paper:

* single model (Equation 4):      ``J = J_est(f̂) + λ J_AE``
* partitioned model (Section 5.3): local pre-training for ``T`` epochs with
  per-partition labels, then joint training with
  ``J_joint = J_est(f̂*) + β Σ_i J_est(f̂^(i)) + λ J_AE``

``J_est`` is the Huber loss on the logarithms of the true and estimated
selectivities (Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..autodiff import Tensor, stack
from ..data.workload import Workload, WorkloadSplit
from ..estimator import SelectivityEstimator
from ..index import Partitioning, build_partitioning
from ..nn import Adam, DataLoader, log_huber_loss
from ..registry import register_estimator
from .config import SelNetConfig
from .partitioned import PartitionedSelNet
from .selnet import SelNetModel


@dataclass
class SelNetTrainingHistory:
    """Loss trajectories recorded while fitting SelNet."""

    train_loss: List[float] = field(default_factory=list)
    validation_loss: List[float] = field(default_factory=list)
    pretrain_loss: List[float] = field(default_factory=list)

    @property
    def best_validation_loss(self) -> float:
        return min(self.validation_loss) if self.validation_loss else float("nan")


def _estimation_loss(prediction: Tensor, targets: np.ndarray, delta: float) -> Tensor:
    return log_huber_loss(prediction, np.asarray(targets, dtype=np.float64), delta=delta)


# ---------------------------------------------------------------------- #
# Single-model training (SelNet-ct / SelNet-ad-ct)
# ---------------------------------------------------------------------- #
def train_selnet_model(
    model: SelNetModel,
    train: Workload,
    validation: Optional[Workload],
    config: SelNetConfig,
    rng: Optional[np.random.Generator] = None,
) -> SelNetTrainingHistory:
    """Fit a single (non-partitioned) SelNet model on a workload."""
    if rng is None:
        rng = np.random.default_rng(config.seed)
    optimizer = Adam(
        model.parameters(), learning_rate=config.learning_rate, max_grad_norm=config.max_grad_norm
    )
    loader = DataLoader(
        train.queries,
        train.thresholds,
        train.selectivities,
        batch_size=config.batch_size,
        shuffle=True,
        rng=rng,
    )
    history = SelNetTrainingHistory()
    best_state = None
    best_validation = float("inf")
    stall = 0

    for epoch in range(config.epochs):
        model.train()
        losses = []
        for queries, thresholds, labels in loader:
            optimizer.zero_grad()
            query_tensor = Tensor(queries)
            prediction = model.forward(query_tensor, thresholds)
            loss = _estimation_loss(prediction, labels, config.huber_delta)
            loss = loss + config.lambda_ae * model.reconstruction_loss(query_tensor)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.train_loss.append(float(np.mean(losses)) if losses else 0.0)

        if validation is not None and len(validation) > 0:
            model.eval()
            prediction = model.forward(Tensor(validation.queries), validation.thresholds)
            valid_loss = _estimation_loss(
                prediction, validation.selectivities, config.huber_delta
            ).item()
            history.validation_loss.append(valid_loss)
            if valid_loss < best_validation - 1e-9:
                best_validation = valid_loss
                best_state = model.state_dict()
                stall = 0
            else:
                stall += 1
            if (
                config.early_stopping_patience is not None
                and stall >= config.early_stopping_patience
            ):
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return history


# ---------------------------------------------------------------------- #
# Partitioned training (SelNet)
# ---------------------------------------------------------------------- #
def train_partitioned_selnet(
    model: PartitionedSelNet,
    train: Workload,
    validation: Optional[Workload],
    config: SelNetConfig,
    rng: Optional[np.random.Generator] = None,
    precomputed_train_indicators: Optional[np.ndarray] = None,
    precomputed_local_labels: Optional[np.ndarray] = None,
) -> SelNetTrainingHistory:
    """Pre-train local models, then train the global model jointly.

    Pre-computation of the partition indicators and the local labels for all
    training rows mirrors the paper ("f_c of all (x, t) are precomputed
    before training").
    """
    if rng is None:
        rng = np.random.default_rng(config.seed)
    partitioning = model.partitioning
    history = SelNetTrainingHistory()

    train_indicators = (
        precomputed_train_indicators
        if precomputed_train_indicators is not None
        else partitioning.indicator_batch(train.queries, train.thresholds)
    )
    local_labels = (
        precomputed_local_labels
        if precomputed_local_labels is not None
        else partitioning.local_selectivity_labels(train.queries, train.thresholds)
    )
    validation_indicators = None
    if validation is not None and len(validation) > 0:
        validation_indicators = partitioning.indicator_batch(
            validation.queries, validation.thresholds
        )

    # ---------------- Stage 1: local pre-training ---------------- #
    optimizer = Adam(
        model.parameters(), learning_rate=config.learning_rate, max_grad_norm=config.max_grad_norm
    )
    loader = DataLoader(
        train.queries,
        train.thresholds,
        local_labels,
        batch_size=config.batch_size,
        shuffle=True,
        rng=rng,
    )
    for _ in range(config.pretrain_epochs):
        model.train()
        losses = []
        for queries, thresholds, batch_local_labels in loader:
            optimizer.zero_grad()
            query_tensor = Tensor(queries)
            local_outputs = model.local_outputs(query_tensor, thresholds)
            loss = None
            for k, output in enumerate(local_outputs):
                local_loss = _estimation_loss(
                    output, batch_local_labels[:, k], config.huber_delta
                )
                loss = local_loss if loss is None else loss + local_loss
            loss = loss * (1.0 / max(len(local_outputs), 1))
            loss = loss + config.lambda_ae * model.reconstruction_loss(query_tensor)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.pretrain_loss.append(float(np.mean(losses)) if losses else 0.0)

    # ---------------- Stage 2: joint training ---------------- #
    joint_loader = DataLoader(
        train.queries,
        train.thresholds,
        train.selectivities,
        train_indicators,
        local_labels,
        batch_size=config.batch_size,
        shuffle=True,
        rng=rng,
    )
    best_state = None
    best_validation = float("inf")
    stall = 0
    for epoch in range(config.epochs):
        model.train()
        losses = []
        for queries, thresholds, labels, indicators, batch_local_labels in joint_loader:
            optimizer.zero_grad()
            query_tensor = Tensor(queries)
            local_outputs = model.local_outputs(query_tensor, thresholds)
            stacked = stack(local_outputs, axis=1)
            global_output = (stacked * Tensor(indicators)).sum(axis=1)
            loss = _estimation_loss(global_output, labels, config.huber_delta)
            local_term = None
            for k, output in enumerate(local_outputs):
                local_loss = _estimation_loss(
                    output, batch_local_labels[:, k], config.huber_delta
                )
                local_term = local_loss if local_term is None else local_term + local_loss
            if local_term is not None:
                loss = loss + config.beta_local * local_term
            loss = loss + config.lambda_ae * model.reconstruction_loss(query_tensor)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.train_loss.append(float(np.mean(losses)) if losses else 0.0)

        if validation is not None and len(validation) > 0:
            model.eval()
            prediction = model.forward(
                Tensor(validation.queries), validation.thresholds, validation_indicators
            )
            valid_loss = _estimation_loss(
                prediction, validation.selectivities, config.huber_delta
            ).item()
            history.validation_loss.append(valid_loss)
            if valid_loss < best_validation - 1e-9:
                best_validation = valid_loss
                best_state = model.state_dict()
                stall = 0
            else:
                stall += 1
            if (
                config.early_stopping_patience is not None
                and stall >= config.early_stopping_patience
            ):
                break

    if best_state is not None:
        model.load_state_dict(best_state)
    model.eval()
    return history


# ---------------------------------------------------------------------- #
# Estimator front-end
# ---------------------------------------------------------------------- #
class SelNetEstimator(SelectivityEstimator):
    """SelNet exposed through the common :class:`SelectivityEstimator` API.

    The configuration selects the variant:

    * ``num_partitions > 1`` — full SelNet (cover-tree partitioned).
    * ``num_partitions == 1`` — SelNet-ct (no partitioning).
    * ``query_dependent_tau=False`` — SelNet-ad-ct (ablation of Section 7.4).
    """

    guarantees_consistency = True

    def __init__(self, config: Optional[SelNetConfig] = None, name: Optional[str] = None) -> None:
        self.config = config if config is not None else SelNetConfig()
        if name is not None:
            self.name = name
        elif self.config.num_partitions > 1:
            self.name = "SelNet"
        elif self.config.query_dependent_tau:
            self.name = "SelNet-ct"
        else:
            self.name = "SelNet-ad-ct"
        self.model: Optional[object] = None
        self.history: Optional[SelNetTrainingHistory] = None
        self._t_max: Optional[float] = None

    # ------------------------------------------------------------------ #
    def fit(self, split: WorkloadSplit) -> "SelNetEstimator":
        config = self.config
        rng = np.random.default_rng(config.seed)
        data = split.dataset.vectors
        input_dim = data.shape[1]
        self._input_dim = input_dim
        self._t_max = split.t_max

        if config.num_partitions > 1:
            partitioning = build_partitioning(
                config.partition_method,
                data,
                num_partitions=config.num_partitions,
                distance=split.distance,
                seed=config.seed,
            )
            model = PartitionedSelNet(input_dim, split.t_max, config, partitioning, rng=rng)
            model.autoencoder.pretrain(
                data, epochs=config.ae_pretrain_epochs, batch_size=config.batch_size, rng=rng
            )
            self.history = train_partitioned_selnet(
                model, split.train, split.validation, config, rng=rng
            )
        else:
            model = SelNetModel(input_dim, split.t_max, config, rng=rng)
            model.autoencoder.pretrain(
                data, epochs=config.ae_pretrain_epochs, batch_size=config.batch_size, rng=rng
            )
            self.history = train_selnet_model(model, split.train, split.validation, config, rng=rng)
        self.model = model
        self._invalidate_compiled()  # weights changed: next compiled() refreezes
        return self

    def estimate(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("estimator must be fitted before calling estimate()")
        return self.model.predict(queries, thresholds)

    def get_params(self):
        """Flat SelNetConfig fields (the registry's parameter convention)."""
        from dataclasses import asdict

        return asdict(self.config)

    # ------------------------------------------------------------------ #
    def curve_for_query(self, query: np.ndarray):
        """Learned piece-wise linear curve for one query (Figure 4 support).

        For the partitioned variant the curves of the local models are summed
        at shared evaluation points.
        """
        if self.model is None:
            raise RuntimeError("estimator must be fitted before inspecting curves")
        if isinstance(self.model, SelNetModel):
            return self.model.curve_for_query(query)
        # Partitioned model: merge local curves on a common grid.
        from .piecewise import PiecewiseLinearCurve

        grid = np.linspace(0.0, self._t_max, 256)
        total = np.zeros_like(grid)
        for local in self.model.local_models:
            curve = local.curve_for_query(query)
            total += curve(grid)
        return PiecewiseLinearCurve(tau=grid, p=total)


# ---------------------------------------------------------------------- #
# Registry entries for the three SelNet variants of the paper
# ---------------------------------------------------------------------- #
_TUPLE_CONFIG_FIELDS = ("tau_hidden_sizes", "p_hidden_sizes", "ae_hidden_sizes")


def coerce_selnet_params(params: dict) -> dict:
    """Normalise flat SelNetConfig kwargs (JSON lists -> tuple-typed fields)."""
    params = dict(params)
    for field_name in _TUPLE_CONFIG_FIELDS:
        if field_name in params and params[field_name] is not None:
            params[field_name] = tuple(params[field_name])
    return params


def _selnet_variant_factory(display_name: str, **forced):
    """Factory building a SelNet variant from flat SelNetConfig fields."""

    def build(**params) -> SelNetEstimator:
        params = dict(params)
        params.update(forced)
        return SelNetEstimator(SelNetConfig(**coerce_selnet_params(params)), name=display_name)

    return build


def _selnet_scale_params(scale, num_vectors):
    from dataclasses import asdict

    return asdict(scale.selnet_config())


register_estimator(
    "selnet",
    factory=_selnet_variant_factory("SelNet"),
    cls=SelNetEstimator,
    display_name="SelNet",
    description="Full SelNet: cover-tree partitioned, query-dependent control points",
    consistent=True,
    default_params={"num_partitions": 3},
    scale_params=_selnet_scale_params,
)
register_estimator(
    "selnet-ct",
    factory=_selnet_variant_factory("SelNet-ct", num_partitions=1),
    cls=SelNetEstimator,
    display_name="SelNet-ct",
    description="SelNet without data partitioning (single global model)",
    consistent=True,
    scale_params=lambda scale, num_vectors: {
        **_selnet_scale_params(scale, num_vectors),
        "num_partitions": 1,
    },
)
register_estimator(
    "selnet-ad-ct",
    factory=_selnet_variant_factory("SelNet-ad-ct", num_partitions=1, query_dependent_tau=False),
    cls=SelNetEstimator,
    display_name="SelNet-ad-ct",
    description="SelNet ablation: no partitioning, query-independent tau",
    consistent=True,
    scale_params=lambda scale, num_vectors: {
        **_selnet_scale_params(scale, num_vectors),
        "num_partitions": 1,
        "query_dependent_tau": False,
    },
)

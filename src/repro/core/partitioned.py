"""Partitioned SelNet: one local model per database partition (Section 5.3).

The database is split into ``K`` disjoint partitions; each has its own local
model ``f̂^(i)`` and the global estimate is

    f̂*(x, t, D) = Σ_i f_c(x, t)[i] · f̂^(i)(x, t, D_i)

where ``f_c`` activates only the partitions whose ball regions intersect the
query ball.  All local models share the same autoencoder (the transformed
input representation), but each has its own control-point networks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autodiff import Tensor, no_grad, stack
from ..index import Partitioning
from ..nn import Autoencoder, Module
from .config import SelNetConfig
from .selnet import SelNetModel


class PartitionedSelNet(Module):
    """A set of local SelNet models combined by the partition indicator.

    Parameters
    ----------
    input_dim:
        Query dimensionality.
    t_max:
        Maximum supported threshold (shared by all local models).
    config:
        SelNet hyper-parameters; ``config.num_partitions`` must match
        ``partitioning.num_partitions``.
    partitioning:
        The database partitioning providing the indicator ``f_c`` and the
        per-partition training labels.
    rng:
        Random generator for weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        t_max: float,
        config: SelNetConfig,
        partitioning: Partitioning,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rng is None:
            rng = np.random.default_rng(config.seed)
        if partitioning.num_partitions != config.num_partitions:
            raise ValueError(
                "partitioning size does not match config.num_partitions "
                f"({partitioning.num_partitions} != {config.num_partitions})"
            )
        self.input_dim = input_dim
        self.t_max = float(t_max)
        self.config = config
        self.partitioning = partitioning
        # Shared transformed input representation: one autoencoder for all
        # local models (paper, Section 5.3 design choice (ii)).
        self.autoencoder = Autoencoder(
            input_dim, config.latent_dim, hidden_sizes=config.ae_hidden_sizes, rng=rng
        )
        self.local_models: List[SelNetModel] = [
            SelNetModel(input_dim, t_max, config, autoencoder=self.autoencoder, rng=rng)
            for _ in range(config.num_partitions)
        ]

    @property
    def num_partitions(self) -> int:
        return len(self.local_models)

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def local_outputs(self, queries: Tensor, thresholds: np.ndarray) -> List[Tensor]:
        """Outputs of every local model for the batch, each of shape ``(batch,)``."""
        return [model.forward(queries, thresholds) for model in self.local_models]

    def forward(
        self,
        queries: Tensor,
        thresholds: np.ndarray,
        indicators: np.ndarray,
    ) -> Tensor:
        """Global estimate: indicator-weighted sum of local estimates.

        ``indicators`` has shape ``(batch, K)`` and is produced by
        :meth:`repro.index.Partitioning.indicator_batch` (precomputed before
        training, as in the paper).
        """
        locals_ = self.local_outputs(queries, thresholds)  # K tensors of (batch,)
        stacked = stack(locals_, axis=1)  # (batch, K)
        weighted = stacked * Tensor(np.asarray(indicators, dtype=np.float64))
        return weighted.sum(axis=1)

    # ------------------------------------------------------------------ #
    # Inference helpers
    # ------------------------------------------------------------------ #
    def predict(self, queries: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
        """Non-negative global selectivity estimates for numpy inputs."""
        queries = np.asarray(queries, dtype=np.float64)
        thresholds = np.asarray(thresholds, dtype=np.float64)
        indicators = self.partitioning.indicator_batch(queries, thresholds)
        with no_grad():
            output = self.forward(Tensor(queries), thresholds, indicators)
        return np.clip(output.data.reshape(len(queries)), 0.0, None)

    def reconstruction_loss(self, queries: Tensor) -> Tensor:
        """Shared autoencoder loss term ``J_AE``."""
        return self.autoencoder.reconstruction_loss(queries)

"""Unit and property tests for the higher-level autodiff functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import (
    Tensor,
    check_gradients,
    cumsum,
    dropout,
    gather_rows,
    huber,
    log_softmax,
    logsumexp,
    norm_l2_squared,
    piecewise_linear,
    prefix_sum_matrix,
    softmax,
)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(4, 7))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        multiplier = Tensor(rng.normal(size=(3, 5)))
        assert check_gradients(lambda v: softmax(v) * multiplier, [x])

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(2, 6))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-12)

    def test_log_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert check_gradients(lambda v: log_softmax(v), [x])

    def test_logsumexp_matches_numpy(self, rng):
        x = rng.normal(size=(3, 6))
        expected = np.log(np.exp(x).sum(axis=1))
        np.testing.assert_allclose(logsumexp(Tensor(x), axis=1).data, expected, atol=1e-12)

    def test_logsumexp_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        assert check_gradients(lambda v: logsumexp(v, axis=1), [x])


class TestNormL2Squared:
    def test_rows_sum_to_one(self, rng):
        out = norm_l2_squared(Tensor(rng.normal(size=(5, 9))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), atol=1e-9)

    def test_strictly_positive(self, rng):
        out = norm_l2_squared(Tensor(rng.normal(size=(5, 9))))
        assert np.all(out.data > 0)

    def test_zero_input_is_uniform(self):
        out = norm_l2_squared(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, np.full((2, 4), 0.25), atol=1e-9)

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        assert check_gradients(lambda v: norm_l2_squared(v), [x], atol=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(
        data=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 8)),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    def test_property_simplex_output(self, data):
        """Property: Norm_l2 output is a point on the probability simplex."""
        out = norm_l2_squared(Tensor(data)).data
        assert np.all(out > 0)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(len(data)), atol=1e-8)


class TestCumsumAndPrefixSum:
    def test_cumsum_matches_numpy(self, rng):
        x = rng.normal(size=(3, 7))
        np.testing.assert_allclose(cumsum(Tensor(x), axis=1).data, np.cumsum(x, axis=1))

    def test_cumsum_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 7)), requires_grad=True)
        multiplier = Tensor(rng.normal(size=(3, 7)))
        assert check_gradients(lambda v: cumsum(v, axis=1) * multiplier, [x])

    def test_cumsum_axis0_gradient(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert check_gradients(lambda v: cumsum(v, axis=0), [x])

    def test_prefix_sum_matrix_equivalence(self, rng):
        """Multiplying by M_psum equals cumsum (the paper's formulation)."""
        x = rng.normal(size=(2, 5))
        matrix = prefix_sum_matrix(5)
        np.testing.assert_allclose(x @ matrix.T, np.cumsum(x, axis=1))

    def test_prefix_sum_matrix_is_lower_triangular_ones(self):
        matrix = prefix_sum_matrix(4)
        assert matrix.shape == (4, 4)
        assert np.all(matrix == np.tril(np.ones((4, 4))))


class TestHuber:
    def test_quadratic_region(self):
        out = huber(Tensor([0.5]), delta=1.0)
        assert out.data[0] == pytest.approx(0.125)

    def test_linear_region(self):
        out = huber(Tensor([3.0]), delta=1.0)
        assert out.data[0] == pytest.approx(1.0 * (3.0 - 0.5))

    def test_symmetry(self, rng):
        x = rng.normal(size=20) * 3
        np.testing.assert_allclose(huber(Tensor(x)).data, huber(Tensor(-x)).data)

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(4, 4)) * 3, requires_grad=True)
        assert check_gradients(lambda v: huber(v), [x], atol=1e-3)

    @settings(max_examples=30, deadline=None)
    @given(value=st.floats(-100, 100, allow_nan=False), delta=st.floats(0.1, 5.0))
    def test_property_huber_bounded_by_quadratic(self, value, delta):
        """Property: the Huber penalty never exceeds the pure quadratic one."""
        penalty = float(huber(Tensor([value]), delta=delta).data[0])
        assert penalty <= 0.5 * value ** 2 + 1e-9
        assert penalty >= 0.0


class TestDropout:
    def test_inference_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = dropout(x, rate=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_rate_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = dropout(x, rate=0.0, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_preserves_expectation(self, rng):
        x = Tensor(np.ones((2000,)))
        out = dropout(x, rate=0.3, training=True, rng=np.random.default_rng(0))
        assert out.data.mean() == pytest.approx(1.0, abs=0.1)


class TestGatherRows:
    def test_values(self, rng):
        x = rng.normal(size=(6, 3))
        indices = np.array([0, 2, 2, 5])
        out = gather_rows(Tensor(x), indices)
        np.testing.assert_allclose(out.data, x[indices])

    def test_gradient_accumulates_duplicates(self):
        x = Tensor(np.zeros((4, 2)), requires_grad=True)
        out = gather_rows(x, np.array([1, 1, 3]))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0], [2, 2], [0, 0], [1, 1]])


class TestPiecewiseLinear:
    def make_inputs(self, rng, batch=4, points=7):
        tau = np.sort(rng.uniform(0.0, 1.0, size=(batch, points)), axis=1)
        tau[:, 0] = 0.0
        tau[:, -1] = 1.0
        p = np.sort(rng.uniform(0.0, 50.0, size=(batch, points)), axis=1)
        t = rng.uniform(0.05, 0.95, size=batch)
        return Tensor(tau, requires_grad=True), Tensor(p, requires_grad=True), t

    def test_matches_numpy_interp(self, rng):
        tau, p, t = self.make_inputs(rng)
        out = piecewise_linear(tau, p, t)
        expected = [np.interp(ti, taui, pi) for ti, taui, pi in zip(t, tau.data, p.data)]
        np.testing.assert_allclose(out.data, expected, atol=1e-9)

    def test_endpoints(self, rng):
        tau, p, _ = self.make_inputs(rng)
        at_zero = piecewise_linear(tau, p, np.zeros(4))
        at_one = piecewise_linear(tau, p, np.ones(4))
        np.testing.assert_allclose(at_zero.data, p.data[:, 0], atol=1e-9)
        np.testing.assert_allclose(at_one.data, p.data[:, -1], atol=1e-9)

    def test_clamps_out_of_range_thresholds(self, rng):
        tau, p, _ = self.make_inputs(rng)
        below = piecewise_linear(tau, p, np.full(4, -1.0))
        above = piecewise_linear(tau, p, np.full(4, 2.0))
        np.testing.assert_allclose(below.data, p.data[:, 0])
        np.testing.assert_allclose(above.data, p.data[:, -1])

    def test_gradients(self, rng):
        tau, p, t = self.make_inputs(rng)
        assert check_gradients(lambda a, b: piecewise_linear(a, b, t), [tau, p], atol=1e-3)

    def test_shape_mismatch_raises(self, rng):
        tau, p, t = self.make_inputs(rng)
        bad_p = Tensor(p.data[:, :-1])
        with pytest.raises(ValueError):
            piecewise_linear(tau, bad_p, t)

    def test_monotone_p_gives_monotone_output(self, rng):
        """Lemma 1: non-decreasing p implies the estimate is monotone in t."""
        tau, p, _ = self.make_inputs(rng)
        thresholds = np.linspace(0.0, 1.0, 40)
        for row in range(tau.shape[0]):
            row_tau = Tensor(np.repeat(tau.data[row : row + 1], len(thresholds), axis=0))
            row_p = Tensor(np.repeat(p.data[row : row + 1], len(thresholds), axis=0))
            values = piecewise_linear(row_tau, row_p, thresholds).data
            assert np.all(np.diff(values) >= -1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_output_within_p_range(self, seed):
        """Property: interpolation never leaves the [p_0, p_last] interval."""
        rng = np.random.default_rng(seed)
        tau, p, t = self.make_inputs(rng, batch=3, points=6)
        out = piecewise_linear(tau, p, t).data
        assert np.all(out >= p.data[:, 0] - 1e-9)
        assert np.all(out <= p.data[:, -1] + 1e-9)

"""Tests for loss functions and the generic training loop."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.nn import (
    TrainingConfig,
    feed_forward,
    fit_regressor,
    huber_loss,
    log_huber_loss,
    mae_loss,
    mse_loss,
    q_error,
)


class TestBasicLosses:
    def test_mse_zero_for_identical(self, rng):
        values = rng.normal(size=10)
        assert mse_loss(Tensor(values), Tensor(values)).item() == pytest.approx(0.0)

    def test_mse_matches_numpy(self, rng):
        a, b = rng.normal(size=8), rng.normal(size=8)
        assert mse_loss(Tensor(a), Tensor(b)).item() == pytest.approx(np.mean((a - b) ** 2))

    def test_mae_matches_numpy(self, rng):
        a, b = rng.normal(size=8), rng.normal(size=8)
        assert mae_loss(Tensor(a), Tensor(b)).item() == pytest.approx(np.mean(np.abs(a - b)))

    def test_huber_below_mse_for_outliers(self, rng):
        prediction = Tensor(np.zeros(5))
        target = Tensor(np.array([100.0, 0.0, 0.0, 0.0, 0.0]))
        assert huber_loss(prediction, target).item() < mse_loss(prediction, target).item()

    def test_losses_accept_numpy_targets(self, rng):
        prediction = Tensor(rng.normal(size=6), requires_grad=True)
        loss = mse_loss(prediction, rng.normal(size=6))
        loss.backward()
        assert prediction.grad is not None


class TestLogHuberLoss:
    def test_zero_for_exact_prediction(self):
        values = np.array([1.0, 10.0, 1000.0])
        assert log_huber_loss(Tensor(values), Tensor(values)).item() == pytest.approx(0.0, abs=1e-12)

    def test_relative_error_scale_invariance(self):
        """Being off by 2x costs roughly the same at selectivity 100 and 100'000.

        The invariance is only approximate because of the +1 padding inside
        the logarithm, so the tolerance is loose.
        """
        small = log_huber_loss(Tensor([200.0]), Tensor([100.0])).item()
        large = log_huber_loss(Tensor([200000.0]), Tensor([100000.0])).item()
        assert small == pytest.approx(large, rel=0.05)

    def test_negative_prediction_is_safe(self):
        loss = log_huber_loss(Tensor([-5.0]), Tensor([10.0]))
        assert np.isfinite(loss.item())

    def test_gradient_flows(self):
        prediction = Tensor(np.array([5.0, 50.0]), requires_grad=True)
        log_huber_loss(prediction, Tensor(np.array([10.0, 10.0]))).backward()
        assert prediction.grad is not None
        assert np.all(np.isfinite(prediction.grad))
        # Underestimate -> gradient pushes prediction up (negative d loss / d pred).
        assert prediction.grad[0] < 0
        assert prediction.grad[1] > 0

    @settings(max_examples=30, deadline=None)
    @given(
        target=st.floats(0.0, 1e6, allow_nan=False),
        prediction=st.floats(0.0, 1e6, allow_nan=False),
    )
    def test_property_loss_nonnegative_finite(self, target, prediction):
        loss = log_huber_loss(Tensor([prediction]), Tensor([target])).item()
        assert loss >= 0.0 and np.isfinite(loss)


class TestQError:
    def test_exact_prediction_gives_one(self):
        np.testing.assert_allclose(q_error(np.array([5.0]), np.array([5.0])), [1.0])

    def test_symmetric_in_over_and_under_estimation(self):
        over = q_error(np.array([20.0]), np.array([10.0]))
        under = q_error(np.array([10.0]), np.array([20.0]))
        np.testing.assert_allclose(over, under)

    def test_at_least_one(self, rng):
        prediction = np.abs(rng.normal(size=20)) * 100
        target = np.abs(rng.normal(size=20)) * 100
        assert np.all(q_error(prediction, target) >= 1.0)


class TestFitRegressor:
    def _make_problem(self, rng, n=300):
        x = rng.normal(size=(n, 3))
        y = 2.0 * x[:, 0] - x[:, 1] + 0.5 * x[:, 2]
        return x, y

    def test_fit_reduces_loss(self, rng):
        x, y = self._make_problem(rng)
        model = feed_forward(3, [16], 1, rng=rng)
        config = TrainingConfig(epochs=30, batch_size=32, learning_rate=5e-3)
        history = fit_regressor(
            model,
            lambda prediction, target: mse_loss(prediction.reshape(len(target)), Tensor(target)),
            x,
            y,
            config,
            rng=rng,
        )
        assert history.train_loss[-1] < history.train_loss[0] * 0.5

    def test_early_stopping_restores_best_model(self, rng):
        x, y = self._make_problem(rng, n=200)
        x_valid, y_valid = self._make_problem(rng, n=50)
        model = feed_forward(3, [16], 1, rng=rng)
        config = TrainingConfig(
            epochs=40, batch_size=32, learning_rate=5e-3, early_stopping_patience=5
        )
        history = fit_regressor(
            model,
            lambda prediction, target: mse_loss(prediction.reshape(len(target)), Tensor(target)),
            x,
            y,
            config,
            validation=(x_valid, y_valid),
            rng=rng,
        )
        assert history.validation_loss
        assert history.best_validation_loss == pytest.approx(min(history.validation_loss))

    def test_model_in_eval_mode_after_fit(self, rng):
        x, y = self._make_problem(rng, n=100)
        model = feed_forward(3, [8], 1, rng=rng)
        fit_regressor(
            model,
            lambda prediction, target: mse_loss(prediction.reshape(len(target)), Tensor(target)),
            x,
            y,
            TrainingConfig(epochs=2, batch_size=32),
            rng=rng,
        )
        assert not model.training
